"""Service-provider estimation from state-residency/transition logs.

The paper hand-translates vendor datasheets into SP matrices (Table 1).
This module goes the other way: given a measured log of
``(state, command, next_state)`` transitions — optionally labeled with
the power drawn during the slice and whether a request completed — it
MLE-fits the controlled Markov chain, the power table and the
service-rate table, producing a ready-to-compose
:class:`~repro.core.components.ServiceProvider`.  Expected transition
times follow from the fitted geometric probabilities exactly as in
paper Eq. 2 (``E[T] = 1/p``).

* :class:`TransitionRecord` / :class:`ProviderLog` — the log format,
  with JSON-lines persistence for the ``fit`` CLI;
* :func:`fit_provider` — counts → :class:`ProviderFit`;
* :func:`sample_provider_log` — synthesize a log from a known provider
  (round-trip testing and examples).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.components import ServiceProvider
from repro.markov.controlled import ControlledMarkovChain
from repro.util.tables import format_table
from repro.util.validation import ValidationError

__all__ = [
    "ProviderFit",
    "ProviderLog",
    "TransitionRecord",
    "fit_provider",
    "sample_provider_log",
]


@dataclass(frozen=True)
class TransitionRecord:
    """One logged slice of SP behaviour.

    Attributes
    ----------
    state / command / next_state:
        The SP state at the slice start, the PM command issued, and the
        state observed at the next slice start.
    power:
        Measured power draw during the slice in watts (``None`` when
        the logger had no power meter).
    serviced:
        Whether a request completed during the slice (``None`` when
        unknown — e.g. an idle slice with nothing to serve).
    """

    state: str
    command: str
    next_state: str
    power: float | None = None
    serviced: bool | None = None

    def to_dict(self) -> dict:
        """JSON-able record (``None`` fields omitted)."""
        record = {
            "state": self.state,
            "command": self.command,
            "next_state": self.next_state,
        }
        if self.power is not None:
            record["power"] = self.power
        if self.serviced is not None:
            record["serviced"] = self.serviced
        return record


class ProviderLog:
    """An append-only sequence of :class:`TransitionRecord`.

    Examples
    --------
    >>> log = ProviderLog()
    >>> log.append("on", "s_off", "off", power=4.0)
    >>> len(log)
    1
    """

    def __init__(self, records=()):
        self._records: list[TransitionRecord] = []
        for record in records:
            if isinstance(record, TransitionRecord):
                self._records.append(record)
            elif isinstance(record, dict):
                self._records.append(self._from_dict(record))
            else:
                raise ValidationError(
                    "ProviderLog records must be TransitionRecord or "
                    f"mapping, got {type(record).__name__}"
                )

    @staticmethod
    def _from_dict(raw: dict) -> TransitionRecord:
        for key in ("state", "command", "next_state"):
            if key not in raw:
                raise ValidationError(
                    f"provider-log record is missing {key!r}: {raw!r}"
                )
        power = raw.get("power")
        serviced = raw.get("serviced")
        return TransitionRecord(
            state=str(raw["state"]),
            command=str(raw["command"]),
            next_state=str(raw["next_state"]),
            power=None if power is None else float(power),
            serviced=None if serviced is None else bool(serviced),
        )

    def append(
        self,
        state,
        command,
        next_state,
        power: float | None = None,
        serviced: bool | None = None,
    ) -> None:
        """Record one observed slice."""
        self._records.append(
            TransitionRecord(
                state=str(state),
                command=str(command),
                next_state=str(next_state),
                power=None if power is None else float(power),
                serviced=None if serviced is None else bool(serviced),
            )
        )

    @property
    def records(self) -> tuple[TransitionRecord, ...]:
        """The logged records, in order."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    # ------------------------------------------------------------------
    # persistence (JSON lines, one record per line)
    # ------------------------------------------------------------------
    def save_jsonl(self, path) -> None:
        """Write one JSON object per line."""
        lines = [json.dumps(record.to_dict()) for record in self._records]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load_jsonl(cls, path) -> "ProviderLog":
        """Read a log written by :meth:`save_jsonl`."""
        records = []
        for line_no, line in enumerate(Path(path).read_text().splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"provider log {path}, line {line_no}: invalid JSON "
                    f"({exc})"
                ) from exc
            records.append(cls._from_dict(raw))
        return cls(records)


@dataclass(frozen=True)
class ProviderFit:
    """A fitted SP model with its estimation bookkeeping.

    Attributes
    ----------
    provider:
        The composable :class:`ServiceProvider`.
    transition_counts:
        ``(n_commands, n_states, n_states)`` observed transition counts.
    power_counts / service_counts:
        ``(n_states, n_commands)`` numbers of labeled power / service
        samples behind each table cell (0 means the default was used).
    n_observations:
        Total logged transitions.
    """

    provider: ServiceProvider
    transition_counts: np.ndarray
    power_counts: np.ndarray
    service_counts: np.ndarray
    n_observations: int

    def expected_transition_time(self, src, dst, command) -> float:
        """Fitted expected slices for ``src -> dst`` (paper Eq. 2)."""
        return self.provider.expected_transition_time(src, dst, command)

    def transition_time_table(self) -> str:
        """Render fitted expected transition times per command."""
        states = self.provider.state_names
        rows = []
        for command in self.provider.command_names:
            for src in states:
                for dst in states:
                    expected = self.expected_transition_time(src, dst, command)
                    if np.isfinite(expected) and src != dst:
                        rows.append((command, src, dst, round(expected, 3)))
        return format_table(
            ["command", "from", "to", "expected_slices"],
            rows,
            title="fitted expected transition times (Eq. 2)",
        )

    def summary(self) -> str:
        """Human-readable fit summary."""
        unlabeled_power = int((self.power_counts == 0).sum())
        unlabeled_service = int((self.service_counts == 0).sum())
        return (
            f"provider fit: {len(self.provider.state_names)} states x "
            f"{len(self.provider.command_names)} commands from "
            f"{self.n_observations} transitions "
            f"({unlabeled_power} power cells and {unlabeled_service} "
            f"service cells defaulted)"
        )


def _first_seen_order(values) -> list[str]:
    seen: dict[str, None] = {}
    for value in values:
        seen.setdefault(str(value), None)
    return list(seen)


def fit_provider(
    log: ProviderLog,
    states=None,
    commands=None,
    smoothing: float = 0.0,
    default_power: float = 0.0,
    default_service_rate: float = 0.0,
) -> ProviderFit:
    """MLE-fit a :class:`ServiceProvider` from a transition log.

    Parameters
    ----------
    log:
        The observed transitions (with optional power/service labels).
    states / commands:
        Explicit orderings; default to first-seen order in the log.
    smoothing:
        Dirichlet pseudo-count added to every ``(s, a, s')`` cell.
        With 0, a ``(state, command)`` row that was never observed
        becomes a self-loop — "no information: the state holds", the
        conservative completion for a valid controlled chain.
    default_power / default_service_rate:
        Values for table cells with no labeled samples.

    Examples
    --------
    >>> log = ProviderLog()
    >>> for _ in range(10):
    ...     log.append("on", "s_on", "on", power=3.0, serviced=True)
    >>> fit = fit_provider(log, states=["on"], commands=["s_on"])
    >>> fit.provider.power("on", "s_on")
    3.0
    """
    if len(log) == 0:
        raise ValidationError("fit_provider needs a non-empty log")
    smoothing = float(smoothing)
    if smoothing < 0:
        raise ValidationError(f"smoothing must be >= 0, got {smoothing}")

    if states is None:
        states = _first_seen_order(
            value
            for record in log
            for value in (record.state, record.next_state)
        )
    else:
        states = [str(s) for s in states]
    if commands is None:
        commands = _first_seen_order(record.command for record in log)
    else:
        commands = [str(c) for c in commands]
    state_index = {name: i for i, name in enumerate(states)}
    command_index = {name: i for i, name in enumerate(commands)}

    n_s, n_c = len(states), len(commands)
    counts = np.zeros((n_c, n_s, n_s))
    power_sums = np.zeros((n_s, n_c))
    power_counts = np.zeros((n_s, n_c), dtype=np.int64)
    service_sums = np.zeros((n_s, n_c))
    service_counts = np.zeros((n_s, n_c), dtype=np.int64)
    for record in log:
        try:
            s = state_index[record.state]
            d = state_index[record.next_state]
            a = command_index[record.command]
        except KeyError as exc:
            raise ValidationError(
                f"log record {record!r} references unknown state/command "
                f"{exc.args[0]!r}"
            ) from None
        counts[a, s, d] += 1.0
        if record.power is not None:
            power_sums[s, a] += record.power
            power_counts[s, a] += 1
        if record.serviced is not None:
            service_sums[s, a] += float(record.serviced)
            service_counts[s, a] += 1

    matrices = counts + smoothing
    for a in range(n_c):
        for s in range(n_s):
            total = matrices[a, s].sum()
            if total <= 0.0:
                # Never observed under this command: hold the state.
                matrices[a, s, s] = 1.0
            else:
                matrices[a, s] /= total

    # Measurement noise can drag a (near-)zero cell's sample mean below
    # zero; power is physically non-negative, so clamp.
    power = np.maximum(
        np.where(
            power_counts > 0,
            power_sums / np.maximum(power_counts, 1),
            float(default_power),
        ),
        0.0,
    )
    rates = np.where(
        service_counts > 0,
        service_sums / np.maximum(service_counts, 1),
        float(default_service_rate),
    )
    chain = ControlledMarkovChain(
        {command: matrices[a] for a, command in enumerate(commands)},
        state_names=states,
        command_names=commands,
    )
    provider = ServiceProvider(chain, np.clip(rates, 0.0, 1.0), power)
    return ProviderFit(
        provider=provider,
        transition_counts=counts,
        power_counts=power_counts,
        service_counts=service_counts,
        n_observations=len(log),
    )


def sample_provider_log(
    provider: ServiceProvider,
    n_slices: int,
    rng: np.random.Generator,
    command_sampler=None,
    power_noise: float = 0.0,
    initial_state=0,
) -> ProviderLog:
    """Walk a known provider and log what a measurement harness would see.

    Parameters
    ----------
    provider:
        The ground-truth SP model.
    n_slices:
        Transitions to log.
    rng:
        Drives command choice, transitions, labels and noise.
    command_sampler:
        Optional ``(state_index, rng) -> command_index``; defaults to a
        uniform draw over commands (full exploration).
    power_noise:
        Standard deviation of Gaussian measurement noise added to the
        logged power samples.
    initial_state:
        Starting SP state (index or name).

    Examples
    --------
    >>> from repro.systems.example_system import build_provider
    >>> log = sample_provider_log(
    ...     build_provider(), 50, np.random.default_rng(0))
    >>> len(log)
    50
    """
    n_slices = int(n_slices)
    if n_slices <= 0:
        raise ValidationError(f"n_slices must be > 0, got {n_slices}")
    chain = provider.chain
    state = (
        int(initial_state)
        if isinstance(initial_state, (int, np.integer))
        else chain.state_index(initial_state)
    )
    log = ProviderLog()
    states = chain.state_names
    commands = chain.command_names
    rate_matrix = provider.service_rate_matrix
    power_matrix = provider.power_matrix
    for _ in range(n_slices):
        if command_sampler is None:
            command = int(rng.integers(0, len(commands)))
        else:
            command = int(command_sampler(state, rng))
        row = chain.matrix(commands[command])[state]
        next_state = int(rng.choice(row.size, p=row))
        power = float(power_matrix[state, command])
        if power_noise > 0.0:
            power += float(rng.normal(0.0, power_noise))
        serviced = bool(rng.random() < rate_matrix[state, command])
        log.append(
            states[state],
            commands[command],
            states[next_state],
            power=power,
            serviced=serviced,
        )
        state = next_state
    return log
