"""Scenario generation: fitted SR x SP -> ready-to-optimize systems.

The last stage of the estimation pipeline turns fitted components into
the artifacts the rest of the repo consumes:

* :func:`assemble_system` — compose a fitted workload with a provider
  into a :class:`~repro.core.system.PowerManagedSystem` + costs;
* :func:`requester_spec_from_model` / :func:`provider_spec` — fitted
  models as the JSON tables of :mod:`repro.tool.spec`;
* :func:`system_spec_from_fit` — a complete, ``parse_spec``-valid
  system description (the ``fit`` CLI's ``--out``), which feeds the
  existing ``optimize`` / ``pareto`` subcommands unchanged;
* :func:`fleet_group_from_fit` / :func:`fleet_spec_from_fit` — fleet
  device-group specs whose workload is the fitted stream generator,
  consumable by :func:`repro.runtime.fleet.build_fleet`.
"""

from __future__ import annotations

import numpy as np

from repro.core.components import ServiceProvider, ServiceQueue
from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.estimation.workload import WorkloadFit
from repro.traces.extractor import KMemoryModel
from repro.util.validation import ValidationError

__all__ = [
    "assemble_system",
    "fleet_group_from_fit",
    "fleet_spec_from_fit",
    "provider_spec",
    "requester_spec_from_model",
    "system_spec_from_fit",
]


def assemble_system(
    provider: ServiceProvider,
    workload,
    queue_capacity: int = 1,
) -> tuple[PowerManagedSystem, CostModel]:
    """Compose a fitted workload with a provider into a managed system.

    ``workload`` may be a :class:`WorkloadFit`, a fitted
    :class:`~repro.traces.extractor.KMemoryModel`, or any object with a
    ``to_requester()`` method (e.g. an
    :class:`~repro.estimation.mmpp_fit.MMPP2Fit`).

    Examples
    --------
    >>> from repro.systems.example_system import build_provider
    >>> from repro.traces.extractor import SRExtractor
    >>> model = SRExtractor(memory=1).fit([0, 1, 1, 0, 0, 1, 0, 0])
    >>> system, costs = assemble_system(build_provider(), model)
    >>> system.n_states
    8
    """
    if isinstance(workload, WorkloadFit):
        requester = workload.to_requester()
    elif hasattr(workload, "to_requester"):
        requester = workload.to_requester()
    else:
        raise ValidationError(
            "workload must be a WorkloadFit or expose to_requester(), "
            f"got {type(workload).__name__}"
        )
    system = PowerManagedSystem(
        provider, requester, ServiceQueue(int(queue_capacity))
    )
    return system, CostModel.standard(system)


def requester_spec_from_model(model: KMemoryModel) -> dict:
    """The ``requester`` block of a system spec for a fitted chain."""
    names = ["".join(str(level) for level in state) for state in model.states]
    return {
        "states": names,
        "transitions": [
            [float(p) for p in row] for row in np.asarray(model.matrix)
        ],
        "arrivals": [int(state[-1]) for state in model.states],
    }


def provider_spec(provider: ServiceProvider) -> dict:
    """The ``provider`` block of a system spec for an SP model.

    Round-trips through :func:`repro.tool.spec.parse_spec` exactly —
    floats are serialized at full precision by ``json.dump``.
    """
    chain = provider.chain
    return {
        "states": list(chain.state_names),
        "commands": list(chain.command_names),
        "transitions": {
            command: [
                [float(p) for p in row] for row in chain.matrix(command)
            ]
            for command in chain.command_names
        },
        "service_rates": [
            [float(v) for v in row] for row in provider.service_rate_matrix
        ],
        "power": [[float(v) for v in row] for row in provider.power_matrix],
    }


def system_spec_from_fit(
    name: str,
    provider: ServiceProvider,
    workload,
    *,
    queue_capacity: int = 1,
    gamma: float = 0.99999,
    time_resolution: float | None = None,
    objective: str = "power",
    constraints: dict | None = None,
    lower_constraints: dict | None = None,
    initial_state=None,
    description: str | None = None,
) -> dict:
    """A complete ``parse_spec``-valid system description.

    ``workload`` is a :class:`WorkloadFit` or
    :class:`~repro.traces.extractor.KMemoryModel`; the fitted chain
    becomes the spec's ``requester`` block, so ``repro-dpm optimize`` /
    ``pareto`` / ``experiment`` pipelines consume the output unchanged.

    Examples
    --------
    >>> from repro.systems.example_system import build_provider
    >>> from repro.tool.spec import parse_spec
    >>> from repro.traces.extractor import SRExtractor
    >>> model = SRExtractor(memory=1).fit([0, 1, 1, 0, 0, 1, 0, 0])
    >>> raw = system_spec_from_fit("fitted", build_provider(), model)
    >>> parse_spec(raw).name
    'fitted'
    """
    if isinstance(workload, WorkloadFit):
        model = workload.model
        if time_resolution is None:
            time_resolution = workload.resolution
    elif isinstance(workload, KMemoryModel):
        model = workload
    else:
        raise ValidationError(
            "workload must be a WorkloadFit or KMemoryModel, got "
            f"{type(workload).__name__}"
        )
    spec = {
        "name": str(name),
        "description": description
        or (
            f"estimated from a trace: memory-{model.memory} arrival chain "
            f"over {model.n_states} states "
            f"({model.n_observations} transitions observed)"
        ),
        "gamma": float(gamma),
        "queue_capacity": int(queue_capacity),
        "time_resolution": float(
            1.0 if time_resolution is None else time_resolution
        ),
        "provider": provider_spec(provider),
        "requester": requester_spec_from_model(model),
        "objective": str(objective),
        "constraints": dict(constraints or {}),
        "lower_constraints": dict(lower_constraints or {}),
    }
    if initial_state is not None:
        spec["initial_state"] = list(initial_state)
    return spec


def fleet_group_from_fit(
    fit: WorkloadFit,
    system,
    *,
    group_id: str = "fitted",
    count: int = 1,
    agent: dict | None = None,
    generator: str = "auto",
    seed: int | None = None,
    initial_state=None,
) -> dict:
    """One fleet device-group spec driven by the fitted workload.

    Parameters
    ----------
    fit:
        The fitted workload; its ``stream_spec(generator)`` becomes the
        group's ``workload``.
    system:
        A named case-study system (``"disk_drive"``) or an inline spec
        mapping — passed through to
        :func:`repro.runtime.fleet.build_fleet`.
    agent:
        The group's agent spec; defaults to an average-cost optimal
        agent.
    """
    count = int(count)
    if count <= 0:
        raise ValidationError(f"count must be > 0, got {count}")
    group = {
        "id": str(group_id),
        "count": count,
        "system": system,
        "agent": dict(
            agent
            if agent is not None
            else {"type": "optimal", "formulation": "average"}
        ),
        "workload": fit.stream_spec(generator),
    }
    if seed is not None:
        group["seed"] = int(seed)
    if initial_state is not None:
        group["initial_state"] = list(initial_state)
    return group


def fleet_spec_from_fit(
    fit: WorkloadFit,
    system,
    *,
    name: str = "fitted-campaign",
    count: int = 16,
    slices_per_tick: int = 500,
    agent: dict | None = None,
    generator: str = "auto",
    seed: int | None = None,
    initial_state=None,
) -> dict:
    """A complete one-group fleet spec for the fitted workload.

    The result is directly consumable by ``repro-dpm fleet`` /
    :func:`repro.runtime.fleet.build_fleet` — the ``fit`` CLI writes it
    with ``--fleet-out``.
    """
    return {
        "name": str(name),
        "description": (
            "fleet campaign over a trace-estimated workload "
            f"(mean rate {fit.report.mean_rate:.4g} requests/slice)"
        ),
        "slices_per_tick": int(slices_per_tick),
        "groups": [
            fleet_group_from_fit(
                fit,
                system,
                group_id="fitted",
                count=count,
                agent=agent,
                generator=generator,
                seed=seed,
                initial_state=initial_state,
            )
        ],
    }
