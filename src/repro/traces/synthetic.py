"""Synthetic workload generators.

Substitutes for the measured traces the paper used (Auspex file-system
traces for the disk, an Internet Traffic Archive HTTP trace for the web
server, laptop monitor traces for the CPU — none redistributable).
Each generator produces a :class:`~repro.traces.trace.Trace` whose
slice-level statistics match the structure the paper relies on:

* :func:`poisson_trace` — memoryless arrivals (the burstiness baseline);
* :func:`mmpp2_trace` — a two-state Markov-modulated process, i.e.
  exactly the families of SR models the paper extracts from its traces
  (bursty, geometrically distributed busy/idle periods);
* :func:`on_off_trace` — on/off source with arbitrary period-length
  samplers (used to create *non*-geometric structure that a k-memory
  extractor can exploit, paper Fig. 13b);
* :func:`periodic_burst_trace` — deterministic periodic bursts (highly
  non-Markovian);
* :func:`merge_traces` — concatenation of differently-distributed
  segments, the paper's nonstationary workload (Example 7.1, Fig. 10).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.traces.trace import Trace
from repro.util.validation import ValidationError, check_probability


def _slice_midpoints(slice_indices: np.ndarray, resolution: float) -> np.ndarray:
    """Place one timestamp at the midpoint of each chosen slice."""
    return (slice_indices + 0.5) * resolution


def poisson_trace(
    rate: float,
    duration: float,
    rng: np.random.Generator,
) -> Trace:
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""
    if rate < 0:
        raise ValidationError(f"rate must be >= 0, got {rate!r}")
    if duration <= 0:
        raise ValidationError(f"duration must be > 0, got {duration!r}")
    n = int(rng.poisson(rate * duration))
    stamps = np.sort(rng.uniform(0.0, duration, size=n))
    return Trace(stamps, duration=duration)


def mmpp2_trace(
    p_stay_idle: float,
    p_stay_busy: float,
    n_slices: int,
    resolution: float,
    rng: np.random.Generator,
    busy_arrival_probability: float = 1.0,
) -> Trace:
    """Two-state Markov-modulated arrivals on a slotted time axis.

    A hidden idle/busy chain flips with the given stay probabilities;
    busy slices emit one request with ``busy_arrival_probability``.
    With probability 1 this is exactly a realization of the paper's
    two-state SR models (Example 3.2), so SR extraction from such a
    trace recovers the generating probabilities — verified in tests.

    Parameters
    ----------
    p_stay_idle / p_stay_busy:
        Self-transition probabilities of the modulating chain.
    n_slices:
        Trace length in slices.
    resolution:
        Seconds per slice (timestamps land at slice midpoints).
    rng:
        Random generator.
    busy_arrival_probability:
        Chance a busy slice actually emits a request.
    """
    p_ii = check_probability(p_stay_idle, "p_stay_idle")
    p_bb = check_probability(p_stay_busy, "p_stay_busy")
    emit = check_probability(busy_arrival_probability, "busy_arrival_probability")
    n_slices = int(n_slices)
    if n_slices <= 0:
        raise ValidationError(f"n_slices must be > 0, got {n_slices}")
    if resolution <= 0:
        raise ValidationError(f"resolution must be > 0, got {resolution!r}")

    uniforms = rng.random(n_slices)
    emits = rng.random(n_slices)
    busy = False
    chosen = []
    for t in range(n_slices):
        stay = p_bb if busy else p_ii
        if uniforms[t] >= stay:
            busy = not busy
        if busy and emits[t] < emit:
            chosen.append(t)
    stamps = _slice_midpoints(np.asarray(chosen, dtype=float), resolution)
    return Trace(stamps, duration=n_slices * resolution)


def on_off_trace(
    on_length_sampler: Callable[[np.random.Generator], int],
    off_length_sampler: Callable[[np.random.Generator], int],
    n_slices: int,
    resolution: float,
    rng: np.random.Generator,
) -> Trace:
    """Alternating on/off source with caller-supplied period samplers.

    During "on" periods every slice carries one request; "off" periods
    are silent.  Supplying non-geometric samplers (fixed lengths,
    heavy tails) produces workloads a 1-memory Markov model fits poorly
    but higher-memory models capture — the mechanism behind paper
    Fig. 13(b).
    """
    n_slices = int(n_slices)
    if n_slices <= 0:
        raise ValidationError(f"n_slices must be > 0, got {n_slices}")
    if resolution <= 0:
        raise ValidationError(f"resolution must be > 0, got {resolution!r}")

    chosen = []
    t = 0
    on = False
    while t < n_slices:
        length = int(
            on_length_sampler(rng) if on else off_length_sampler(rng)
        )
        if length <= 0:
            raise ValidationError("period samplers must return positive lengths")
        if on:
            end = min(t + length, n_slices)
            chosen.extend(range(t, end))
        t += length
        on = not on
    stamps = _slice_midpoints(np.asarray(chosen, dtype=float), resolution)
    return Trace(stamps, duration=n_slices * resolution)


def periodic_burst_trace(
    burst_length: int,
    gap_length: int,
    n_slices: int,
    resolution: float,
) -> Trace:
    """Deterministic periodic bursts: ``burst_length`` on, ``gap_length`` off.

    Entirely predictable yet strongly non-geometric — the adversarial
    case for the memoryless SR assumption (paper Section VII).
    """
    burst_length = int(burst_length)
    gap_length = int(gap_length)
    if burst_length <= 0 or gap_length < 0:
        raise ValidationError(
            "burst_length must be > 0 and gap_length >= 0, got "
            f"{burst_length} and {gap_length}"
        )
    n_slices = int(n_slices)
    if n_slices <= 0:
        raise ValidationError(f"n_slices must be > 0, got {n_slices}")
    if resolution <= 0:
        raise ValidationError(f"resolution must be > 0, got {resolution!r}")
    period = burst_length + gap_length
    indices = [t for t in range(n_slices) if (t % period) < burst_length]
    stamps = _slice_midpoints(np.asarray(indices, dtype=float), resolution)
    return Trace(stamps, duration=n_slices * resolution)


def merge_traces(traces: Sequence[Trace]) -> Trace:
    """Concatenate trace segments back to back (paper Example 7.1).

    The segments keep their internal statistics, so the result is
    nonstationary by construction — e.g. an editing-like sparse segment
    followed by a compile-like dense burst, the workload of Fig. 10.
    """
    traces = list(traces)
    if not traces:
        raise ValidationError("merge_traces needs at least one trace")
    merged = traces[0]
    for trace in traces[1:]:
        merged = merged.concatenated(trace)
    return merged
