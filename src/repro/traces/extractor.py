"""SR extractor: k-memory Markov workload models (paper Section V).

"Then, a memory k is chosen for the SR model.  The k-memory Markov
model has 2^k states, one for each possible sequence of k consecutive
bits.  The conditional transition probabilities are computed by
counting the occurrences of state transitions, and dividing the count
by the total number of times the start state of the transition is
visited." (Example 5.1)

This module generalizes the binary stream to bounded arrival *levels*
(counts clipped at ``max_level``), giving ``(max_level + 1)^k`` states;
with ``max_level=1`` it is exactly the paper's construction, and the
Example 5.1 numbers (P(0 -> 1) = 3/8) are reproduced in the tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.components import ServiceRequester
from repro.markov.chain import MarkovChain
from repro.sim.trace_sim import ArrivalTracker
from repro.util.validation import ValidationError


@dataclass
class KMemoryModel:
    """A fitted k-memory workload model.

    Attributes
    ----------
    memory:
        History length ``k`` (slices).
    max_level:
        Largest arrival level; counts are clipped to ``[0, max_level]``.
    states:
        All level-tuples of length ``k`` in index order.
    matrix:
        Transition matrix over the tuple states.
    state_counts:
        Times each state started a transition in the training stream.
    n_observations:
        Total transitions counted.
    """

    memory: int
    max_level: int
    states: tuple[tuple[int, ...], ...]
    matrix: np.ndarray = field(repr=False)
    state_counts: np.ndarray = field(repr=False)
    n_observations: int = 0

    @property
    def n_states(self) -> int:
        """Number of model states (``(max_level + 1) ** memory``)."""
        return len(self.states)

    def state_index(self, history) -> int:
        """Index of the state for the last-``k``-levels ``history``."""
        key = tuple(int(min(max(v, 0), self.max_level)) for v in history)
        if len(key) != self.memory:
            raise ValidationError(
                f"history must have length {self.memory}, got {len(key)}"
            )
        base = self.max_level + 1
        index = 0
        for level in key:
            index = index * base + level
        return index

    def arrivals_of_state(self, index: int) -> int:
        """Requests per slice issued in state ``index`` (its newest level)."""
        return int(self.states[int(index)][-1])

    def to_requester(self) -> ServiceRequester:
        """Convert to a :class:`ServiceRequester` for composition."""
        names = ["".join(str(v) for v in state) for state in self.states]
        chain = MarkovChain(self.matrix, names)
        arrivals = [state[-1] for state in self.states]
        return ServiceRequester(chain, arrivals)

    def tracker(self) -> "KMemoryTracker":
        """An :class:`ArrivalTracker` for trace-driven simulation."""
        return KMemoryTracker(self)

    def log_likelihood(self, counts) -> float:
        """Log-likelihood of a level stream under the fitted model.

        A model-fit diagnostic: the paper checks SR model quality by
        simulation; the likelihood gives a direct numeric comparison
        between candidate memories ``k``.
        """
        levels = _clip_levels(counts, self.max_level)
        if levels.size <= self.memory:
            return 0.0
        indices = _window_indices(levels, self.memory, self.max_level + 1)
        probabilities = self.matrix[indices[:-1], indices[1:]]
        if np.any(probabilities <= 0.0):
            return float("-inf")
        return float(np.log(probabilities).sum())


class KMemoryTracker(ArrivalTracker):
    """Tracks the k-memory state from the observed arrival stream.

    For extracted models the SR state *is* the last-k-arrivals window,
    so trace-driven simulation can recover it exactly — the model state
    is fully observable from the trace (paper Section V).
    """

    def __init__(self, model: KMemoryModel):
        self._model = model
        self._window: list[int] = [0] * model.memory

    def reset(self) -> int:
        self._window = [0] * self._model.memory
        return self._model.state_index(self._window)

    def update(self, arrivals: int) -> int:
        level = int(min(max(int(arrivals), 0), self._model.max_level))
        self._window = self._window[1:] + [level]
        return self._model.state_index(self._window)


def _clip_levels(counts, max_level: int) -> np.ndarray:
    arr = np.asarray(counts, dtype=int).reshape(-1)
    if np.any(arr < 0):
        raise ValidationError("arrival counts must be non-negative")
    return np.clip(arr, 0, int(max_level))


def _window_indices(levels: np.ndarray, memory: int, base: int) -> np.ndarray:
    """State index of every length-``memory`` window, vectorized.

    ``out[t]`` is the base-``base`` encoding of
    ``levels[t : t + memory]`` — the same value
    :meth:`KMemoryModel.state_index` computes one window at a time.
    """
    n_windows = levels.size - memory + 1
    indices = np.zeros(n_windows, dtype=np.int64)
    for offset in range(memory):
        indices = indices * base + levels[offset : offset + n_windows]
    return indices


class SRExtractor:
    """Fit k-memory workload models from discretized traces.

    Parameters
    ----------
    memory:
        History length ``k`` >= 1.
    max_level:
        Largest arrival level (1 reproduces the paper's binary stream).
    smoothing:
        Laplace pseudo-count added to every *legal* successor of every
        state.  With 0 (default), states never observed get a uniform
        distribution over their legal successors — they are unreachable
        in training data but the composed model must still be a valid
        Markov chain.

    Examples
    --------
    Paper Example 5.1::

        >>> from repro.traces import Trace
        >>> counts = Trace([2, 5, 6, 7, 12], duration=13).discretize(1.0)
        >>> model = SRExtractor(memory=1).fit(counts)
        >>> float(model.matrix[0, 1])  # P(0 -> 1)
        0.375
    """

    def __init__(self, memory: int = 1, max_level: int = 1, smoothing: float = 0.0):
        memory = int(memory)
        if memory < 1:
            raise ValidationError(f"memory must be >= 1, got {memory}")
        max_level = int(max_level)
        if max_level < 1:
            raise ValidationError(f"max_level must be >= 1, got {max_level}")
        smoothing = float(smoothing)
        if smoothing < 0:
            raise ValidationError(f"smoothing must be >= 0, got {smoothing}")
        self._memory = memory
        self._max_level = max_level
        self._smoothing = smoothing

    def fit(self, counts) -> KMemoryModel:
        """Fit the model to a per-slice arrival-count stream."""
        levels = _clip_levels(counts, self._max_level)
        k = self._memory
        base = self._max_level + 1
        if levels.size < k + 1:
            raise ValidationError(
                f"need at least {k + 1} slices to fit a memory-{k} model, "
                f"got {levels.size}"
            )

        states = tuple(itertools.product(range(base), repeat=k))
        n = len(states)
        shift = base ** (k - 1)

        # Vectorized transition counting: encode every length-k window
        # as its state index, then histogram consecutive (src, dst)
        # pairs in one bincount (the estimation layer fits million-slice
        # streams, where the per-slice python loop dominated).
        indices = _window_indices(levels, k, base)
        pairs = indices[:-1] * n + indices[1:]
        transition_counts = (
            np.bincount(pairs, minlength=n * n).reshape(n, n).astype(float)
        )

        # Legal successors of state u are the base states shifting one
        # level in; add smoothing mass only there.
        matrix = np.zeros((n, n))
        state_counts = transition_counts.sum(axis=1)
        for u in range(n):
            successors = [(u % shift) * base + level for level in range(base)]
            row = transition_counts[u].copy()
            if self._smoothing > 0:
                for v in successors:
                    row[v] += self._smoothing
            total = row.sum()
            if total <= 0:
                # Never observed: uniform over legal successors.
                for v in successors:
                    matrix[u, v] = 1.0 / len(successors)
            else:
                matrix[u] = row / total

        return KMemoryModel(
            memory=k,
            max_level=self._max_level,
            states=states,
            matrix=matrix,
            state_counts=state_counts,
            n_observations=int(levels.size - k),
        )

    def fit_trace(self, trace, resolution: float) -> KMemoryModel:
        """Discretize a :class:`~repro.traces.trace.Trace`, then fit."""
        return self.fit(trace.discretize(resolution))
