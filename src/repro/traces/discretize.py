"""Trace discretization (paper Section V and Example 5.1).

"Given a time resolution tau, the arrival times of requests are
discretized.  The trace is converted into a binary stream that has
value one in position i if a request is received between time i*tau and
time (i+1)*tau, zero otherwise."

We generalize slightly: :func:`discretize_timestamps` returns *counts*
per slice (several requests can land in one slice); :func:`binarize`
collapses counts to the paper's 0/1 stream.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import ValidationError


def discretize_timestamps(
    timestamps, resolution: float, duration: float | None = None
) -> np.ndarray:
    """Count request arrivals per slice of length ``resolution`` seconds.

    Parameters
    ----------
    timestamps:
        Arrival times in seconds (any order; non-negative).
    resolution:
        Slice length tau in seconds.
    duration:
        Total window; the result has ``ceil(duration / resolution)``
        slices.  Defaults to the last timestamp (with at least one
        slice when any timestamp exists).

    Notes
    -----
    A request at exactly ``i * resolution`` lands in slice ``i``; the
    paper's Example 5.1 trace [2, 5, 6, 7, 12] at tau = 1 ms therefore
    becomes ``[0,0,1,0,0,1,1,1,0,0,0,0,1]`` (13 slices).
    """
    if resolution <= 0:
        raise ValidationError(f"resolution must be > 0, got {resolution!r}")
    arr = np.asarray(timestamps, dtype=float).reshape(-1)
    if arr.size and (not np.all(np.isfinite(arr)) or arr.min() < 0):
        raise ValidationError("timestamps must be finite and non-negative")

    if duration is None:
        duration = float(arr.max()) if arr.size else 0.0
    if duration < 0:
        raise ValidationError(f"duration must be >= 0, got {duration!r}")
    n_slices = int(np.ceil(duration / resolution))
    if arr.size:
        # A request exactly at the window edge still needs a slice.
        n_slices = max(n_slices, int(np.floor(arr.max() / resolution)) + 1)
    if n_slices == 0:
        return np.zeros(0, dtype=int)

    indices = np.floor(arr / resolution).astype(int)
    counts = np.bincount(indices, minlength=n_slices)
    return counts.astype(int)


def binarize(counts) -> np.ndarray:
    """Collapse per-slice counts to the paper's 0/1 request stream."""
    arr = np.asarray(counts, dtype=int)
    if arr.ndim != 1:
        raise ValidationError(f"counts must be 1-D, got shape {arr.shape}")
    if np.any(arr < 0):
        raise ValidationError("counts must be non-negative")
    return (arr > 0).astype(int)
