"""Time-stamped request traces.

A :class:`Trace` is the paper's primary workload input: a sorted list of
request arrival times measured (or synthesized) in seconds.  It carries
the elementary statistics the case studies need (interarrival moments,
burstiness) and converts to per-slice counts via
:func:`~repro.traces.discretize.discretize_timestamps`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.traces.discretize import discretize_timestamps
from repro.util.validation import ValidationError


class Trace:
    """A sorted sequence of request arrival timestamps (seconds).

    Parameters
    ----------
    timestamps:
        Arrival times; sorted internally.  May be empty.
    duration:
        Total observation window; defaults to the last timestamp (or 0
        for an empty trace).  Must cover every timestamp.

    Examples
    --------
    The trace of paper Example 5.1::

        >>> trace = Trace([2, 5, 6, 7, 12], duration=13)
        >>> trace.n_requests
        5
        >>> trace.discretize(1.0).tolist()
        [0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1]
    """

    def __init__(self, timestamps, duration: float | None = None):
        arr = np.sort(np.asarray(timestamps, dtype=float).reshape(-1))
        if arr.size and (not np.all(np.isfinite(arr)) or arr[0] < 0):
            raise ValidationError("timestamps must be finite and non-negative")
        self._timestamps = arr
        if duration is None:
            duration = float(arr[-1]) if arr.size else 0.0
        duration = float(duration)
        if arr.size and duration < arr[-1]:
            raise ValidationError(
                f"duration {duration} is before the last timestamp {arr[-1]}"
            )
        self._duration = duration

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> np.ndarray:
        """Sorted arrival times (copy)."""
        return self._timestamps.copy()

    @property
    def n_requests(self) -> int:
        """Number of requests in the trace."""
        return int(self._timestamps.size)

    @property
    def duration(self) -> float:
        """Observation window length in seconds."""
        return self._duration

    def mean_rate(self) -> float:
        """Average requests per second over the window."""
        if self._duration <= 0:
            return 0.0
        return self.n_requests / self._duration

    def interarrival_times(self) -> np.ndarray:
        """Differences between consecutive arrivals."""
        if self._timestamps.size < 2:
            return np.zeros(0)
        return np.diff(self._timestamps)

    def burstiness(self) -> float:
        """Coefficient of variation of interarrival times.

        1 for a Poisson process; > 1 indicates bursty arrivals (the
        regime where power management pays off, paper Fig. 13a).
        """
        gaps = self.interarrival_times()
        if gaps.size < 2 or gaps.mean() == 0:
            return 0.0
        return float(gaps.std(ddof=1) / gaps.mean())

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def discretize(self, resolution: float) -> np.ndarray:
        """Per-slice arrival counts at ``resolution`` seconds per slice."""
        return discretize_timestamps(
            self._timestamps, resolution, duration=self._duration
        )

    def shifted(self, offset: float) -> "Trace":
        """A copy with all timestamps moved by ``offset`` seconds."""
        offset = float(offset)
        if self._timestamps.size and self._timestamps[0] + offset < 0:
            raise ValidationError("shift would create negative timestamps")
        return Trace(self._timestamps + offset, duration=self._duration + offset)

    def concatenated(self, other: "Trace") -> "Trace":
        """This trace followed by ``other`` (offset by this duration).

        The construction behind the paper's nonstationary workload
        (Example 7.1: "obtained by merging two real-world traces with
        completely different statistics").
        """
        if not isinstance(other, Trace):
            raise ValidationError("can only concatenate another Trace")
        moved = other._timestamps + self._duration
        return Trace(
            np.concatenate([self._timestamps, moved]),
            duration=self._duration + other._duration,
        )

    # ------------------------------------------------------------------
    # persistence (plain text, one timestamp per line)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write one timestamp per line; first line is the duration."""
        lines = [f"# duration {self._duration!r}"]
        lines.extend(repr(float(t)) for t in self._timestamps)
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        text = Path(path).read_text()
        duration = None
        stamps = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "duration":
                    duration = float(parts[1])
                continue
            stamps.append(float(line))
        return cls(stamps, duration=duration)

    def __len__(self) -> int:
        return self.n_requests

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(n_requests={self.n_requests}, duration={self._duration})"
