"""Workload traces: containers, discretization, synthesis, extraction.

The paper's tool takes "a request trace consisting of time-stamped
request records (obtained from measurements on a real system)" and
automatically builds a Markov SR model from it (Fig. 7, "SR extractor").
The original traces (Auspex file-system, Internet Traffic Archive,
laptop CPU monitors) are not redistributable, so this package also
provides synthetic generators with matching statistical structure —
bursty two-state modulated processes, on/off sources, and nonstationary
merges (paper Example 7.1).

* :class:`~repro.traces.trace.Trace` — time-stamped request records;
* :func:`~repro.traces.discretize.discretize_timestamps` — timestamps
  to per-slice counts at a resolution tau (paper Example 5.1);
* :mod:`~repro.traces.synthetic` — workload generators;
* :class:`~repro.traces.extractor.SRExtractor` — the k-memory Markov
  model extraction of Section V.
"""

from repro.traces.discretize import binarize, discretize_timestamps
from repro.traces.extractor import KMemoryModel, KMemoryTracker, SRExtractor
from repro.traces.synthetic import (
    merge_traces,
    mmpp2_trace,
    on_off_trace,
    periodic_burst_trace,
    poisson_trace,
)
from repro.traces.trace import Trace

__all__ = [
    "Trace",
    "discretize_timestamps",
    "binarize",
    "poisson_trace",
    "mmpp2_trace",
    "on_off_trace",
    "periodic_burst_trace",
    "merge_traces",
    "SRExtractor",
    "KMemoryModel",
    "KMemoryTracker",
]
