"""Fig. 14(b) — power versus queue capacity.

Appendix B's final study: optimal power as a function of the maximum
queue length, for three request-loss constraints with a fixed
performance constraint.  Horizon 1e4 slices.

The paper's two-sided claim, asserted as checks:

* "When optimization is dominated by request loss constraint, larger
  maximum queue length reduces the probability of a request to find
  the queue full even if the resource is aggressively shut down.
  Thus, power dissipation can be reduced more effectively." — under
  the tight loss bounds, power is non-increasing in queue capacity;
* "However, when optimization is dominated by performance constraint
  ... shorter queue lengths give better results" (a big queue means
  enqueued requests wait longer) — under the loss-free setting with a
  tight penalty bound, power is non-decreasing in queue capacity.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimizer import PolicyOptimizer
from repro.experiments import ExperimentResult
from repro.systems import baseline
from repro.util.tables import format_table

QUEUE_CAPACITIES = (1, 2, 3, 4, 5, 6)

#: Loss-dominated columns use a pure expected-overflow budget (a longer
#: queue absorbs the arrivals landing during a wake transition, cutting
#: overflow directly); the penalty-dominated column uses a pure queue-
#: length bound (a longer queue means longer waits, paper's Little's-law
#: argument).
OVERFLOW_BOUNDS = (0.002, 0.005)
PENALTY_BOUND = 0.5

#: Fig. 14(b) horizon of 1e4 slices.
GAMMA = 1.0 - 1e-4

SLEEP_STATES = ("sleep1", "sleep2", "sleep3", "sleep4")


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 14(b) (quick/seed unused — pure LP solves)."""
    rows = []
    loss_series = {bound: [] for bound in OVERFLOW_BOUNDS}
    penalty_series = []
    for capacity in QUEUE_CAPACITIES:
        bundle = baseline.build(
            sleep_states=list(SLEEP_STATES),
            gamma=GAMMA,
            queue_capacity=capacity,
        )
        optimizer = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=bundle.gamma,
            initial_distribution=bundle.initial_distribution,
        )
        row = [capacity]
        for bound in OVERFLOW_BOUNDS:
            result = optimizer.minimize_power(
                extra_upper_bounds={"overflow": bound}
            ).require_feasible()
            loss_series[bound].append(result.average("power"))
            row.append(result.average("power"))
        result = optimizer.minimize_power(
            penalty_bound=PENALTY_BOUND
        ).require_feasible()
        penalty_series.append(result.average("power"))
        row.append(result.average("power"))
        rows.append(tuple(row))

    checks = {}
    for bound in OVERFLOW_BOUNDS:
        arr = np.asarray(loss_series[bound])
        checks[f"longer_queue_helps[overflow<={bound}]"] = bool(
            np.all(np.diff(arr) <= 1e-7)
        )
    penalty_arr = np.asarray(penalty_series)
    checks["shorter_queue_helps[penalty-dominated]"] = bool(
        np.all(np.diff(penalty_arr) >= -1e-7)
    )
    checks["queue_effect_is_real"] = bool(
        (loss_series[OVERFLOW_BOUNDS[0]][0] - loss_series[OVERFLOW_BOUNDS[0]][-1])
        > 0.05
        or (penalty_arr[-1] - penalty_arr[0]) > 0.05
    )

    table = format_table(
        ["queue_capacity"]
        + [f"power (overflow<={b})" for b in OVERFLOW_BOUNDS]
        + [f"power (penalty<={PENALTY_BOUND} only)"],
        rows,
        title="Fig. 14(b) — minimum power vs queue capacity",
    )
    return ExperimentResult(
        experiment_id="fig14b",
        title="Sensitivity to queue capacity (Fig. 14b)",
        tables=[table],
        data={
            "loss_series": {str(k): v for k, v in loss_series.items()},
            "penalty_series": penalty_series,
        },
        checks=checks,
    )
