"""Experiment drivers: one module per paper table/figure.

Every module exposes ``run(quick=False, seed=0) -> ExperimentResult``;
``quick=True`` shrinks simulation lengths for benchmark loops while
keeping every code path.  The registry in :mod:`~repro.experiments.runner`
maps experiment ids (``"table1"``, ``"fig6"``, ...) to drivers; the CLI
(``repro-dpm experiment <id>``) and the benchmark suite both go through
it.

Absolute numbers depend on our substituted workloads (see DESIGN.md);
what each driver *asserts* are the paper's shape claims — who wins, in
which direction each parameter pushes the optimum, where constraints
dominate.  The assertions live in ``ExperimentResult.checks`` so both
tests and benchmarks can verify them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Registry id (e.g. ``"fig8"``).
    title:
        Human-readable description, naming the paper artifact.
    tables:
        Rendered text tables — the rows/series the paper reports.
    data:
        Structured numeric results (series name -> list/dict), for
        programmatic consumption by tests.
    checks:
        Named qualitative assertions: ``{name: bool}``.  These encode
        the paper's shape claims and must all be True.
    """

    experiment_id: str
    title: str
    tables: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        """True when every recorded qualitative check holds."""
        return all(self.checks.values())

    @property
    def failed_checks(self) -> list[str]:
        """Names of the checks that failed."""
        return [name for name, ok in self.checks.items() if not ok]

    def render(self) -> str:
        """The full printable report for this experiment."""
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        parts.extend(self.tables)
        if self.checks:
            status = ", ".join(
                f"{name}={'PASS' if ok else 'FAIL'}"
                for name, ok in self.checks.items()
            )
            parts.append(f"checks: {status}")
        return "\n\n".join(parts)


from repro.experiments.runner import (  # noqa: E402 - re-export
    available_experiments,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "get_experiment",
    "run_experiment",
    "run_all",
]
