"""Fig. 8(a) — the disk drive's state-transition graph.

The paper's figure shows the 11-state SP topology (active state 1,
inactive states 2/4/7/10, transient states 3/5/6/8/9/11), drawing only
the transitions from and to the active state "for the sake of
readability".  This driver regenerates the figure as an edge table and
DOT source, and verifies the structural invariants the paper states:

* 11 states: one active, four inactive, six transients;
* transitions from transient states are command-insensitive ("when in
  transient states, the behavior of the SP is insensitive to the PM");
* transient states have zero service rate and active-level (2.5 W)
  power;
* the active state is reachable from every state under a held
  ``go_active`` (no dead ends), and every inactive state is reachable
  from active under its own command;
* expected wake delays along those paths equal Table I.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ExperimentResult
from repro.markov.graph import controlled_graph, edge_table, reachable_from, to_dot
from repro.systems import disk_drive


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 8(a) (quick/seed unused — pure structure)."""
    provider = disk_drive.build_provider()
    chain = provider.chain

    inactive = set(disk_drive.INACTIVE_ORDER)
    transients = {
        name for name in chain.state_names if name.endswith(("_down", "_wake"))
    }

    tensor = chain.tensor
    transients_insensitive = all(
        np.allclose(tensor[:, chain.state_index(name), :],
                    tensor[0, chain.state_index(name), :])
        for name in transients
    )
    transients_zero_rate = all(
        provider.service_rate(name, command) == 0.0
        for name in transients
        for command in chain.command_names
    )
    transients_active_power = all(
        provider.power(name, command) == 2.5
        for name in transients
        for command in chain.command_names
    )

    active_reachable_from_all = all(
        "active" in reachable_from(chain, name, "go_active")
        for name in chain.state_names
    )
    inactive_reachable_from_active = all(
        name in reachable_from(chain, "active", f"go_{name}")
        for name in inactive
    )

    graph = controlled_graph(chain)
    checks = {
        "eleven_states": chain.n_states == 11,
        "census_matches_paper": (
            len(inactive) == 4 and len(transients) == 6
        ),
        "transients_command_insensitive": transients_insensitive,
        "transients_zero_service_rate": transients_zero_rate,
        "transients_draw_active_power": transients_active_power,
        "active_reachable_from_everywhere": active_reachable_from_all,
        "every_inactive_state_reachable": inactive_reachable_from_active,
        "graph_connected": bool(
            len(graph.nodes) == 11 and len(graph.edges) >= 11
        ),
    }

    table = edge_table(chain, states=["active"])
    dot = to_dot(chain)
    return ExperimentResult(
        experiment_id="fig8a",
        title="Disk drive state-transition graph (Fig. 8a)",
        tables=[
            "Fig. 8(a) — transitions from and to the active state "
            "(the paper's readability cut):\n\n" + table,
            "Graphviz source (render with `dot -Tpng`):\n\n" + dot,
        ],
        data={
            "n_states": chain.n_states,
            "inactive": sorted(inactive),
            "transients": sorted(transients),
            "n_edges": len(graph.edges),
        },
        checks=checks,
    )
