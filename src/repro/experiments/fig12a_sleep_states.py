"""Fig. 12(a) — power versus the set of available sleep states.

Appendix B's first sensitivity study: six alternative SP structures
drawn from the sleep-state menu are optimized for minimum power under a
tight and a loose performance constraint.

Shape claims asserted (all from the paper's discussion):

* "Having more than one sleep state improves power, but many multiple
  sleep states are not always useful" — adding states never hurts
  (supersets achieve <= power), and for this workload adding states
  beyond sleep2 yields (almost) nothing;
* "introducing state sleep2 brings a sizable power reduction" — the
  sleep2 structures beat the sleep1 baseline by a clear margin at the
  loose constraint;
* "When the constraint is tight ... deep sleep states ... are less
  effective" — savings at the tight constraint are smaller than at the
  loose one;
* "the system with only the active and the sleep4 state performs
  better than the baseline" — sleep4-only < sleep1-only.
"""

from __future__ import annotations

from repro.core.optimizer import PolicyOptimizer
from repro.experiments import ExperimentResult
from repro.systems import baseline
from repro.util.tables import format_table

#: Six SP structures, as in the paper's figure (menu subsets).
STRUCTURES = (
    ("sleep1",),
    ("sleep2",),
    ("sleep4",),
    ("sleep1", "sleep2"),
    ("sleep1", "sleep2", "sleep3"),
    ("sleep1", "sleep2", "sleep3", "sleep4"),
)

TIGHT_PENALTY = 0.1
LOOSE_PENALTY = 0.9


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 12(a) (quick/seed unused — pure LP solves)."""
    rows = []
    results = {}
    for structure in STRUCTURES:
        bundle = baseline.build(sleep_states=list(structure))
        optimizer = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=bundle.gamma,
            initial_distribution=bundle.initial_distribution,
        )
        tight = optimizer.minimize_power(penalty_bound=TIGHT_PENALTY)
        loose = optimizer.minimize_power(penalty_bound=LOOSE_PENALTY)
        tight.require_feasible()
        loose.require_feasible()
        key = "+".join(structure)
        results[key] = {
            "tight": tight.average("power"),
            "loose": loose.average("power"),
        }
        rows.append((key, tight.average("power"), loose.average("power")))

    def loose_power(key: str) -> float:
        return results[key]["loose"]

    def tight_power(key: str) -> float:
        return results[key]["tight"]

    full = "sleep1+sleep2+sleep3+sleep4"
    checks = {
        # Supersets never hurt.
        "superset_never_worse_loose": (
            loose_power("sleep1+sleep2") <= loose_power("sleep1") + 1e-9
            and loose_power(full) <= loose_power("sleep1+sleep2") + 1e-9
        ),
        "superset_never_worse_tight": (
            tight_power("sleep1+sleep2") <= tight_power("sleep1") + 1e-9
            and tight_power(full) <= tight_power("sleep1+sleep2") + 1e-9
        ),
        # sleep2 is the big win for this workload...
        "sleep2_sizable_reduction": (
            loose_power("sleep2") < loose_power("sleep1") - 0.3
        ),
        # ...and deeper states add (almost) nothing beyond it.
        "deeper_states_marginal": (
            loose_power("sleep1+sleep2") - loose_power(full) < 0.05
        ),
        # Deep sleep states are less usable under the tight constraint.
        "tight_savings_smaller": (
            (tight_power("sleep1") - tight_power(full))
            < (loose_power("sleep1") - loose_power(full))
        ),
        # Fewer-but-better states can beat the baseline.
        "sleep4_only_beats_sleep1_only": (
            loose_power("sleep4") < loose_power("sleep1")
        ),
    }

    table = format_table(
        ["sleep states", f"power (penalty<={TIGHT_PENALTY})",
         f"power (penalty<={LOOSE_PENALTY})"],
        rows,
        title="Fig. 12(a) — minimum power vs available sleep states",
    )
    return ExperimentResult(
        experiment_id="fig12a",
        title="Sensitivity to the sleep-state structure (Fig. 12a)",
        tables=[table],
        data={"results": results},
        checks=checks,
    )
