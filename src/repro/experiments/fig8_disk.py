"""Fig. 8(b) — disk drive: optimal policies versus heuristics.

Reproduces the full comparison of Section VI-A:

* the *continuous line*: the Pareto curve of optimal policies (one
  constrained LP per performance bound);
* the *circles*: simulation of those same optimal policies (they must
  land on the analytic curve — the model-consistency check);
* *upward triangles*: deterministic greedy (eager) policies, one per
  inactive state — these are Markov stationary, so they are evaluated
  *exactly* and the dominance check against the curve is noise-free;
* *downward triangles*: timeout policies over a range of timeout values
  and target states (stateful, hence simulated);
* *boxes*: randomized-timeout policies (the heuristic rendition of
  randomized optimal policies).

Shape claims asserted: the optimal curve is convex and non-increasing;
simulated optimal policies land on it; no greedy policy beats it
(exact); no simulated heuristic beats it beyond Monte-Carlo noise.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.core.pareto import min_achievable, simulate_curve, trade_off_curve
from repro.core.policy import evaluate_policy
from repro.experiments import ExperimentResult
from repro.policies import (
    RandomizedTimeoutAgent,
    TimeoutAgent,
    eager_markov_policy,
)
from repro.sim import simulate_many
from repro.systems import disk_drive
from repro.util.tables import format_table

#: Tolerances for the simulated "circles on the curve" check.  The disk
#: workload mixes slowly (idle periods of ~2000 slices, wakes of up to
#: 6000), so a finite run carries real Monte-Carlo error.
SIM_RTOL = 0.15
SIM_ATOL = 0.10

#: Margin for simulated-heuristic dominance: the heuristic's *penalty*
#: estimate is noisy too, so the optimal reference is taken at an
#: inflated penalty (the curve is non-increasing, making this lenient).
PENALTY_MARGIN = 2.0


def run(
    quick: bool = False,
    seed: int = 0,
    backend: str = "auto",
    lp_backend: str = "scipy",
) -> ExperimentResult:
    """Regenerate Fig. 8(b): optimal curve, circles and heuristics.

    ``backend`` picks the simulation backend for the verification runs
    and ``lp_backend`` the LP solver — both forwarded from the CLI's
    ``experiment --backend/--lp-backend`` flags through the registry.
    """
    bundle = disk_drive.build()
    system, costs = bundle.system, bundle.costs
    optimizer = PolicyOptimizer(
        system,
        costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        backend=lp_backend,
    )
    n_slices = 60_000 if quick else 400_000

    # ------------------------------------------------------------------
    # The optimal trade-off curve, with bounds calibrated to the system.
    # ------------------------------------------------------------------
    floor = min_achievable(optimizer, PENALTY)
    cap = optimizer.minimize_unconstrained(POWER).require_feasible().average(PENALTY)
    bounds = list(np.geomspace(max(floor * 1.3, 1e-4), cap * 0.98, 8))
    # Full mode densifies the curve where it bends most (the sweep
    # engine bisects the largest objective gaps); quick mode keeps the
    # base grid so the check tolerances stay calibrated.
    curve = trade_off_curve(
        optimizer,
        bounds,
        objective=POWER,
        constraint=PENALTY,
        refine=0 if quick else 4,
    )

    xs = np.asarray([p.averages[PENALTY] for p in curve.feasible_points])
    ys = np.asarray([p.objective for p in curve.feasible_points])
    order = np.argsort(xs)
    xs, ys = xs[order], ys[order]

    # One batched, vectorized run simulates every optimal policy at once.
    circle_sims = simulate_curve(
        curve,
        system,
        costs,
        n_slices,
        seed,
        initial_state=("active", "0", 0),
        backend=backend,
    )
    circles = [sims[0] for sims in circle_sims if sims is not None]

    curve_rows = []
    sim_matches = []
    for point, sim in zip(curve.feasible_points, circles):
        # The circle (penalty_sim, power_sim) must land on the curve.
        expected = _interpolate_curve(xs, ys, sim.averages[PENALTY])
        sim_matches.append(_close(sim.averages[POWER], expected))
        curve_rows.append(
            (
                point.bound,
                point.averages[PENALTY],
                point.objective,
                sim.averages[PENALTY],
                sim.averages[POWER],
            )
        )

    # ------------------------------------------------------------------
    # Greedy (eager) heuristics: exact Markov evaluation.  The dominance
    # check is exact too — a fresh LP at the heuristic's own penalty
    # (chord interpolation between Pareto knots over-estimates a convex
    # curve, so it cannot serve as the reference).
    # ------------------------------------------------------------------
    active = bundle.metadata["active_command"]
    sleep_commands = bundle.metadata["sleep_commands"]
    greedy_rows = []
    greedy_above_curve = []
    for state, command in sleep_commands.items():
        policy = eager_markov_policy(system, active, command)
        evaluation = evaluate_policy(
            system, costs, policy, bundle.gamma, bundle.initial_distribution
        )
        penalty = evaluation.averages[PENALTY]
        power = evaluation.averages[POWER]
        optimal = optimizer.minimize_power(penalty_bound=penalty).require_feasible()
        optimal_power = optimal.average(POWER)
        greedy_above_curve.append(power >= optimal_power - 1e-7)
        greedy_rows.append((f"greedy->{state}", penalty, power, optimal_power))

    # ------------------------------------------------------------------
    # Timeout and randomized heuristics: simulated.
    # ------------------------------------------------------------------
    agents = []
    for timeout, state in [
        (20, "lpidle"),
        (100, "lpidle"),
        (200, "standby"),
        (1000, "standby"),
        (2000, "sleep"),
    ]:
        agents.append(
            (
                f"timeout({timeout})->{state}",
                TimeoutAgent(timeout, active, sleep_commands[state]),
            )
        )
    agents.append(
        (
            "randomized-timeout",
            RandomizedTimeoutAgent(
                timeouts=[20, 200, 2000],
                timeout_probabilities=[1 / 3, 1 / 3, 1 / 3],
                sleep_commands=[
                    sleep_commands["lpidle"],
                    sleep_commands["standby"],
                    sleep_commands["sleep"],
                ],
                sleep_probabilities=[1 / 3, 1 / 3, 1 / 3],
                active_command=active,
            ),
        )
    )

    heuristic_sims = simulate_many(
        system,
        costs,
        [agent for _, agent in agents],
        n_slices,
        seed + 1,
        initial_state=("active", "0", 0),
        backend=backend,
    )
    simulated_rows = []
    simulated_above = []
    for (name, _), sims in zip(agents, heuristic_sims):
        sim = sims[0]
        penalty = sim.averages[PENALTY]
        power = sim.averages[POWER]
        # Exact optimal power at an inflated penalty (lenient: both the
        # heuristic's penalty and power estimates carry sampling error).
        reference_result = optimizer.minimize_power(
            penalty_bound=penalty * PENALTY_MARGIN + SIM_ATOL
        ).require_feasible()
        reference = reference_result.average(POWER)
        simulated_above.append(power >= reference * (1.0 - SIM_RTOL) - SIM_ATOL)
        simulated_rows.append((name, penalty, power, reference))

    # ------------------------------------------------------------------
    # Checks and report.
    # ------------------------------------------------------------------
    loosest = curve.feasible_points[-1]
    deep = [sleep_commands["standby"], sleep_commands["sleep"]]
    deep_usage = float(loosest.policy.matrix[:, deep].sum())
    checks = {
        "curve_non_increasing": curve.is_non_increasing(),
        "curve_convex": curve.is_convex(tol=1e-6),
        "simulation_on_curve": sum(sim_matches) >= len(sim_matches) - 1,
        "greedy_never_beats_optimal_exact": all(greedy_above_curve),
        "simulated_heuristics_never_beat_optimal": all(simulated_above),
        "savings_available": loosest.objective < 0.7 * 2.5,
        "deep_states_used": deep_usage > 0.0,
    }

    table_curve = format_table(
        ["penalty_bound", "penalty", "power_opt", "penalty_sim", "power_sim"],
        curve_rows,
        title="Fig. 8(b) — optimal trade-off curve (line) and simulation (circles)",
    )
    table_greedy = format_table(
        ["policy", "penalty", "power", "power_opt_at_penalty"],
        greedy_rows,
        title="Fig. 8(b) — greedy policies, exact evaluation (upward triangles)",
    )
    table_sim = format_table(
        ["policy", "penalty_sim", "power_sim", "optimal_reference"],
        simulated_rows,
        title="Fig. 8(b) — timeout and randomized policies (downward triangles, boxes)",
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Disk drive: optimal vs heuristic power management (Fig. 8b)",
        tables=[table_curve, table_greedy, table_sim],
        data={
            "curve": curve_rows,
            "greedy": greedy_rows,
            "simulated_heuristics": simulated_rows,
            "penalty_floor": floor,
            "sweep_stats": curve.stats.as_dict(),
        },
        checks=checks,
    )


def _close(simulated: float, analytic: float) -> bool:
    return abs(simulated - analytic) <= SIM_RTOL * abs(analytic) + SIM_ATOL


def _interpolate_curve(xs: np.ndarray, ys: np.ndarray, penalty: float) -> float:
    """Optimal power at a given penalty (clamped linear interpolation)."""
    if penalty <= xs[0]:
        return float(ys[0])
    if penalty >= xs[-1]:
        return float(ys[-1])
    return float(np.interp(penalty, xs, ys))
