"""Fig. 12(b) — power versus sleep-state transition speed.

Appendix B's second study: a single sleep state whose wake transition
probability is swept (abscissa; right = faster transitions), for two
sleep powers (2 W and 0 W) and two constraint types (request-loss and
performance).  Time horizon is 1e3 slices.

Calibration note (see DESIGN.md): with the paper's queue of capacity 2
the queue-length penalty saturates so cheaply that a zero-power sleep
state can profitably "park" asleep regardless of wake speed; we use
capacity 4 so overflow costs scale with the wake delay, which restores
the paper's sensitivity of power to transition speed.  The cross
comparison ("high-power fast-transition beats low-power slow-
transition") is asserted on the loss-constrained series, where wake
delay directly produces overflow.

Shape claims asserted:

* power is non-increasing in the wake probability (all four series);
* at the slowest transition, loss-constrained optimization cannot
  exploit the sleep state (power stays near always-on);
* the 2 W sleep state at the fastest transition beats the 0 W state at
  the slowest (loss-constrained series).
"""

from __future__ import annotations

import numpy as np

from repro.core.optimizer import PolicyOptimizer
from repro.experiments import ExperimentResult
from repro.systems import baseline
from repro.systems.baseline import SleepSpec
from repro.util.tables import format_table

WAKE_PROBABILITIES = (0.002, 0.005, 0.02, 0.1, 0.5, 1.0)
SLEEP_POWERS = (2.0, 0.0)

#: Fig. 12(b) horizon of 1e3 slices.
GAMMA = 1.0 - 1e-3

QUEUE_CAPACITY = 4
PENALTY_BOUND = 0.3
LOSS_BOUND = 0.02


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 12(b) (quick/seed unused — pure LP solves)."""
    series: dict[str, list[float]] = {}
    rows = []
    for wake_p in WAKE_PROBABILITIES:
        row = [wake_p]
        for sleep_power in SLEEP_POWERS:
            spec = SleepSpec("sleep", sleep_power, wake_p)
            bundle = baseline.build(
                sleep_states=[spec], gamma=GAMMA, queue_capacity=QUEUE_CAPACITY
            )
            optimizer = PolicyOptimizer(
                bundle.system,
                bundle.costs,
                gamma=bundle.gamma,
                initial_distribution=bundle.initial_distribution,
            )
            for label, result in (
                (
                    f"perf(sleepP={sleep_power})",
                    optimizer.minimize_power(penalty_bound=PENALTY_BOUND),
                ),
                (
                    f"loss(sleepP={sleep_power})",
                    optimizer.minimize_power(loss_bound=LOSS_BOUND),
                ),
            ):
                result.require_feasible()
                series.setdefault(label, []).append(result.average("power"))
                row.append(result.average("power"))
        rows.append(tuple(row))

    checks = {}
    for label, values in series.items():
        arr = np.asarray(values)
        checks[f"non_increasing[{label}]"] = bool(np.all(np.diff(arr) <= 1e-7))
    # Slowest transitions: the loss budget inhibits sleeping.
    slowest_loss = min(series[f"loss(sleepP={p})"][0] for p in SLEEP_POWERS)
    checks["slow_transitions_inhibit_sleep"] = (
        slowest_loss > 0.9 * baseline.ACTIVE_POWER
    )
    # Fast 2 W sleep beats slow 0 W sleep (loss-constrained series).
    checks["fast_shallow_beats_slow_deep"] = (
        series["loss(sleepP=2.0)"][-1] < series["loss(sleepP=0.0)"][0]
    )
    # Transition speed matters: a large spread along each loss curve.
    checks["speed_strongly_matters"] = all(
        series[f"loss(sleepP={p})"][0] - series[f"loss(sleepP={p})"][-1] > 0.2
        for p in SLEEP_POWERS
    )

    headers = ["wake_prob"]
    for sleep_power in SLEEP_POWERS:
        headers.append(f"power perf-constr (sleep {sleep_power}W)")
        headers.append(f"power loss-constr (sleep {sleep_power}W)")
    table = format_table(
        headers,
        rows,
        title="Fig. 12(b) — minimum power vs wake transition probability",
    )
    return ExperimentResult(
        experiment_id="fig12b",
        title="Sensitivity to transition speed and sleep power (Fig. 12b)",
        tables=[table],
        data={"series": series, "wake_probabilities": list(WAKE_PROBABILITIES)},
        checks=checks,
    )
