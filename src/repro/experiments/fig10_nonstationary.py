"""Fig. 10 — nonstationary workload: where the Markov assumption breaks.

Paper Example 7.1: a highly nonstationary workload is built by merging
two real-world traces with completely different statistics (a text
editing session and a C compile burst).  A *single* two-state Markov SR
is fitted to the whole trace, optimal policies are computed against
that model, and then simulated against the original trace — alongside
a timeout heuristic.

The paper's point, asserted as checks: "In some cases, timeout-based
shutdown outperforms stochastic control.  This is a situation where one
of our modeling assumptions is not valid ... Markovian policies may be
good but are not provably globally optimum."  Concretely we assert
that the fitted-model *predictions* mis-estimate the trace results (the
model is wrong), and that the best timeout point is competitive with —
within a few percent of or better than — some stochastic point at
comparable penalty, in contrast to the Markovian case of Fig. 9(b).
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.experiments import ExperimentResult
from repro.policies import StationaryPolicyAgent, TimeoutAgent
from repro.sim import make_rng
from repro.sim.trace_sim import simulate_trace
from repro.systems import cpu
from repro.traces import merge_traces, mmpp2_trace, periodic_burst_trace
from repro.util.tables import format_table

PENALTY_BOUNDS = (0.005, 0.01, 0.02, 0.04, 0.08)
TIMEOUTS = (0, 2, 5, 10, 20, 50)


def build_nonstationary_trace(n_slices: int, rng) -> "Trace":
    """An editing-like sparse segment followed by a compile-like burst.

    Mirrors Example 7.1: "The first trace presents alternating idle and
    active periods, while the second one has a long activity burst."
    """
    editing = mmpp2_trace(
        p_stay_idle=0.98,
        p_stay_busy=0.7,
        n_slices=n_slices // 2,
        resolution=cpu.TIME_RESOLUTION,
        rng=rng,
    )
    compiling = periodic_burst_trace(
        burst_length=max(n_slices // 4, 10),
        gap_length=max(n_slices // 40, 2),
        n_slices=n_slices - n_slices // 2,
        resolution=cpu.TIME_RESOLUTION,
    )
    return merge_traces([editing, compiling])


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 10."""
    rng = make_rng(seed)
    n_slices = 20_000 if quick else 100_000
    trace = build_nonstationary_trace(n_slices, rng)
    arrival_counts = trace.discretize(cpu.TIME_RESOLUTION)

    # One stationary two-state model for the whole nonstationary trace.
    bundle = cpu.build_from_trace(trace)
    system, costs = bundle.system, bundle.costs
    optimizer = PolicyOptimizer(
        system,
        costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        action_mask=bundle.action_mask,
    )
    model = bundle.metadata["sr_model"]
    sleep_index = bundle.metadata["sleep_state_index"]

    def sleep_busy_penalty(s, q, z):
        return 1.0 if (s == sleep_index and z > 0) else 0.0

    # --- optimal (model-based) policies simulated on the real trace ---
    optimal_rows = []
    model_errors = []
    for bound in PENALTY_BOUNDS:
        result = optimizer.minimize_power(penalty_bound=float(bound))
        if not result.feasible:
            continue
        agent = StationaryPolicyAgent(system, result.policy)
        sim = simulate_trace(
            system,
            agent,
            arrival_counts,
            rng,
            tracker=model.tracker(),
            penalty_fn=sleep_busy_penalty,
            initial_provider_state="active",
        )
        predicted_power = result.average(POWER)
        predicted_penalty = result.average(PENALTY)
        # Misprediction on either axis counts: the stationary model's
        # penalty estimate is the one the nonstationary trace breaks.
        model_errors.append(
            max(
                abs(sim.mean_power - predicted_power)
                / max(predicted_power, 1e-9),
                abs(sim.mean_penalty - predicted_penalty)
                / max(predicted_penalty, sim.mean_penalty, 1e-9),
            )
        )
        optimal_rows.append(
            (bound, predicted_power, sim.mean_power, sim.mean_penalty)
        )

    # --- timeout heuristic on the same trace ---------------------------
    active = bundle.metadata["active_command"]
    sleep_cmd = bundle.metadata["sleep_command"]
    timeout_rows = []
    for timeout in TIMEOUTS:
        agent = TimeoutAgent(timeout, active, sleep_cmd)
        sim = simulate_trace(
            system,
            agent,
            arrival_counts,
            rng,
            tracker=model.tracker(),
            penalty_fn=sleep_busy_penalty,
            initial_provider_state="active",
        )
        timeout_rows.append((timeout, sim.mean_penalty, sim.mean_power))

    # --- the paper's qualitative claims --------------------------------
    # (1) The stationary model mispredicts the nonstationary trace.
    model_mispredicts = max(model_errors) > 0.05 if model_errors else False
    # (2) Timeout is competitive: some timeout point matches or beats a
    #     stochastic point on both axes (within 5% power).
    competitive = False
    for _, t_pen, t_pow in timeout_rows:
        for _, _, s_pow, s_pen in optimal_rows:
            if t_pen <= s_pen + 1e-3 and t_pow <= s_pow * 1.05:
                competitive = True

    checks = {
        "model_mispredicts_trace": model_mispredicts,
        "timeout_competitive_under_nonstationarity": competitive,
        "trace_is_nonstationary": _halves_differ(arrival_counts),
    }

    table_opt = format_table(
        ["penalty_bound", "power_model", "power_trace", "penalty_trace"],
        optimal_rows,
        title="Fig. 10 — stochastic policies: model prediction vs trace simulation",
    )
    table_timeout = format_table(
        ["timeout", "penalty_trace", "power_trace"],
        timeout_rows,
        title="Fig. 10 — timeout heuristic on the same nonstationary trace",
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Nonstationary workload breaks the Markov assumption (Fig. 10)",
        tables=[table_opt, table_timeout],
        data={
            "optimal": optimal_rows,
            "timeout": timeout_rows,
            "model_errors": model_errors,
        },
        checks=checks,
    )


def _halves_differ(counts: np.ndarray) -> bool:
    """The two halves of the trace have very different request rates."""
    half = counts.size // 2
    first = counts[:half].mean()
    second = counts[half:].mean()
    return bool(abs(first - second) > 0.2 * max(first, second, 1e-9))
