"""Experiment registry: id -> driver, with lazy imports.

Experiment ids follow the paper's artifact names (``table1``, ``fig6``,
``fig8`` ...).  Drivers are imported on first use so that importing
:mod:`repro.experiments` stays cheap.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Callable

#: Experiment id -> module path (each module exposes ``run``).
_REGISTRY: dict[str, str] = {
    "table1": "repro.experiments.table1_disk",
    "fig6": "repro.experiments.fig6_pareto",
    "fig8a": "repro.experiments.fig8a_disk_graph",
    "fig8": "repro.experiments.fig8_disk",
    "fig9a": "repro.experiments.fig9a_web_server",
    "fig9b": "repro.experiments.fig9b_cpu",
    "fig10": "repro.experiments.fig10_nonstationary",
    "fig12a": "repro.experiments.fig12a_sleep_states",
    "fig12b": "repro.experiments.fig12b_transition_cost",
    "fig13a": "repro.experiments.fig13a_burstiness",
    "fig13b": "repro.experiments.fig13b_sr_memory",
    "fig14a": "repro.experiments.fig14a_horizon",
    "fig14b": "repro.experiments.fig14b_queue_length",
    "example_a2": "repro.experiments.example_a2",
}


def available_experiments() -> tuple[str, ...]:
    """All registered experiment ids, in paper order."""
    return tuple(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable:
    """The ``run`` callable for ``experiment_id``."""
    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(_REGISTRY)}"
        )
    module = importlib.import_module(_REGISTRY[experiment_id])
    return module.run


def run_experiment(
    experiment_id: str, quick: bool = False, seed: int = 0, **kwargs
):
    """Run one experiment and return its :class:`ExperimentResult`.

    Extra keyword arguments (``backend=`` for the simulation backend,
    ``lp_backend=`` for the LP solver, ...) are forwarded to drivers
    whose ``run`` signature accepts them and silently dropped for the
    rest — the CLI passes user flags through here without every driver
    having to grow every knob.  ``None`` values are never forwarded
    (they mean "driver default").
    """
    driver = get_experiment(experiment_id)
    parameters = inspect.signature(driver).parameters
    accepts_any = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    forwarded = {
        name: value
        for name, value in kwargs.items()
        if value is not None and (accepts_any or name in parameters)
    }
    return driver(quick=quick, seed=seed, **forwarded)


def run_all(quick: bool = False, seed: int = 0, **kwargs) -> dict:
    """Run every registered experiment; returns ``{id: result}``."""
    return {
        experiment_id: run_experiment(
            experiment_id, quick=quick, seed=seed, **kwargs
        )
        for experiment_id in _REGISTRY
    }
