"""Table I — disk-drive state inventory, wake times and power.

Regenerates the paper's Table I *from the constructed Markov model*:
the expected wake-to-active delay of each inactive state is computed as
the hitting time of the ``active`` state under a held ``go_active``
command, and must equal the data-sheet value the model was built from.
This closes the loop on the transient-state reconstruction (DESIGN.md):
whatever topology we chose, the observable delays must match Table I.
"""

from __future__ import annotations

from repro.experiments import ExperimentResult
from repro.markov.analysis import hitting_time
from repro.systems import disk_drive
from repro.util.tables import format_table


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Rebuild Table I from the model and verify it (quick/seed unused)."""
    provider = disk_drive.build_provider()
    chain = provider.chain
    active = chain.state_index("active")
    go_active = chain.command_index("go_active")
    times = hitting_time(chain.matrix(go_active), [active])

    rows = []
    measured = {}
    for state in ["active"] + disk_drive.INACTIVE_ORDER:
        idx = chain.state_index(state)
        wake_ms = times[idx] * disk_drive.TIME_RESOLUTION * 1e3
        power = provider.power(state, f"go_{state}" if state != "active" else "go_active")
        rows.append(
            (
                state,
                "n/a" if state == "active" else f"{wake_ms:.1f} ms",
                f"{power:.1f} W",
            )
        )
        measured[state] = {"wake_ms": float(wake_ms), "power": float(power)}

    expected_wake_ms = {"idle": 1.0, "lpidle": 40.0, "standby": 2200.0, "sleep": 6000.0}
    expected_power = dict(disk_drive.STATE_POWER)

    checks = {}
    for state, wake in expected_wake_ms.items():
        checks[f"wake_time_{state}"] = (
            abs(measured[state]["wake_ms"] - wake) <= 1e-6 * max(wake, 1.0)
        )
    for state, power in expected_power.items():
        checks[f"power_{state}"] = abs(measured[state]["power"] - power) <= 1e-12
    checks["eleven_sp_states"] = provider.n_states == 11
    checks["six_transients"] = (
        len([s for s in provider.state_names if s.endswith(("_down", "_wake"))]) == 6
    )

    table = format_table(
        ["State", "T (wake to active)", "Power"],
        rows,
        title="Table I — IBM Travelstar VP states (regenerated from the model)",
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Disk-drive states, transition times and power (Table I)",
        tables=[table],
        data={"measured": measured},
        checks=checks,
    )
