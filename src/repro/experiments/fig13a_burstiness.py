"""Fig. 13(a) — power versus workload burstiness.

Appendix B: the SR's flip probability is swept (abscissa; left =
burstier: longer idle and busy runs) while the stationary request
probability stays fixed at 0.5 — "increased burstiness does not imply
reduced workload.  In fact, the probability of issuing a request is the
same (0.5) for all data points in the plot."

The SP has the full four-sleep-state menu; power is minimized under a
request-loss bound and two performance-constraint settings (the two
sets of points).  Shape claim: "The more bursty is the receiver the
more effective is power management" — optimal power is non-decreasing
in the flip probability.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimizer import PolicyOptimizer
from repro.experiments import ExperimentResult
from repro.systems import baseline
from repro.util.tables import format_table

FLIP_PROBABILITIES = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.3)
PENALTY_BOUNDS = (0.3, 0.7)

#: Request-loss budget, as expected overflow (lost requests per slice);
#: overflow scales with wake delays, so burstier workloads — longer
#: idle runs per wake — can afford deeper sleep states at equal budget.
OVERFLOW_BOUND = 0.005

#: Fig. 13 horizon of 1e5 slices.
GAMMA = 1.0 - 1e-5

SLEEP_STATES = ("sleep1", "sleep2", "sleep3", "sleep4")


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 13(a) (quick/seed unused — pure LP solves)."""
    rows = []
    series = {bound: [] for bound in PENALTY_BOUNDS}
    loads = []
    for flip in FLIP_PROBABILITIES:
        bundle = baseline.build(
            sleep_states=list(SLEEP_STATES), gamma=GAMMA, sr_flip=flip
        )
        loads.append(bundle.system.requester.mean_arrival_rate())
        optimizer = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=bundle.gamma,
            initial_distribution=bundle.initial_distribution,
        )
        row = [flip]
        for bound in PENALTY_BOUNDS:
            result = optimizer.minimize_power(
                penalty_bound=bound,
                extra_upper_bounds={"overflow": OVERFLOW_BOUND},
            ).require_feasible()
            series[bound].append(result.average("power"))
            row.append(result.average("power"))
        rows.append(tuple(row))

    checks = {
        # Load is identical across the sweep — only burstiness changes.
        "constant_load": bool(
            np.allclose(loads, 0.5, atol=1e-9)
        ),
    }
    for bound in PENALTY_BOUNDS:
        arr = np.asarray(series[bound])
        checks[f"burstier_saves_more[penalty<={bound}]"] = bool(
            np.all(np.diff(arr) >= -1e-7)
        )
        checks[f"spread_is_real[penalty<={bound}]"] = bool(
            arr[-1] - arr[0] > 0.1
        )

    table = format_table(
        ["flip_prob"] + [f"power (penalty<={b})" for b in PENALTY_BOUNDS],
        rows,
        title=(
            "Fig. 13(a) — minimum power vs SR burstiness "
            f"(overflow <= {OVERFLOW_BOUND}; smaller flip = burstier)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig13a",
        title="Sensitivity to workload burstiness (Fig. 13a)",
        tables=[table],
        data={"series": {str(k): v for k, v in series.items()}, "loads": loads},
        checks=checks,
    )
