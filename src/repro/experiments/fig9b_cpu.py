"""Fig. 9(b) — CPU: optimal stochastic control vs timeout heuristic.

The SA-1100 model leaves the power manager a single degree of freedom:
the probability of issuing ``shutdown`` when the CPU is active and the
workload idle.  The solid line sweeps the penalty constraint (penalty =
probability of being asleep when work arrives) and computes minimum
power; the dashed line sweeps timeout values for a timeout heuristic.

The paper's claim, asserted as a check: "optimum stochastic control
performs better than a timeout heuristic even in this case, where the
power manager can only control shutdown.  The difference ... is due to
the fact that timeout-based policies waste power while waiting for a
timeout to expire."  Concretely: every simulated timeout point must lie
on or above the optimal curve (up to Monte-Carlo noise), and the
timeout-0 (eager) point strictly above nothing — eager is the power-
minimal corner both approaches share.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.experiments import ExperimentResult
from repro.policies import TimeoutAgent
from repro.sim import simulate_many
from repro.systems import cpu
from repro.util.tables import format_table

PENALTY_BOUNDS = (0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12)
TIMEOUTS = (0, 1, 2, 5, 10, 20, 50)

SIM_RTOL = 0.10
SIM_ATOL = 0.02


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 9(b)."""
    bundle = cpu.build()
    system, costs = bundle.system, bundle.costs
    optimizer = PolicyOptimizer(
        system,
        costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        action_mask=bundle.action_mask,
    )
    n_slices = 50_000 if quick else 300_000

    # --- optimal curve (solid line) -----------------------------------
    optimal_rows = []
    single_parameter = []
    for bound in PENALTY_BOUNDS:
        result = optimizer.minimize_power(penalty_bound=float(bound))
        if not result.feasible:
            optimal_rows.append((bound, float("nan"), float("nan")))
            continue
        optimal_rows.append(
            (bound, result.average(PENALTY), result.average(POWER))
        )
        single_parameter.append(_count_free_decisions(system, result.policy))

    xs = np.asarray([r[1] for r in optimal_rows if np.isfinite(r[2])])
    ys = np.asarray([r[2] for r in optimal_rows if np.isfinite(r[2])])
    order = np.argsort(xs)
    xs, ys = xs[order], ys[order]

    # --- timeout heuristic (dashed line), simulated --------------------
    active = bundle.metadata["active_command"]
    sleep = bundle.metadata["sleep_command"]
    # Stateful heuristics: one dispatch call, loop backend per agent.
    timeout_sims = simulate_many(
        system,
        costs,
        [TimeoutAgent(timeout, active, sleep) for timeout in TIMEOUTS],
        n_slices,
        seed,
        initial_state=("active", "idle", 0),
    )
    timeout_rows = []
    timeout_above = []
    for timeout, sims in zip(TIMEOUTS, timeout_sims):
        sim = sims[0]
        penalty = sim.averages[PENALTY]
        power = sim.averages[POWER]
        # Exact optimal power at the (slightly inflated) same penalty.
        reference = optimizer.minimize_power(
            penalty_bound=penalty * 1.2 + 1e-3
        ).require_feasible().average(POWER)
        timeout_above.append(power >= reference * (1.0 - SIM_RTOL) - SIM_ATOL)
        timeout_rows.append((timeout, penalty, power, reference))

    # Timeout policies waste power while waiting: at matched penalty the
    # longest timeout must burn strictly more than the optimum.
    long_timeout = timeout_rows[-1]
    strictly_worse = long_timeout[2] > long_timeout[3] + 1e-3

    checks = {
        "optimal_curve_non_increasing": bool(np.all(np.diff(ys) <= 1e-9)),
        "timeouts_never_beat_optimal": all(timeout_above),
        "timeout_strictly_wasteful": strictly_worse,
        # Section VI-C: the optimum has one free decision, in state
        # (active, idle) — all other states are hardware-forced.
        "single_free_decision": all(n <= 1 for n in single_parameter),
        "sleep_saves_power": ys[-1] < 0.9 * cpu.ACTIVE_POWER,
    }

    table_opt = format_table(
        ["penalty_bound", "penalty", "power_opt"],
        optimal_rows,
        title="Fig. 9(b) — optimal stochastic control (solid line)",
    )
    table_timeout = format_table(
        ["timeout", "penalty_sim", "power_sim", "power_opt_at_penalty"],
        timeout_rows,
        title="Fig. 9(b) — timeout heuristic (dashed line)",
    )
    return ExperimentResult(
        experiment_id="fig9b",
        title="CPU: optimal stochastic control vs timeout (Fig. 9b)",
        tables=[table_opt, table_timeout],
        data={"optimal": optimal_rows, "timeout": timeout_rows},
        checks=checks,
    )


def _count_free_decisions(system, policy) -> int:
    """Number of states where the policy genuinely randomizes."""
    matrix = policy.matrix
    return int(np.sum((matrix.max(axis=1) < 1.0 - 1e-9)))
