"""Fig. 13(b) — power versus SR model memory.

Appendix B: the service requester is modelled with memory k (2^k
states).  "Intuitively, longer memory means more complex correlations
between past and current history ... a more complex SR model gives the
optimizer more possibilities of exploiting past history to predict
request issues and take optimal decisions."

Methodology (strengthened relative to the paper so the claim is
checkable without the original traces): the workload is *generated* by
a known 3-memory Markov source, so the memory-3 extraction recovers the
truth while lower memories are coarsenings.  For each k we

1. extract the k-memory model from one long sampled stream,
2. optimize the baseline system against that model, and
3. lift the resulting policy onto the ground-truth system (a k-memory
   state is a function of the 3-bit history) and evaluate it *exactly*
   there.

Shape claims: evaluated-on-truth power is non-increasing in k; the
model fit (log-likelihood) improves with k; the memory gain is at
least as large when the SP offers more sleep states ("the optimal
policy matches the length of idle periods with the best sleep state").
"""

from __future__ import annotations

import numpy as np

from repro.core.optimizer import PolicyOptimizer
from repro.core.policy import MarkovPolicy, evaluate_policy
from repro.experiments import ExperimentResult
from repro.sim import make_rng
from repro.systems import baseline
from repro.traces.extractor import SRExtractor
from repro.util.tables import format_table

MEMORIES = (1, 2, 3)
PENALTY_BOUND = 0.6

#: Fig. 13 horizon of 1e5 slices.
GAMMA = 1.0 - 1e-5

#: Two SP structures: the baseline and a two-sleep-state variant.
SP_VARIANTS = {
    "sleep1": ("sleep1",),
    "sleep1+sleep2": ("sleep1", "sleep2"),
}

#: Ground truth: P(request | last three slices' request bits).  Strong
#: third-order structure: a lone request is usually spurious, two in the
#: last three sustain a burst, long bursts die out.
TRUE_CONDITIONALS = {
    (0, 0, 0): 0.02,
    (0, 0, 1): 0.85,
    (0, 1, 0): 0.30,
    (0, 1, 1): 0.90,
    (1, 0, 0): 0.10,
    (1, 0, 1): 0.80,
    (1, 1, 0): 0.25,
    (1, 1, 1): 0.55,
}


def _sample_stream(n_slices: int, rng) -> np.ndarray:
    """Sample a request-bit stream from the ground-truth source."""
    bits = np.zeros(n_slices, dtype=int)
    history = (0, 0, 0)
    uniforms = rng.random(n_slices)
    for t in range(n_slices):
        bit = 1 if uniforms[t] < TRUE_CONDITIONALS[history] else 0
        bits[t] = bit
        history = (history[1], history[2], bit)
    return bits


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 13(b)."""
    rng = make_rng(seed)
    n_slices = 60_000 if quick else 250_000
    stream = _sample_stream(n_slices, rng)

    # The ground-truth requester is the memory-3 extraction of a very
    # long stream; with this much data it matches TRUE_CONDITIONALS to
    # a few parts per thousand.
    true_model = SRExtractor(memory=3).fit(stream)
    true_requester = true_model.to_requester()

    rows = []
    series: dict[str, list[float]] = {}
    likelihoods = []
    for memory in MEMORIES:
        model = SRExtractor(memory=memory).fit(stream)
        likelihoods.append(model.log_likelihood(stream) / stream.size)
        requester = model.to_requester()
        row = [memory, requester.n_states]
        for variant, sleeps in SP_VARIANTS.items():
            # Optimize against the k-memory model...
            bundle_k = baseline.build(
                sleep_states=list(sleeps), gamma=GAMMA, requester=requester
            )
            optimizer_k = PolicyOptimizer(
                bundle_k.system,
                bundle_k.costs,
                gamma=bundle_k.gamma,
                initial_distribution=bundle_k.initial_distribution,
            )
            result = optimizer_k.minimize_power(
                penalty_bound=PENALTY_BOUND
            ).require_feasible()

            # ...then lift the policy onto the ground-truth system and
            # evaluate it exactly there.
            bundle_true = baseline.build(
                sleep_states=list(sleeps), gamma=GAMMA, requester=true_requester
            )
            lifted = _lift_policy(
                result.policy, bundle_k.system, bundle_true.system, model, true_model
            )
            evaluation = evaluate_policy(
                bundle_true.system,
                bundle_true.costs,
                lifted,
                GAMMA,
                bundle_true.initial_distribution,
            )
            series.setdefault(variant, []).append(evaluation.averages["power"])
            row.append(evaluation.averages["power"])
        rows.append(tuple(row))

    checks = {
        "likelihood_improves_with_memory": bool(
            np.all(np.diff(likelihoods) >= -1e-9)
        ),
    }
    for variant in SP_VARIANTS:
        arr = np.asarray(series[variant])
        checks[f"memory_helps[{variant}]"] = bool(
            np.all(np.diff(arr) <= 5e-3)
        )
        checks[f"memory_gain_is_real[{variant}]"] = bool(arr[0] - arr[-1] > 0.01)
    gain_one = series["sleep1"][0] - series["sleep1"][-1]
    gain_two = series["sleep1+sleep2"][0] - series["sleep1+sleep2"][-1]
    checks["more_sleep_states_amplify_memory_gain"] = gain_two >= gain_one - 5e-3

    headers = ["memory", "sr_states"] + [
        f"power-on-truth[{variant}]" for variant in SP_VARIANTS
    ]
    table = format_table(
        headers,
        rows,
        title=(
            "Fig. 13(b) — power of k-memory-optimized policies, evaluated "
            f"on the ground-truth workload (penalty <= {PENALTY_BOUND})"
        ),
    )
    return ExperimentResult(
        experiment_id="fig13b",
        title="Sensitivity to SR memory (Fig. 13b)",
        tables=[table],
        data={
            "series": series,
            "log_likelihood_per_slice": likelihoods,
        },
        checks=checks,
    )


def _lift_policy(
    policy: MarkovPolicy,
    system_k,
    system_true,
    model_k,
    model_true,
) -> MarkovPolicy:
    """Express a k-memory policy on the ground-truth joint state space.

    A k-memory SR state is the last-k window of the true model's
    3-slice window, so every true joint state maps to exactly one
    k-model joint state; the lifted policy copies that row.
    """
    n_true = system_true.n_states
    matrix = np.zeros((n_true, system_true.n_commands))
    sp_of = system_true.provider_index_of_state
    sr_of = system_true.requester_index_of_state
    q_of = system_true.queue_length_of_state
    n_sr_k = system_k.requester.n_states
    n_q = system_k.queue.n_states
    for x in range(n_true):
        window = model_true.states[sr_of[x]]
        r_k = model_k.state_index(window[-model_k.memory:])
        joint_k = (sp_of[x] * n_sr_k + r_k) * n_q + q_of[x]
        matrix[x] = policy.matrix[joint_k]
    return MarkovPolicy(matrix, system_true.command_names)
