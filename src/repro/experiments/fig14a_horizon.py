"""Fig. 14(a) — power versus optimization time horizon.

Appendix B: optimal power for the four-sleep-state SP as a function of
the time horizon (abscissa: probability of a transition to the trap
state, i.e. ``1 - gamma``; longer horizons to the left), for two
request-loss constraints.

Shape claim: "The longer the time horizon the better are the achievable
power savings, because the optimizer has a longer time to amortize
wrong decisions, hence, more degrees of freedom in selecting aggressive
shutdown policies."

Calibration notes (see DESIGN.md / EXPERIMENTS.md):

* the sweep covers horizons comparable to the sleep-state transition
  times (2 to 100 slices) — the regime where amortization is the
  binding effect and the paper's claim holds sharply.  At much longer
  horizons our LP exhibits a small *non-monotonicity*: the discounted
  session formulation lets policies sleep into the session end without
  ever serving pending requests, an accounting artifact the paper
  itself acknowledges ("this assumption can result in a slight error
  ... because after the closing of a session some time might be
  necessary to serve the pending requests");
* sessions start from a 50/50 busy/idle mix (all-active, empty queue),
  so short sessions cannot gamble on an initial idle period;
* the loss constraint is the expected-overflow metric (actual lost
  requests), which scales with wake delays.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimizer import PolicyOptimizer
from repro.experiments import ExperimentResult
from repro.systems import baseline
from repro.util.tables import format_table

#: Trap-state probabilities (1 - gamma), longest horizon first.
TRAP_PROBABILITIES = (0.01, 0.03, 0.1, 0.2, 0.5)
OVERFLOW_BOUNDS = (0.002, 0.01)
PENALTY_BOUND = 0.5

SLEEP_STATES = ("sleep1", "sleep2", "sleep3", "sleep4")


def _mixed_start(system) -> np.ndarray:
    """50/50 busy/idle sessions, starting active with an empty queue."""
    p0 = np.zeros(system.n_states)
    p0[system.state_index("active", "0", 0)] = 0.5
    p0[system.state_index("active", "1", 0)] = 0.5
    return p0


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Regenerate Fig. 14(a) (quick/seed unused — pure LP solves)."""
    rows = []
    series = {bound: [] for bound in OVERFLOW_BOUNDS}
    for trap in TRAP_PROBABILITIES:
        gamma = 1.0 - trap
        bundle = baseline.build(sleep_states=list(SLEEP_STATES), gamma=gamma)
        optimizer = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=bundle.gamma,
            initial_distribution=_mixed_start(bundle.system),
        )
        row = [trap, 1.0 / trap]
        for bound in OVERFLOW_BOUNDS:
            result = optimizer.minimize_power(
                penalty_bound=PENALTY_BOUND,
                extra_upper_bounds={"overflow": bound},
            ).require_feasible()
            series[bound].append(result.average("power"))
            row.append(result.average("power"))
        rows.append(tuple(row))

    checks = {}
    for bound in OVERFLOW_BOUNDS:
        arr = np.asarray(series[bound])
        # Rows are ordered longest horizon first: power must rise as
        # the horizon shrinks (less time to amortize transitions).
        checks[f"longer_horizon_saves_more[overflow<={bound}]"] = bool(
            np.all(np.diff(arr) >= -1e-7)
        )
        checks[f"horizon_effect_is_real[overflow<={bound}]"] = bool(
            arr[-1] - arr[0] > 0.1
        )
    # At the shortest horizon transitions cannot amortize at all.
    checks["shortest_horizon_near_always_on"] = bool(
        min(series[b][-1] for b in OVERFLOW_BOUNDS)
        > 0.95 * baseline.ACTIVE_POWER
    )
    # A tighter loss bound can only increase power, pointwise.
    tight, loose = min(OVERFLOW_BOUNDS), max(OVERFLOW_BOUNDS)
    checks["tight_loss_costs_power"] = bool(
        np.all(np.asarray(series[tight]) >= np.asarray(series[loose]) - 1e-9)
    )

    table = format_table(
        ["trap_prob", "horizon", *(f"power (overflow<={b})" for b in OVERFLOW_BOUNDS)],
        rows,
        title="Fig. 14(a) — minimum power vs time horizon",
        float_format=".4g",
    )
    return ExperimentResult(
        experiment_id="fig14a",
        title="Sensitivity to the time horizon (Fig. 14a)",
        tables=[table],
        data={"series": {str(k): v for k, v in series.items()}},
        checks=checks,
    )
