"""Fig. 9(a) — web server: power vs throughput trade-off.

Sweeps the minimum-throughput requirement for the dual-processor web
server, computing minimum power at each level (the paper's solid line)
and simulating each optimal policy (the circles).

The paper's analysis finding is asserted as a check: "the processor
with higher performance was never used alone" — P2 burns 2x the power
of P1 for only 1.5x the throughput, so the optimal policies put
(essentially) no stationary probability on the P2-only configuration.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import POWER
from repro.core.optimizer import PolicyOptimizer
from repro.core.pareto import simulate_curve
from repro.core.pareto_sweep import ParetoSweepSolver
from repro.experiments import ExperimentResult
from repro.systems import web_server
from repro.util.tables import format_table

#: Swept minimum expected delivered throughput (per-slice average).
THROUGHPUT_BOUNDS = (0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20)

#: Simulated-vs-analytic agreement tolerances.
SIM_RTOL = 0.12
SIM_ATOL = 0.05


def run(
    quick: bool = False,
    seed: int = 0,
    backend: str = "auto",
    lp_backend: str = "scipy",
) -> ExperimentResult:
    """Regenerate Fig. 9(a).

    ``backend``/``lp_backend`` select the simulation and LP backends
    (forwarded from the CLI through the experiment registry).
    """
    bundle = web_server.build()
    system, costs = bundle.system, bundle.costs
    optimizer = PolicyOptimizer(
        system,
        costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        backend=lp_backend,
    )
    n_slices = 40_000 if quick else 200_000

    p2_index = system.provider.chain.state_index("p2")
    sp_of = system.provider_index_of_state

    # The sweep engine handles the lower-bound sweep directly
    # (``constraint_sense=">="``: tightening as the bound grows, so the
    # infeasible side — if any — is the suffix); all optimal policies
    # are then verified in one vectorized batch.
    solver = ParetoSweepSolver(
        optimizer,
        objective=POWER,
        constraint="throughput",
        constraint_sense=">=",
    )
    curve = solver.solve(THROUGHPUT_BOUNDS)
    sims = simulate_curve(
        curve,
        system,
        costs,
        n_slices,
        seed,
        initial_state=("both", "0", 0),
        backend=backend,
    )

    rows = []
    powers = []
    sim_matches = []
    p2_alone_usage = []
    feasible_bounds = []
    for point, point_sims in zip(curve.points, sims):
        bound = point.bound
        if not point.feasible:
            rows.append((bound, float("nan"), float("nan"), float("nan")))
            continue
        feasible_bounds.append(bound)
        powers.append(point.objective)
        # Discounted share of time spent in the P2-only configuration.
        occupancy = point.result.evaluation.frequencies.sum(axis=1)
        share = float(occupancy[sp_of == p2_index].sum() * (1.0 - bundle.gamma))
        p2_alone_usage.append(share)

        sim_power = point_sims[0].averages[POWER]
        sim_matches.append(
            abs(sim_power - point.objective)
            <= SIM_RTOL * abs(point.objective) + SIM_ATOL
        )
        rows.append(
            (
                bound,
                point.objective,
                point.averages["throughput"],
                sim_power,
            )
        )

    powers_arr = np.asarray(powers)
    checks = {
        "all_bounds_feasible": len(feasible_bounds) == len(THROUGHPUT_BOUNDS),
        "power_non_decreasing_in_throughput": bool(
            np.all(np.diff(powers_arr) >= -1e-9)
        ),
        "simulation_matches": sum(sim_matches) >= len(sim_matches) - 1,
        # The paper's headline analysis result.
        "fast_processor_never_alone": all(u <= 1e-6 for u in p2_alone_usage),
        "management_saves_power": powers_arr[0] < 3.0 * 0.5,
    }

    table = format_table(
        ["throughput_bound", "power_opt", "throughput", "power_sim"],
        rows,
        title="Fig. 9(a) — web server: minimum power vs throughput requirement",
    )
    return ExperimentResult(
        experiment_id="fig9a",
        title="Dual-processor web server trade-off (Fig. 9a)",
        tables=[table],
        data={
            "throughput_bounds": list(THROUGHPUT_BOUNDS),
            "powers": powers,
            "p2_alone_usage": p2_alone_usage,
            "sweep_stats": curve.stats.as_dict(),
        },
        checks=checks,
    )
