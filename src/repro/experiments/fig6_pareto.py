"""Fig. 6 — Pareto curves of the running example under loss constraints.

The paper sweeps the performance constraint (average queue length) for
three request-loss constraint settings and plots minimum power:

* a loose loss bound — performance dominates everywhere (lowest curve);
* a very tight loss bound — the resource can never afford to sleep and
  power stays maximal (topmost, flat curve);
* an intermediate bound — flat where loss dominates, then both
  constraints active, then performance dominates (the "interesting
  intermediate situation").

An infeasible region exists on the left: no policy can push the average
queue below the unconstrained minimum (paper: "it is impossible to
achieve average queue smaller than 0.175").
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.core.pareto import min_achievable, trade_off_curve
from repro.experiments import ExperimentResult
from repro.systems import example_system
from repro.util.tables import format_table

#: Loss-bound settings: loose / intermediate / tight.  The system's
#: minimum achievable loss is ~0.157 (the always-on policy) and the
#: loss metric saturates at ~0.25 (the workload's busy probability), so
#: 0.16 forces the resource to stay on (the paper's topmost flat
#: curve), 0.21 gives the mixed-dominance middle curve and 0.5 never
#: binds (the lowest curve).
LOSS_BOUNDS = (0.5, 0.21, 0.16)

#: Performance-constraint sweep (average queue length).
PENALTY_BOUNDS = (0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.6, 0.7, 0.8, 0.9)


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Sweep the three Pareto curves of Fig. 6 (quick/seed unused)."""
    bundle = example_system.build()
    optimizer = PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
    )

    floor = min_achievable(optimizer, PENALTY)
    curves = {}
    for loss_bound in LOSS_BOUNDS:
        # Each curve runs through the incremental sweep engine: the
        # balance block is assembled once per curve and the infeasible
        # region left of the floor is bracketed instead of solved
        # point by point (curve.stats records the solve accounting).
        curves[loss_bound] = trade_off_curve(
            optimizer,
            PENALTY_BOUNDS,
            objective=POWER,
            constraint=PENALTY,
            extra_upper_bounds={"loss": loss_bound},
        )

    rows = []
    for bound in PENALTY_BOUNDS:
        row = [bound]
        for loss_bound in LOSS_BOUNDS:
            point = next(
                p for p in curves[loss_bound].points if abs(p.bound - bound) < 1e-12
            )
            row.append(point.objective if point.feasible else float("nan"))
        rows.append(row)

    loose, middle, tight = (curves[b] for b in LOSS_BOUNDS)
    checks = {
        "infeasible_region_exists": floor > 0.05,
        "loose_curve_convex": loose.is_convex(),
        "loose_curve_non_increasing": loose.is_non_increasing(),
        "middle_curve_non_increasing": middle.is_non_increasing(),
        # Tighter loss bounds can only cost more power, pointwise.
        "tight_dominates_loose": _pointwise_at_least(tight, loose),
        "middle_between": (
            _pointwise_at_least(middle, loose)
            and _pointwise_at_least(tight, middle)
        ),
        # The tight curve goes flat: loss dominates and the performance
        # constraint stops mattering on the loose end of the sweep.
        "tight_curve_flat_region": _has_flat_tail(tight),
        # The middle curve shows the paper's intermediate behaviour: a
        # loss-dominated flat region at loose penalty bounds, but it
        # still departs from the loose curve somewhere.
        "middle_curve_flat_region": _has_flat_tail(middle),
        "middle_differs_from_loose": any(
            p.feasible
            and q.feasible
            and abs(p.objective - q.objective) > 1e-6
            for p, q in zip(middle.points, loose.points)
        ),
        # Below the floor every problem is infeasible.
        "floor_is_sharp": all(
            not p.feasible for p in loose.points if p.bound < floor - 1e-6
        ),
    }

    table = format_table(
        ["penalty_bound"] + [f"power(loss<={b})" for b in LOSS_BOUNDS],
        rows,
        title=(
            "Fig. 6 — minimum power vs average-queue-length bound "
            f"(infeasible below penalty ~{floor:.3f})"
        ),
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Pareto curves of the running example (Fig. 6)",
        tables=[table],
        data={
            "penalty_floor": floor,
            "loss_bounds": list(LOSS_BOUNDS),
            "penalty_bounds": list(PENALTY_BOUNDS),
            "curves": {
                str(b): {
                    "bounds": list(curves[b].bounds),
                    "powers": list(curves[b].objectives),
                }
                for b in LOSS_BOUNDS
            },
            "sweep_stats": {
                str(b): curves[b].stats.as_dict() for b in LOSS_BOUNDS
            },
        },
        checks=checks,
    )


def _pointwise_at_least(upper, lower) -> bool:
    """``upper``'s power >= ``lower``'s at every bound both solved."""
    lower_by_bound = {p.bound: p.objective for p in lower.points if p.feasible}
    for point in upper.points:
        if not point.feasible or point.bound not in lower_by_bound:
            continue
        if point.objective < lower_by_bound[point.bound] - 1e-9:
            return False
    return True


def _has_flat_tail(curve) -> bool:
    """True when the last few feasible points are (nearly) constant."""
    ys = np.asarray([p.objective for p in curve.points if p.feasible])
    if ys.size < 3:
        return False
    tail = ys[-3:]
    return bool(tail.max() - tail.min() <= 1e-6 + 1e-3 * abs(tail.mean()))
