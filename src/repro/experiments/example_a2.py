"""Example A.2 — the paper's fully worked optimization instance.

The running example system is optimized for minimum power with
gamma = 0.99999 from initial state (on, no request, empty queue), under
an average-queue-length bound of 0.5 and a request-loss bound of 0.2.
The paper reports:

* minimum expected power 1.798 W ("the optimal policy reduces power
  consumption of almost a factor of two with respect to the trivial
  policy that never shuts down the SP", whose power is 3 W);
* a *randomized* optimal policy (both constraints are active, so by
  Theorem A.2 the optimum cannot be deterministic), with decision
  (on, 0, 0) -> s_off issued with probability 0.226.

Our reconstruction of the (OCR-garbled) power table yields 1.74 W with
the same qualitative structure; the checks assert the band and the
randomization, and verify both constraints are exactly active.
"""

from __future__ import annotations

from repro.core.costs import LOSS, PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.experiments import ExperimentResult
from repro.systems import example_system
from repro.util.tables import format_table


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Example A.2 (quick/seed unused — one LP solve)."""
    bundle = example_system.build()
    optimizer = PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
    )
    result = optimizer.minimize_power(
        penalty_bound=example_system.PAPER_PENALTY_BOUND_A2,
        loss_bound=example_system.PAPER_LOSS_BOUND_A2,
    ).require_feasible()

    power = result.average(POWER)
    penalty = result.average(PENALTY)
    loss = result.average(LOSS)
    policy = result.policy

    always_on = 3.0  # SP power when held on
    checks = {
        # 1.798 W in the paper; our power-table reconstruction gives a
        # value in the same band, far below always-on.
        "power_in_paper_band": 1.55 <= power <= 1.95,
        "nearly_halves_always_on": power < 0.65 * always_on,
        "penalty_constraint_active": abs(penalty - 0.5) < 1e-6,
        "loss_constraint_active": abs(loss - 0.2) < 1e-6,
        # Theorem A.2: active constraints -> randomized optimal policy.
        "policy_is_randomized": not policy.is_deterministic,
    }

    rows = [
        (str(state), policy.matrix[i, 0], policy.matrix[i, 1])
        for i, state in enumerate(bundle.system.states)
    ]
    table_policy = format_table(
        ["state (sp,sr,q)", "P(s_on)", "P(s_off)"],
        rows,
        title="Example A.2 — optimal randomized policy matrix",
    )
    table_metrics = format_table(
        ["metric", "value", "paper"],
        [
            ("min expected power (W)", power, example_system.PAPER_MINIMUM_POWER_A2),
            ("avg queue length", penalty, 0.5),
            ("request-loss probability", loss, 0.2),
        ],
        title="Example A.2 — optimum vs the paper's reported numbers",
    )
    return ExperimentResult(
        experiment_id="example_a2",
        title="Worked optimization instance (Example A.2)",
        tables=[table_metrics, table_policy],
        data={
            "power": power,
            "penalty": penalty,
            "loss": loss,
            "paper_power": example_system.PAPER_MINIMUM_POWER_A2,
            "policy": policy.matrix.tolist(),
        },
        checks=checks,
    )
