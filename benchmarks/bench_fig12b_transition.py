"""Benchmark: regenerate Fig. 12(b) (power vs transition speed).

Twenty-four LP solves: six wake probabilities x two sleep powers x two
constraint regimes, each on a freshly composed baseline system.
"""

from benchmarks.conftest import run_and_verify


def bench_fig12b_transition_speed(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig12b",), rounds=2, iterations=1
    )
    series = result.data["series"]
    benchmark.extra_info["fast_2w_power"] = series["loss(sleepP=2.0)"][-1]
    benchmark.extra_info["slow_0w_power"] = series["loss(sleepP=0.0)"][0]
