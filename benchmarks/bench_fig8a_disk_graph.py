"""Benchmark: regenerate Fig. 8(a) (disk state-transition graph).

Pure structural work: build the 11-state SP, export its transition
graph, verify the paper's topology invariants and emit the edge table
plus Graphviz source.
"""

from benchmarks.conftest import run_and_verify


def bench_fig8a_transition_graph(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig8a",), rounds=3, iterations=1
    )
    benchmark.extra_info["n_edges"] = result.data["n_edges"]
