"""Benchmark: regenerate Fig. 14(a) (power vs time horizon).

Ten LP solves across the horizon sweep (five discount factors x two
overflow budgets) of the four-sleep-state baseline.
"""

from benchmarks.conftest import run_and_verify


def bench_fig14a_horizon_sweep(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig14a",), rounds=2, iterations=1
    )
    series = result.data["series"]["0.01"]
    benchmark.extra_info["long_horizon_power"] = series[0]
    benchmark.extra_info["short_horizon_power"] = series[-1]
