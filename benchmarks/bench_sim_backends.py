"""Loop-vs-vector-vs-jit simulation throughput across systems/batches.

Records slices/second for the reference loop backend, the NumPy vector
backend and (when numba is installed) the compiled jit backend on the
8-state running example and the 66-state disk model, across replication
counts, plus two headline acceptance checks:

* the vector backend must deliver **>= 10x** the loop's throughput on a
  stationary-policy run of 10^6 total slices split over 32 replications;
* the jit backend must deliver **>= 5x** the vector backend's
  throughput on the same 10^6 x 32 scenario (skipped without numba —
  the interpreted fallback is a correctness surface, not a perf tier).

The jit rows are measured after a warm-up batch so one-time ``@njit``
compilation never pollutes the steady-state rate.

Run under pytest-benchmark::

    pytest benchmarks/bench_sim_backends.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only

or standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_sim_backends.py [--quick]
"""

from __future__ import annotations

import json
import sys
import time

from repro.policies import StationaryPolicyAgent, eager_markov_policy
from repro.sim import jit_available, simulate_many
from repro.systems import disk_drive, example_system

#: Headline scenario: 10^6 total slices over 32 replications.
TOTAL_SLICES = 1_000_000
N_REPLICATIONS = 32
SPEEDUP_TARGET = 10.0
#: jit acceptance: compiled stepper vs the NumPy vector backend.
JIT_SPEEDUP_TARGET = 5.0

#: (name, builder, active command, sleep command) per benchmark system.
SYSTEMS = (
    ("example8", example_system.build, "s_on", "s_off"),
    ("disk66", disk_drive.build, "go_active", "go_idle"),
)


def _stationary_agent(bundle, active, sleep):
    policy = eager_markov_policy(bundle.system, active, sleep)
    return StationaryPolicyAgent(bundle.system, policy)


def _run(bundle, agent, total_slices, n_replications, backend, seed=0):
    """One timed batch run; returns (seconds, slices_per_second)."""
    per_lane = max(1, total_slices // n_replications)
    start = time.perf_counter()
    simulate_many(
        bundle.system,
        bundle.costs,
        [agent],
        per_lane,
        seed,
        n_replications=n_replications,
        backend=backend,
    )
    seconds = time.perf_counter() - start
    return seconds, per_lane * n_replications / seconds


def _warm_jit(bundle, agent):
    """Trigger one-time ``@njit`` compilation off the clock."""
    _run(bundle, agent, 2_000, 4, "jit")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_loop_throughput_disk_1rep(benchmark):
    """Reference loop, single trajectory on the disk system."""
    bundle = disk_drive.build()
    agent = _stationary_agent(bundle, "go_active", "go_idle")
    benchmark.pedantic(
        lambda: _run(bundle, agent, 50_000, 1, "loop"), rounds=2, iterations=1
    )
    benchmark.extra_info["slices"] = 50_000


def bench_vector_throughput_disk_32rep(benchmark):
    """Vector backend, 32 replications on the disk system."""
    bundle = disk_drive.build()
    agent = _stationary_agent(bundle, "go_active", "go_idle")
    benchmark.pedantic(
        lambda: _run(bundle, agent, 500_000, 32, "vector"),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["slices"] = 500_000


def bench_backend_speedup_1m_32rep(benchmark):
    """Acceptance check: vector >= 10x loop at 10^6 slices x 32 reps."""
    bundle = disk_drive.build()
    agent = _stationary_agent(bundle, "go_active", "go_idle")
    loop_seconds, loop_rate = _run(
        bundle, agent, TOTAL_SLICES, N_REPLICATIONS, "loop"
    )
    vector_seconds, vector_rate = benchmark.pedantic(
        lambda: _run(bundle, agent, TOTAL_SLICES, N_REPLICATIONS, "vector"),
        rounds=1,
        iterations=1,
    )
    speedup = vector_rate / loop_rate
    benchmark.extra_info.update(
        loop_slices_per_sec=round(loop_rate),
        vector_slices_per_sec=round(vector_rate),
        speedup=round(speedup, 2),
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"vector backend only {speedup:.1f}x faster than loop "
        f"({vector_rate:,.0f} vs {loop_rate:,.0f} slices/s); "
        f"target {SPEEDUP_TARGET}x"
    )


def bench_jit_speedup_1m_32rep(benchmark):
    """Acceptance check: jit >= 5x vector at 10^6 slices x 32 reps."""
    import pytest

    if not jit_available():
        pytest.skip("numba not installed; the jit tier has no compiled path")
    bundle = disk_drive.build()
    agent = _stationary_agent(bundle, "go_active", "go_idle")
    _warm_jit(bundle, agent)
    vector_seconds, vector_rate = _run(
        bundle, agent, TOTAL_SLICES, N_REPLICATIONS, "vector"
    )
    jit_seconds, jit_rate = benchmark.pedantic(
        lambda: _run(bundle, agent, TOTAL_SLICES, N_REPLICATIONS, "jit"),
        rounds=1,
        iterations=1,
    )
    speedup = jit_rate / vector_rate
    benchmark.extra_info.update(
        vector_slices_per_sec=round(vector_rate),
        jit_slices_per_sec=round(jit_rate),
        speedup=round(speedup, 2),
    )
    assert speedup >= JIT_SPEEDUP_TARGET, (
        f"jit backend only {speedup:.1f}x faster than vector "
        f"({jit_rate:,.0f} vs {vector_rate:,.0f} slices/s); "
        f"target {JIT_SPEEDUP_TARGET}x"
    )


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the full matrix and return the benchmark JSON document."""
    total = 100_000 if quick else TOTAL_SLICES
    with_jit = jit_available()
    backends = [("loop", (1,)), ("vector", (1, 8, 32, 128))]
    if with_jit:
        backends.append(("jit", (1, 8, 32, 128)))
    records = []
    for name, builder, active, sleep in SYSTEMS:
        bundle = builder()
        agent = _stationary_agent(bundle, active, sleep)
        if with_jit:
            _warm_jit(bundle, agent)
        for backend, rep_counts in backends:
            for n_replications in rep_counts:
                seconds, rate = _run(
                    bundle, agent, total, n_replications, backend
                )
                records.append(
                    {
                        "name": f"{backend}_{name}_{n_replications}rep",
                        "backend": backend,
                        "system": name,
                        "n_replications": n_replications,
                        "total_slices": total,
                        "seconds": round(seconds, 4),
                        "slices_per_sec": round(rate),
                    }
                )
    by_name = {r["name"]: r for r in records}
    speedup = {
        name: round(
            by_name[f"vector_{name}_32rep"]["slices_per_sec"]
            / by_name[f"loop_{name}_1rep"]["slices_per_sec"],
            2,
        )
        for name, *_ in SYSTEMS
    }
    document = {
        "benchmarks": records,
        "speedup_32rep_vs_loop": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "jit_available": with_jit,
        "jit_speedup_target": JIT_SPEEDUP_TARGET,
    }
    if with_jit:
        document["speedup_jit_vs_vector_32rep"] = {
            name: round(
                by_name[f"jit_{name}_32rep"]["slices_per_sec"]
                / by_name[f"vector_{name}_32rep"]["slices_per_sec"],
                2,
            )
            for name, *_ in SYSTEMS
        }
    return document


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    # The acceptance targets are the 66-state disk case study (quick
    # mode is a smoke run where constant overheads dominate the tiny
    # batch).
    if quick:
        return 0
    target_met = document["speedup_32rep_vs_loop"]["disk66"] >= SPEEDUP_TARGET
    if "speedup_jit_vs_vector_32rep" in document:
        target_met = target_met and (
            document["speedup_jit_vs_vector_32rep"]["disk66"]
            >= JIT_SPEEDUP_TARGET
        )
    return 0 if target_met else 1


if __name__ == "__main__":
    sys.exit(main())
