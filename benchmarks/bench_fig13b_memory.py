"""Benchmark: regenerate Fig. 13(b) (power vs SR model memory).

Times the full memory study: sampling the ground-truth 3-memory stream,
extracting k = 1..3 models, optimizing each and exactly evaluating the
lifted policies on the ground-truth system.
"""

from benchmarks.conftest import run_and_verify


def bench_fig13b_sr_memory(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig13b",), rounds=1, iterations=1
    )
    series = result.data["series"]["sleep1+sleep2"]
    benchmark.extra_info["memory_gain"] = series[0] - series[-1]
