"""Benchmark: regenerate Fig. 9(b) (CPU, stochastic control vs timeout).

Times the masked-action Pareto sweep and the simulated timeout family,
verifying timeout policies never beat the optimum and waste power while
the timer runs.
"""

from benchmarks.conftest import run_and_verify


def bench_fig9b_cpu_timeout_comparison(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig9b",), rounds=1, iterations=1
    )
    benchmark.extra_info["n_timeout_points"] = len(result.data["timeout"])
