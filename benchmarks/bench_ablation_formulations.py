"""Ablation: discounted (paper Eq. 9) vs average-cost (paper Eq. 7).

The paper replaces its long-run average formulation with a discounted
finite-window one, noting the session-end accounting "can result in a
slight error".  This ablation times both LPs on the same constrained
instance and reports the optimality gap between them across horizons —
quantifying exactly how fast the discounted optimum converges to the
average-cost one (the vanishing-discount limit), and how large the
session-end artifact is at short horizons.
"""

from repro.core.average_cost import AverageCostOptimizer
from repro.core.costs import POWER
from repro.core.optimizer import PolicyOptimizer
from repro.systems import example_system
from repro.util.tables import format_table

PENALTY_BOUND = 0.5
LOSS_BOUND = 0.2
GAMMAS = (0.99, 0.999, 0.99999, 0.9999999)


def bench_average_cost_lp(benchmark):
    """Average-cost LP on the running example (no horizon bookkeeping)."""
    bundle = example_system.build()
    optimizer = AverageCostOptimizer(bundle.system, bundle.costs)
    result = benchmark(
        lambda: optimizer.minimize_power(
            penalty_bound=PENALTY_BOUND, loss_bound=LOSS_BOUND
        )
    )
    assert result.feasible
    benchmark.extra_info["average_cost_power"] = result.average(POWER)


def bench_discounted_convergence(benchmark):
    """Discounted LPs across horizons; asserts monotone convergence to
    the average-cost optimum and prints the gap table."""
    bundle = example_system.build()
    average = (
        AverageCostOptimizer(bundle.system, bundle.costs)
        .minimize_power(penalty_bound=PENALTY_BOUND, loss_bound=LOSS_BOUND)
        .require_feasible()
        .average(POWER)
    )

    def sweep():
        rows = []
        for gamma in GAMMAS:
            optimizer = PolicyOptimizer(
                bundle.system,
                bundle.costs,
                gamma=gamma,
                initial_distribution=bundle.initial_distribution,
            )
            result = optimizer.minimize_power(
                penalty_bound=PENALTY_BOUND, loss_bound=LOSS_BOUND
            ).require_feasible()
            rows.append(
                (gamma, 1.0 / (1.0 - gamma), result.average(POWER),
                 result.average(POWER) - average)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print()
    print(
        format_table(
            ["gamma", "horizon", "discounted power", "gap to average-cost"],
            rows,
            title=(
                f"discounted vs average-cost optimum "
                f"(average-cost = {average:.6f} W)"
            ),
            float_format=".6g",
        )
    )
    gaps = [abs(r[3]) for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(gaps, gaps[1:])), gaps
    assert gaps[-1] < 1e-4
    benchmark.extra_info["gap_at_1e2_horizon"] = gaps[0]
    benchmark.extra_info["gap_at_1e7_horizon"] = gaps[-1]
