"""Whole-repo static-analysis wall-clock: ``repro.lint`` over the tree.

The analyzer gates the tier-1 suite (``tests/test_lint_self.py``) and
CI, so its cost is part of every developer loop.  The acceptance gate:
one full lint of ``src/`` + ``tests/`` + ``benchmarks/`` must finish
in under **10 seconds** — far above today's cost on purpose, so only a
pathological regression (an accidentally quadratic rule, an unbounded
call-graph walk) trips it, not machine noise.

Run under pytest-benchmark::

    pytest benchmarks/bench_lint.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only

or standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_lint.py [--quick]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.lint import lint_paths, registered_rules

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The full surface CI lints (src is the contract; the others must
#: at minimum parse cleanly through the analyzer).
FULL_TREE = ["src", "tests", "benchmarks"]
#: The gated surface: the package whose contracts the rules defend.
SRC_ONLY = ["src"]

#: Whole-tree lint wall-clock ceiling, seconds.
WALL_CLOCK_LIMIT = 10.0


def _lint_once(relative_paths: list[str]):
    """One timed lint pass; returns (seconds, report)."""
    paths = [REPO_ROOT / rel for rel in relative_paths]
    start = time.perf_counter()
    report = lint_paths(paths)
    seconds = time.perf_counter() - start
    return seconds, report


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_lint_src(benchmark):
    """Lint the gated surface (src/); must come back clean."""
    seconds, report = benchmark.pedantic(
        lambda: _lint_once(SRC_ONLY), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        files_checked=report.files_checked,
        files_per_sec=round(report.files_checked / seconds, 1),
    )
    assert report.clean, "\n".join(f.render() for f in report.findings)


def bench_lint_full_tree(benchmark):
    """Acceptance: whole-tree lint under the 10 s wall-clock ceiling."""
    seconds, report = benchmark.pedantic(
        lambda: _lint_once(FULL_TREE), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        files_checked=report.files_checked,
        seconds=round(seconds, 3),
    )
    assert seconds < WALL_CLOCK_LIMIT, (
        f"whole-tree lint took {seconds:.2f}s "
        f"(ceiling {WALL_CLOCK_LIMIT:.0f}s) over "
        f"{report.files_checked} files — a rule has gone super-linear"
    )


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the lint benchmark matrix and return the JSON document."""
    records = []
    scenarios = [("src", SRC_ONLY)]
    if not quick:
        scenarios.append(("full_tree", FULL_TREE))
    src_clean = True
    full_seconds = None
    for name, rel_paths in scenarios:
        # Best of three: lint cost is parse-bound and steady, but the
        # first pass pays filesystem cache warm-up.
        rounds = 1 if quick else 3
        best = None
        report = None
        for _ in range(rounds):
            seconds, report = _lint_once(rel_paths)
            best = seconds if best is None else min(best, seconds)
        if name == "src":
            src_clean = report.clean
        else:
            full_seconds = best
        records.append(
            {
                "name": f"lint_{name}",
                "files_checked": report.files_checked,
                "seconds": round(best, 4),
                "files_per_sec": round(report.files_checked / best, 1),
                "findings": len(report.findings),
            }
        )
    document = {
        "benchmarks": records,
        "n_rules": len(registered_rules()),
        "src_clean": src_clean,
        "wall_clock_limit_sec": WALL_CLOCK_LIMIT,
    }
    if full_seconds is not None:
        document["full_tree_within_limit"] = full_seconds < WALL_CLOCK_LIMIT
    return document


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    if not document["src_clean"]:
        return 1
    if not document.get("full_tree_within_limit", True):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
