"""LP-core scaling: sparse factored simplex vs the dense path.

The tentpole acceptance benchmark for the sparse revised-simplex core.
Disk-drive systems are swept over queue depth Q in {8, 16, 32, 64}
(11 x 2 x (Q+1) joint states, five commands) and the constrained
policy LP (LP4: min power s.t. a penalty budget) is solved end to end
through :class:`~repro.core.optimizer.PolicyOptimizer` on the simplex
backend, once with the dense balance assembly (``sparse=False``) and
once with the sparse CSR assembly + factored basis (``sparse=True``).

Gates (asserted standalone and under pytest-benchmark):

* **>= 5x** end-to-end solve throughput at Q=32 sparse vs dense
  (:data:`SPEEDUP_TARGET`) — the pre-PR simplex refactorized the basis
  with two dense ``np.linalg.solve`` calls per pivot, which the dense
  path no longer even does, so the measured ratio *understates* the
  gain over the seed;
* objective and policy agreement at **1e-8** between the two paths at
  every Q, and Pareto-curve agreement at 1e-8 on a small sweep;
* the **iteration-cost gate**: the hot path must not refactorize per
  pivot — refactorizations are bounded by an :data:`REFRESH`-cadence
  budget (plus recovery/phase overhead), checked on the solve stats.

Run standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_lp_scaling.py [--quick]

or under pytest-benchmark::

    pytest benchmarks/bench_lp_scaling.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only
"""

from __future__ import annotations

import contextlib
import json
import os
import sys
import time

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.core.pareto import min_achievable
from repro.core.pareto_sweep import ParetoSweepSolver
from repro.lp.simplex import REFRESH
from repro.systems import disk_drive

#: Headline acceptance target: sparse >= 5x dense at Q=32.
SPEEDUP_TARGET = 5.0
#: Agreement tolerance on objective, policy and curve objectives.
AGREEMENT_TOL = 1e-8
#: Queue depths of the scaling sweep (dense is skipped at Q=64 in
#: quick mode — a single dense solve there runs minutes).
QUEUE_DEPTHS = (8, 16, 32, 64)
#: The queue depth the speedup gate applies to.
GATE_DEPTH = 32


def _optimizer(bundle, sparse: bool) -> PolicyOptimizer:
    return PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        backend="simplex",
        sparse=sparse,
    )


def _timed_solves(optimizer, bound: float, reps: int):
    """Time ``reps`` end-to-end constrained solves; returns (sec, result)."""
    result = None
    start = time.perf_counter()
    for _ in range(reps):
        result = optimizer.minimize_power(penalty_bound=bound)
    return (time.perf_counter() - start) / reps, result


def iteration_cost_gate(stats: dict) -> bool:
    """True when the solve stayed on the factored hot path.

    A refactorization may legitimately happen every :data:`REFRESH`
    pivots, at phase/recovery boundaries and through ill-conditioned
    stretches — but never once per pivot across the whole run.  The
    budget allows the cadence plus a generous constant; a per-iteration
    O(m^3) path (the pre-PR behaviour, one refactorization per pivot)
    fails it as soon as the solve runs more than ~4x REFRESH pivots.
    """
    iterations = int(stats.get("iterations", 0))
    refactorizations = int(stats.get("refactorizations", 0))
    budget = iterations // 4 + REFRESH
    return refactorizations <= budget


def run_depth(queue_depth: int, *, measure_dense: bool, reps: int) -> dict:
    """Benchmark one queue depth; returns its JSON record."""
    bundle = disk_drive.build(queue_capacity=queue_depth)
    sparse_opt = _optimizer(bundle, sparse=True)
    dense_opt = _optimizer(bundle, sparse=False)
    floor = min_achievable(sparse_opt, PENALTY)
    bound = 1.3 * floor

    sparse_seconds, sparse_result = _timed_solves(sparse_opt, bound, reps)
    record = {
        "name": f"disk_q{queue_depth}",
        "queue_depth": queue_depth,
        "n_states": bundle.system.n_states,
        "n_variables": bundle.system.n_states * bundle.system.n_commands,
        "penalty_bound": bound,
        "sparse_seconds": round(sparse_seconds, 4),
        "sparse_solves_per_sec": round(1.0 / sparse_seconds, 3),
        "sparse_stats": sparse_result.lp_result.stats,
        "iteration_cost_gate": iteration_cost_gate(
            sparse_result.lp_result.stats or {}
        ),
    }
    if measure_dense:
        dense_seconds, dense_result = _timed_solves(dense_opt, bound, reps)
        # Deliberately NOT named "speedup": compare_baselines gates every
        # speedup*-prefixed metric, and the ratio at small depths (where
        # sparse is documented as merely marginal) hovers near 1x and
        # would flake CI.  Only the top-level speedup_q32 is gated.
        record.update(
            dense_seconds=round(dense_seconds, 4),
            dense_solves_per_sec=round(1.0 / dense_seconds, 3),
            sparse_vs_dense_ratio=round(dense_seconds / sparse_seconds, 2),
            objective_deviation=abs(
                sparse_result.objective_average - dense_result.objective_average
            ),
            policy_deviation=float(
                np.abs(
                    sparse_result.policy.matrix - dense_result.policy.matrix
                ).max()
            ),
        )
    return record


def curve_agreement(queue_depth: int = 8, n_points: int = 6) -> dict:
    """Sweep a small Pareto curve on both paths and compare objectives."""
    bundle = disk_drive.build(queue_capacity=queue_depth)
    sparse_opt = _optimizer(bundle, sparse=True)
    dense_opt = _optimizer(bundle, sparse=False)
    floor = min_achievable(sparse_opt, PENALTY)
    cap = (
        sparse_opt.minimize_unconstrained(POWER)
        .require_feasible()
        .average(PENALTY)
    )
    bounds = [float(b) for b in np.geomspace(floor * 1.3, cap * 0.98, n_points)]
    curves = {}
    for tag, optimizer in (("sparse", sparse_opt), ("dense", dense_opt)):
        solver = ParetoSweepSolver(
            optimizer, objective=POWER, constraint=PENALTY
        )
        curves[tag] = solver.solve(bounds)
    worst = 0.0
    for ps, pd in zip(curves["sparse"].points, curves["dense"].points):
        assert ps.feasible == pd.feasible, (
            f"curve feasibility mismatch at bound {ps.bound}"
        )
        if ps.feasible:
            worst = max(worst, abs(ps.objective - pd.objective))
    return {
        "queue_depth": queue_depth,
        "n_points": n_points,
        "max_curve_deviation": worst,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------
def bench_sparse_vs_dense_disk_q32(benchmark):
    """Acceptance gate: >= 5x sparse vs dense at Q=32, 1e-8 agreement."""
    bundle = disk_drive.build(queue_capacity=GATE_DEPTH)
    sparse_opt = _optimizer(bundle, sparse=True)
    dense_opt = _optimizer(bundle, sparse=False)
    floor = min_achievable(sparse_opt, PENALTY)
    bound = 1.3 * floor
    dense_seconds, dense_result = _timed_solves(dense_opt, bound, 1)
    sparse_seconds, sparse_result = benchmark.pedantic(
        lambda: _timed_solves(sparse_opt, bound, 1), rounds=1, iterations=1
    )
    speedup = dense_seconds / sparse_seconds
    objective_deviation = abs(
        sparse_result.objective_average - dense_result.objective_average
    )
    benchmark.extra_info.update(
        dense_seconds=round(dense_seconds, 4),
        sparse_seconds=round(sparse_seconds, 4),
        speedup=round(speedup, 2),
        objective_deviation=objective_deviation,
    )
    assert objective_deviation <= AGREEMENT_TOL
    assert iteration_cost_gate(sparse_result.lp_result.stats or {})
    assert speedup >= SPEEDUP_TARGET, (
        f"sparse path only {speedup:.2f}x faster than dense at Q={GATE_DEPTH} "
        f"({sparse_seconds:.3f}s vs {dense_seconds:.3f}s); "
        f"target {SPEEDUP_TARGET}x"
    )


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the scaling matrix and return the benchmark JSON document."""
    depths = (8, GATE_DEPTH) if quick else QUEUE_DEPTHS
    records = []
    for queue_depth in depths:
        reps = 3 if queue_depth <= 8 else 1
        # One dense solve at Q=64 runs minutes; the speedup story is
        # told at the gate depth, so dense is measured only up to it.
        measure_dense = queue_depth <= GATE_DEPTH
        records.append(
            run_depth(queue_depth, measure_dense=measure_dense, reps=reps)
        )
    curve = curve_agreement(queue_depth=8, n_points=4 if quick else 6)
    gate_record = next(r for r in records if r["queue_depth"] == GATE_DEPTH)
    return {
        "benchmarks": records,
        "curve_agreement": curve,
        "speedup_q32": gate_record["sparse_vs_dense_ratio"],
        "speedup_target": SPEEDUP_TARGET,
        "agreement_tolerance": AGREEMENT_TOL,
    }


@contextlib.contextmanager
def _silence_c_stdout():
    """Route C-level stdout to /dev/null for the duration.

    SuperLU's BLAS occasionally prints benign XERBLA notes (zero-sized
    supernode corner) straight to fd 1; this keeps them out of the JSON
    document the CI gate parses.
    """
    sys.stdout.flush()
    saved = os.dup(1)
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, 1)
    os.close(devnull)
    try:
        yield
    finally:
        sys.stdout.flush()
        os.dup2(saved, 1)
        os.close(saved)


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    with _silence_c_stdout():
        document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    failures = []
    for record in document["benchmarks"]:
        if not record["iteration_cost_gate"]:
            failures.append(f"{record['name']}: per-iteration refactorization")
        for key in ("objective_deviation", "policy_deviation"):
            if key in record and record[key] > AGREEMENT_TOL:
                failures.append(f"{record['name']}: {key}={record[key]:.2e}")
    if document["curve_agreement"]["max_curve_deviation"] > AGREEMENT_TOL:
        failures.append(
            f"curve deviation "
            f"{document['curve_agreement']['max_curve_deviation']:.2e}"
        )
    if document["speedup_q32"] < SPEEDUP_TARGET:
        failures.append(
            f"speedup at Q={GATE_DEPTH} is {document['speedup_q32']}x "
            f"(target {SPEEDUP_TARGET}x)"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
