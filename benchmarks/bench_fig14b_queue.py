"""Benchmark: regenerate Fig. 14(b) (power vs queue capacity).

Eighteen LP solves: six queue capacities x (two overflow budgets + one
penalty budget), with the joint state space growing with the queue.
"""

from benchmarks.conftest import run_and_verify


def bench_fig14b_queue_capacity(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig14b",), rounds=2, iterations=1
    )
    benchmark.extra_info["penalty_dominated_spread"] = (
        result.data["penalty_series"][-1] - result.data["penalty_series"][0]
    )
