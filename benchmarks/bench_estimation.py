"""Estimation-layer benchmarks: fitting throughput + recovery accuracy.

Two contracts:

* **throughput** — the vectorized transition counter behind
  :class:`~repro.traces.extractor.SRExtractor` (which the estimation
  layer fits million-slice streams through) must sustain **>= 5x** the
  per-slice reference loop on a 1M-slice stream;
* **recovery** — fitting traces sampled from known generators recovers
  the parameters: arrival-chain MLE within 0.02 of the true transition
  probabilities at 100k slices, and MMPP(2) EM within 0.05 of the true
  (p_stay_idle, p_stay_busy, emit) at 20k slices.

Run under pytest-benchmark::

    pytest benchmarks/bench_estimation.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only

or standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_estimation.py [--quick]
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.estimation import fit_mmpp2, fit_workload, select_arrival_chain
from repro.sim import make_rng
from repro.traces.extractor import SRExtractor
from repro.traces.synthetic import mmpp2_trace

SPEEDUP_TARGET = 5.0
CHAIN_TOLERANCE = 0.02
EM_TOLERANCE = 0.05

#: Ground truth for the recovery gates.
TRUE_P_II, TRUE_P_BB, TRUE_EMIT = 0.95, 0.85, 0.9


def _reference_fit_counts(levels: np.ndarray, memory: int, base: int):
    """The pre-vectorization per-slice counting loop (timing baseline)."""
    n = base**memory
    counts = np.zeros((n, n))
    shift = base ** (memory - 1)

    def index_of(window) -> int:
        idx = 0
        for level in window:
            idx = idx * base + int(level)
        return idx

    src = index_of(levels[:memory])
    for t in range(memory, levels.size):
        dst = (src % shift) * base + int(levels[t])
        counts[src, dst] += 1.0
        src = dst
    return counts


def _chain_stream(n_slices: int) -> np.ndarray:
    trace = mmpp2_trace(TRUE_P_II, TRUE_P_BB, n_slices, 1.0, make_rng(0))
    return trace.discretize(1.0)


def _best_of(fn, rounds: int = 3) -> float:
    """Minimum wall-clock over ``rounds`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_chain_fit(counts: np.ndarray, memory: int = 2, rounds: int = 3):
    seconds = _best_of(
        lambda: SRExtractor(memory=memory).fit(counts), rounds
    )
    return seconds, counts.size / seconds


def _time_reference(counts: np.ndarray, memory: int = 2, rounds: int = 2):
    seconds = _best_of(
        lambda: _reference_fit_counts(counts, memory, 2), rounds
    )
    return seconds, counts.size / seconds


def _chain_recovery_error(n_slices: int) -> float:
    counts = _chain_stream(n_slices)
    selection = select_arrival_chain(
        counts, memories=(1, 2), smoothing=0.0
    )
    matrix = selection.best.model.matrix
    true = np.array(
        [[TRUE_P_II, 1 - TRUE_P_II], [1 - TRUE_P_BB, TRUE_P_BB]]
    )
    if selection.best.memory != 1:
        return 1.0
    return float(np.abs(matrix - true).max())


def _em_recovery(n_slices: int):
    trace = mmpp2_trace(
        TRUE_P_II, TRUE_P_BB, n_slices, 1.0, make_rng(1),
        busy_arrival_probability=TRUE_EMIT,
    )
    counts = trace.discretize(1.0)
    fit = fit_mmpp2(counts, max_slices=n_slices)
    seconds = _best_of(lambda: fit_mmpp2(counts, max_slices=n_slices), 2)
    error = max(
        abs(fit.p_stay_idle - TRUE_P_II),
        abs(fit.p_stay_busy - TRUE_P_BB),
        abs(fit.busy_arrival_probability - TRUE_EMIT),
    )
    return fit, seconds, error


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_chain_fit_1m_slices(benchmark):
    """Vectorized memory-2 chain fit over a 1M-slice stream."""
    counts = _chain_stream(1_000_000)
    benchmark.pedantic(
        lambda: SRExtractor(memory=2).fit(counts), rounds=3, iterations=1
    )
    benchmark.extra_info["n_slices"] = counts.size


def bench_chain_fit_speedup(benchmark):
    """Acceptance: vectorized counting >= 5x the per-slice loop."""
    counts = _chain_stream(300_000)
    loop_seconds, loop_rate = _time_reference(counts)
    vector_seconds, vector_rate = benchmark.pedantic(
        lambda: _time_chain_fit(counts), rounds=1, iterations=1
    )
    speedup = vector_rate / loop_rate
    benchmark.extra_info.update(
        loop_slices_per_sec=round(loop_rate),
        vector_slices_per_sec=round(vector_rate),
        speedup=round(speedup, 2),
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"vectorized chain fit only {speedup:.1f}x the reference loop "
        f"({vector_rate:,.0f} vs {loop_rate:,.0f} slices/s); "
        f"target {SPEEDUP_TARGET}x"
    )


def bench_mmpp2_em_20k(benchmark):
    """Baum-Welch EM over a 20k-slice stream."""
    trace = mmpp2_trace(
        TRUE_P_II, TRUE_P_BB, 20_000, 1.0, make_rng(1),
        busy_arrival_probability=TRUE_EMIT,
    )
    counts = trace.discretize(1.0)
    fit = benchmark.pedantic(
        lambda: fit_mmpp2(counts), rounds=1, iterations=1
    )
    benchmark.extra_info["n_iterations"] = fit.n_iterations
    assert fit.converged


def bench_recovery_gates(benchmark):
    """Acceptance: chain and EM round-trip recovery within tolerance."""

    def run():
        chain_error = _chain_recovery_error(100_000)
        _, _, em_error = _em_recovery(20_000)
        return chain_error, em_error

    chain_error, em_error = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        chain_error=round(chain_error, 5), em_error=round(em_error, 5)
    )
    assert chain_error <= CHAIN_TOLERANCE
    assert em_error <= EM_TOLERANCE


def bench_fit_workload_end_to_end(benchmark):
    """The full fit_workload battery on a 20k-slice stream."""
    counts = _chain_stream(20_000)
    fit = benchmark.pedantic(
        lambda: fit_workload(counts), rounds=1, iterations=1
    )
    assert fit.report.valid


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the matrix and return the benchmark JSON document."""
    fit_slices = 200_000 if quick else 1_000_000
    loop_slices = 50_000 if quick else 200_000
    recovery_slices = 50_000 if quick else 100_000
    em_slices = 10_000 if quick else 20_000

    records = []
    counts = _chain_stream(fit_slices)
    fit_seconds, fit_rate = _time_chain_fit(counts)
    records.append(
        {
            "name": f"chain_fit_m2_{fit_slices // 1000}k",
            "n_slices": fit_slices,
            "seconds": round(fit_seconds, 4),
            "fit_slices_per_sec": round(fit_rate),
        }
    )
    loop_counts = counts[:loop_slices]
    loop_seconds, loop_rate = _time_reference(loop_counts)
    vec_seconds, vec_rate = _time_chain_fit(loop_counts)
    speedup = round(vec_rate / loop_rate, 2)
    records.append(
        {
            "name": f"chain_fit_reference_loop_{loop_slices // 1000}k",
            "n_slices": loop_slices,
            "seconds": round(loop_seconds, 4),
            # Deliberately NOT named *_per_sec: the reference loop only
            # exists as the speedup denominator, so the baseline gate
            # must not score it as a throughput metric of its own.
            "reference_slices_per_second": round(loop_rate),
        }
    )

    em_fit, em_seconds, em_error = _em_recovery(em_slices)
    records.append(
        {
            "name": f"mmpp2_em_{em_slices // 1000}k",
            "n_slices": em_slices,
            "n_iterations": em_fit.n_iterations,
            "seconds": round(em_seconds, 4),
            "em_slice_iterations_per_sec": round(
                em_slices * em_fit.n_iterations / em_seconds
            ),
        }
    )

    start = time.perf_counter()
    workload = fit_workload(_chain_stream(em_slices))
    workload_seconds = time.perf_counter() - start
    records.append(
        {
            "name": f"fit_workload_{em_slices // 1000}k",
            "n_slices": em_slices,
            "seconds": round(workload_seconds, 4),
            "valid": workload.report.valid,
        }
    )

    chain_error = _chain_recovery_error(recovery_slices)
    recovery_ok = (
        chain_error <= CHAIN_TOLERANCE and em_error <= EM_TOLERANCE
    )
    return {
        "benchmarks": records,
        "speedup_vectorized_vs_loop": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "recovery": {
            "chain_max_abs_error": round(chain_error, 5),
            "chain_tolerance": CHAIN_TOLERANCE,
            "em_max_abs_error": round(em_error, 5),
            "em_tolerance": EM_TOLERANCE,
            "ok": recovery_ok,
        },
    }


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    if not document["recovery"]["ok"]:
        return 1
    return (
        0
        if document["speedup_vectorized_vs_loop"] >= SPEEDUP_TARGET
        else 1
    )


if __name__ == "__main__":
    sys.exit(main())
