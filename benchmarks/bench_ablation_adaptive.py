"""Ablation: static model-based control vs adaptive re-optimization.

The paper's closing future-work item.  On the Fig. 10 regime-switching
workload, the static policy (optimized against the blended stationary
model) violates its penalty bound inside the sparse regime, while the
adaptive manager — sliding-window SR re-extraction plus periodic
average-cost re-optimization — enforces the bound in every regime at
competitive power.  The benchmark times the full adaptive replay
(including every embedded LP re-solve) and prints the comparison.
"""

from repro.core.optimizer import PolicyOptimizer
from repro.experiments.fig10_nonstationary import build_nonstationary_trace
from repro.policies import AdaptivePolicyAgent, StationaryPolicyAgent
from repro.sim import make_rng
from repro.sim.trace_sim import simulate_trace
from repro.systems import cpu
from repro.systems.cpu import build_provider, reactive_wake_mask
from repro.util.tables import format_table

PENALTY_BOUND = 0.01
N_SLICES = 40_000


def bench_adaptive_vs_static(benchmark):
    rng = make_rng(0)
    trace = build_nonstationary_trace(N_SLICES, rng)
    counts = trace.discretize(cpu.TIME_RESOLUTION)
    half = counts.size // 2
    bundle = cpu.build_from_trace(trace)
    model = bundle.metadata["sr_model"]
    sleep_idx = bundle.metadata["sleep_state_index"]

    def penalty_fn(s, q, z):
        return 1.0 if (s == sleep_idx and z > 0) else 0.0

    def replay(agent, segment, seed=1):
        return simulate_trace(
            bundle.system,
            agent,
            segment,
            make_rng(seed),
            tracker=model.tracker(),
            penalty_fn=penalty_fn,
            initial_provider_state="active",
        )

    optimizer = PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        action_mask=bundle.action_mask,
    )
    static = optimizer.minimize_power(penalty_bound=PENALTY_BOUND).require_feasible()
    static_full = replay(
        StationaryPolicyAgent(bundle.system, static.policy), counts
    )
    static_sparse = replay(
        StationaryPolicyAgent(bundle.system, static.policy), counts[:half]
    )

    def adaptive_run():
        agent = AdaptivePolicyAgent(
            provider=build_provider(),
            queue_capacity=0,
            optimize=lambda o: o.minimize_power(penalty_bound=PENALTY_BOUND),
            window=4000,
            refit_every=1000,
            fallback_command=0,
            build_costs=cpu.standard_costs,
            action_mask_builder=reactive_wake_mask,
        )
        return agent, replay(agent, counts), replay(agent, counts[:half])

    agent, adaptive_full, adaptive_sparse = benchmark.pedantic(
        adaptive_run, rounds=1, iterations=1
    )

    print()
    print(
        format_table(
            ["policy", "power (W)", "penalty", "penalty in sparse regime"],
            [
                ("static (blended model)", static_full.mean_power,
                 static_full.mean_penalty, static_sparse.mean_penalty),
                (agent.describe(), adaptive_full.mean_power,
                 adaptive_full.mean_penalty, adaptive_sparse.mean_penalty),
            ],
            title=(
                f"regime-switching workload, penalty bound {PENALTY_BOUND}: "
                "only the adaptive manager enforces the bound per regime"
            ),
            float_format=".4f",
        )
    )
    assert static_sparse.mean_penalty > 1.3 * PENALTY_BOUND
    assert adaptive_sparse.mean_penalty <= 1.2 * PENALTY_BOUND
    benchmark.extra_info["refits"] = agent.refits
    benchmark.extra_info["static_sparse_penalty"] = static_sparse.mean_penalty
    benchmark.extra_info["adaptive_sparse_penalty"] = adaptive_sparse.mean_penalty
