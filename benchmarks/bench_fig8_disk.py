"""Benchmark: regenerate Fig. 8(b) (disk drive, optimal vs heuristics).

The heaviest experiment: an 8-point Pareto sweep over the 66-state,
330-variable LP, exact evaluation of four greedy policies with fresh
reference LPs, and Monte-Carlo simulation of the optimal policies and
six stateful heuristics.
"""

from benchmarks.conftest import run_and_verify


def bench_fig8_disk_tradeoff(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig8",), rounds=1, iterations=1
    )
    curve = result.data["curve"]
    benchmark.extra_info["optimal_power_at_loosest"] = curve[-1][2]
    benchmark.extra_info["n_heuristics"] = len(result.data["greedy"]) + len(
        result.data["simulated_heuristics"]
    )
