"""Fault-injection hardening: recovery latency and fault-free overhead.

Two questions, one per section:

* **What does a fault cost?**  For each failure class (worker SIGKILL,
  hang-past-deadline, corrupted spool generation) a scripted
  :class:`~repro.faults.FaultPlan` is injected into a small sharded
  campaign and the wall-clock is compared against the identical
  fault-free campaign — the difference is the end-to-end recovery
  latency (detect, SIGKILL if hung, restore from spool, replay).
* **What does the hardening cost when nothing fails?**  The
  bench_service throughput configuration (spooling off) stepped with
  worker deadlines armed vs without.  This isolates exactly what this
  hardening adds to the hot path — the poll-based receive and the
  fault hooks (no-ops when no plan is installed) — and the target is
  overhead within 2%.  Per-tick spooling is a user knob with its own
  obvious cost and is measured by the recovery section, not here.

Run under pytest-benchmark::

    pytest benchmarks/bench_faults.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only

or standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_faults.py [--quick]
"""

from __future__ import annotations

import json
import sys
import time

from bench_fleet import _stationary_fleet
from repro.faults import Fault, FaultPlan
from repro.service import ShardSupervisor
from repro.systems import disk_drive

#: Shard count for every scenario.
N_SHARDS = 2
#: Recovery-latency campaign: small on purpose — the latency under
#: measurement is supervision machinery, not stepping throughput.
N_DEVICES_RECOVERY = 512
RECOVERY_TICKS = 6
#: Overhead campaign scales (mirrors bench_service's quick scale).
FULL_SCALE = 10_000
QUICK_SCALE = 2_000
OVERHEAD_TICKS = 2
SLICES_PER_TICK = 16
#: Hang scenario tuning: the injected sleep must exceed the deadline.
HANG_SECONDS = 5.0
WORKER_DEADLINE = 1.0
#: Production-shaped deadline for the overhead probe: generous enough
#: never to fire, but it keeps the poll-based receive path active.
PROD_DEADLINE = 300.0

#: One scripted plan per failure class, all mid-run on shard 1.
FAULT_CLASSES: dict[str, FaultPlan] = {
    "worker_kill": FaultPlan(
        (
            Fault(site="worker.command", kind="kill", command="step",
                  tick=3, shard=1),
        )
    ),
    "worker_hang": FaultPlan(
        (
            Fault(site="worker.command", kind="hang", command="step",
                  tick=3, shard=1, seconds=HANG_SECONDS),
        )
    ),
    "spool_corruption": FaultPlan(
        (
            Fault(site="spool.written", kind="truncate", tick=2, shard=1),
            Fault(site="worker.command", kind="kill", command="step",
                  tick=3, shard=1),
        )
    ),
}


def _run_campaign(
    bundle,
    n_devices: int,
    ticks: int,
    plan: FaultPlan | None = None,
    checkpoint_every: int = 1,
    worker_deadline: float | None = WORKER_DEADLINE,
) -> tuple[float, ShardSupervisor]:
    """One sharded campaign; returns (seconds, stopped supervisor)."""
    fleet = _stationary_fleet(bundle, n_devices, seed=1)
    supervisor = ShardSupervisor(
        N_SHARDS,
        slices_per_tick=SLICES_PER_TICK,
        backend="auto",
        checkpoint_every=checkpoint_every,
        worker_deadline=worker_deadline,
        restart_backoff=0.01,
        fault_plan=plan,
    )
    supervisor.start(fleet)
    try:
        start = time.perf_counter()
        supervisor.run(ticks)
        seconds = time.perf_counter() - start
    finally:
        supervisor.stop()
    return seconds, supervisor


def _recovery_latency(bundle, plan: FaultPlan) -> dict:
    """Fault-free vs faulted wall-clock for one failure class."""
    clean_seconds, _ = _run_campaign(
        bundle, N_DEVICES_RECOVERY, RECOVERY_TICKS
    )
    chaos_seconds, supervisor = _run_campaign(
        bundle, N_DEVICES_RECOVERY, RECOVERY_TICKS, plan=plan
    )
    assert supervisor.restarts >= 1, "the scripted fault never fired"
    assert supervisor.quarantined == [], "recovery unexpectedly gave up"
    return {
        "clean_seconds": round(clean_seconds, 4),
        "chaos_seconds": round(chaos_seconds, 4),
        "recovery_seconds": round(max(0.0, chaos_seconds - clean_seconds), 4),
        "restarts": supervisor.restarts,
    }


def _overhead(bundle, n_devices: int) -> dict:
    """Hardened vs bare fault-free throughput at one scale.

    Both runs keep spooling off (the bench_service throughput
    configuration); the only delta is the armed worker deadline, i.e.
    the poll-based receive plus the no-op fault hooks.
    """
    slices = n_devices * OVERHEAD_TICKS * SLICES_PER_TICK
    bare_seconds, _ = _run_campaign(
        bundle, n_devices, OVERHEAD_TICKS,
        checkpoint_every=0, worker_deadline=None,
    )
    hardened_seconds, _ = _run_campaign(
        bundle, n_devices, OVERHEAD_TICKS,
        checkpoint_every=0, worker_deadline=PROD_DEADLINE,
    )
    bare_rate = slices / bare_seconds
    hardened_rate = slices / hardened_seconds
    return {
        "name": f"hardened{N_SHARDS}_disk66_{n_devices}dev",
        "n_devices": n_devices,
        "slices_per_device": OVERHEAD_TICKS * SLICES_PER_TICK,
        "bare_device_slices_per_sec": round(bare_rate),
        "hardened_device_slices_per_sec": round(hardened_rate),
        "hardening_overhead_pct": round(
            (1.0 - hardened_rate / bare_rate) * 100.0, 2
        ),
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_faults_recovery_worker_kill(benchmark):
    """End-to-end recovery from a SIGKILLed worker (restore + replay)."""
    bundle = disk_drive.build()
    result = benchmark.pedantic(
        lambda: _recovery_latency(bundle, FAULT_CLASSES["worker_kill"]),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(result)


def bench_faults_hardening_overhead(benchmark):
    """Fault-free hardened vs bare supervisor throughput."""
    bundle = disk_drive.build()
    result = benchmark.pedantic(
        lambda: _overhead(bundle, QUICK_SCALE), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the matrix and return the benchmark JSON document."""
    bundle = disk_drive.build()
    recovery = {
        name: _recovery_latency(bundle, plan)
        for name, plan in FAULT_CLASSES.items()
    }
    overhead = _overhead(bundle, QUICK_SCALE if quick else FULL_SCALE)
    return {
        "benchmarks": [overhead],
        "recovery": recovery,
        "n_shards": N_SHARDS,
        "worker_deadline": WORKER_DEADLINE,
        "hang_seconds": HANG_SECONDS,
        # Nominal target for the fault-free hardening cost; the hooks
        # themselves are no-ops without an installed plan, so the cost
        # is spooling + deadline polling.  Reported, and regression-
        # gated through the *_per_sec rates above rather than a hard
        # percentage (quick-mode scales are too noisy for one).
        "overhead_pct_target": 2.0,
    }


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    # Correctness binds everywhere: every class must have recovered
    # (restarts fired, nothing quarantined — asserted during collect),
    # and the hung worker must not have cost the full hang.
    hang = document["recovery"]["worker_hang"]
    if hang["chaos_seconds"] - hang["clean_seconds"] >= HANG_SECONDS:
        print(
            "worker_hang recovery took longer than the hang itself; "
            "the deadline kill is not working",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
