"""Benchmark: regenerate Fig. 12(a) (power vs available sleep states).

Twelve LP solves (six SP structures x tight/loose performance
constraint) over freshly composed baseline systems.
"""

from benchmarks.conftest import run_and_verify


def bench_fig12a_sleep_state_structures(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig12a",), rounds=2, iterations=1
    )
    results = result.data["results"]
    benchmark.extra_info["sleep2_loose_power"] = results["sleep2"]["loose"]
