"""Ablation: policy-completion (fallback) rules for unvisited states.

Eq. 16 leaves the policy undefined on states the optimal flow never
reaches.  That choice is invisible to the LP objective but matters in
trace-driven deployment, where a mis-modelled workload can drive the
system into those states.  This ablation solves one disk instance,
completes the policy under each rule, and replays a trace whose
statistics differ from the fitted model — measuring how much the rule
moves real power/penalty.
"""

from repro.core.optimizer import PolicyOptimizer
from repro.policies import StationaryPolicyAgent
from repro.sim import make_rng
from repro.sim.trace_sim import simulate_trace
from repro.systems import disk_drive
from repro.traces import mmpp2_trace
from repro.util.tables import format_table

FALLBACKS = ("greedy-service", "lowest-power", "go_active")


def bench_fallback_rules(benchmark):
    bundle = disk_drive.build()

    # A drifted workload: burstier than the model the system was built
    # with, so trace replay visits states the LP never weighted.
    trace = mmpp2_trace(0.999, 0.95, 60_000, disk_drive.TIME_RESOLUTION, make_rng(5))
    counts = trace.discretize(disk_drive.TIME_RESOLUTION)

    def solve_and_replay():
        rows = []
        for fallback in FALLBACKS:
            optimizer = PolicyOptimizer(
                bundle.system,
                bundle.costs,
                gamma=bundle.gamma,
                initial_distribution=bundle.initial_distribution,
                fallback=fallback,
            )
            result = optimizer.minimize_power(
                penalty_bound=0.3
            ).require_feasible()
            agent = StationaryPolicyAgent(bundle.system, result.policy)
            replay = simulate_trace(
                bundle.system,
                agent,
                counts,
                make_rng(6),
                initial_provider_state="active",
            )
            rows.append(
                (fallback, result.average("power"), replay.mean_power,
                 replay.mean_queue_length)
            )
        return rows

    rows = benchmark.pedantic(solve_and_replay, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["fallback rule", "power (model)", "power (drifted trace)",
             "queue (drifted trace)"],
            rows,
            title="policy completion rules under workload drift",
        )
    )
    # The LP-visible optimum must not depend on the completion rule.
    model_powers = [r[1] for r in rows]
    assert max(model_powers) - min(model_powers) < 1e-6
    benchmark.extra_info["trace_power_spread"] = max(
        r[2] for r in rows
    ) - min(r[2] for r in rows)
