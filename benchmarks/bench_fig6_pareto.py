"""Benchmark: regenerate Fig. 6 (running-example Pareto curves).

Times the full three-curve sweep: 39 constrained LP solves over the
8-state joint chain, plus the infeasible-region probe.
"""

from benchmarks.conftest import run_and_verify


def bench_fig6_pareto_curves(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig6",), rounds=3, iterations=1
    )
    benchmark.extra_info["penalty_floor"] = result.data["penalty_floor"]
