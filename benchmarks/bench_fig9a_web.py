"""Benchmark: regenerate Fig. 9(a) (web-server power vs throughput).

Seven throughput-constrained LP solves plus simulation of each optimal
policy; the run also verifies the paper's "fast processor never used
alone" finding.
"""

from benchmarks.conftest import run_and_verify


def bench_fig9a_web_server(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig9a",), rounds=1, iterations=1
    )
    benchmark.extra_info["max_p2_alone_usage"] = max(
        result.data["p2_alone_usage"]
    )
