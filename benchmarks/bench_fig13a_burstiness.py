"""Benchmark: regenerate Fig. 13(a) (power vs workload burstiness).

Fourteen LP solves across the burstiness sweep of the four-sleep-state
baseline, constant load throughout.
"""

from benchmarks.conftest import run_and_verify


def bench_fig13a_burstiness_sweep(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig13a",), rounds=2, iterations=1
    )
    series = result.data["series"]["0.7"]
    benchmark.extra_info["burstiest_power"] = series[0]
    benchmark.extra_info["least_bursty_power"] = series[-1]
