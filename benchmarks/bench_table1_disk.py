"""Benchmark: regenerate Table I (disk-drive state inventory).

Pure model construction and hitting-time analysis; the timing measures
building the 11-state Travelstar SP and verifying its wake delays
against the data sheet.
"""

from benchmarks.conftest import run_and_verify


def bench_table1_disk_states(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("table1",), rounds=3, iterations=1
    )
    measured = result.data["measured"]
    benchmark.extra_info["sleep_wake_ms"] = measured["sleep"]["wake_ms"]
