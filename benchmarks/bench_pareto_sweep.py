"""Cold-loop vs incremental Pareto sweep throughput (solves/second).

The sweep engine's acceptance benchmark: a 32-point disk-drive penalty
sweep (with an infeasible prefix and a few duplicate bounds, the shape
real figure sweeps have) must run **>= 3x** faster end-to-end through
:class:`~repro.core.pareto_sweep.ParetoSweepSolver` — warm-started
re-solves + bound dedupe + feasibility bracketing on the simplex
backend — than the seed's cold per-bound loop, and the two curves must
agree to 1e-8 on every feasible objective.

Run under pytest-benchmark::

    pytest benchmarks/bench_pareto_sweep.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only

or standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_pareto_sweep.py [--quick]
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.core.pareto import min_achievable
from repro.core.pareto_sweep import ParetoSweepSolver
from repro.systems import disk_drive, example_system

#: Headline acceptance target: incremental >= 3x the cold loop.
SPEEDUP_TARGET = 3.0
#: Curve agreement tolerance between cold and incremental sweeps.
OBJECTIVE_TOL = 1e-8
#: Headline sweep size (disk-drive case study).
N_POINTS = 32


def _optimizer(bundle, backend: str = "simplex") -> PolicyOptimizer:
    return PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        backend=backend,
    )


def sweep_bounds(optimizer, n_points: int = N_POINTS) -> list[float]:
    """A realistic figure-sweep bound grid for ``optimizer``'s system.

    Roughly a quarter of the grid probes the infeasible region below
    the penalty floor (the paper plots it explicitly in Fig. 6), a few
    bounds repeat (grids assembled from multiple figure panels overlap)
    and the rest spans the feasible range geometrically, starting at
    ``floor * 1.3`` exactly as the Fig. 8 sweep does (LPs *at* the
    floor are maximally degenerate and stall any vertex solver).
    """
    floor = min_achievable(optimizer, PENALTY)
    cap = optimizer.minimize_unconstrained(POWER).require_feasible().average(PENALTY)
    n_infeasible = max(1, n_points // 4)
    n_duplicates = max(1, n_points // 8)
    n_feasible = n_points - n_infeasible - n_duplicates
    infeasible = np.linspace(0.2 * floor, 0.9 * floor, n_infeasible)
    feasible = np.geomspace(floor * 1.3, cap * 0.98, n_feasible)
    duplicates = feasible[:: max(1, n_feasible // n_duplicates)][:n_duplicates]
    return [float(b) for b in np.concatenate([infeasible, feasible, duplicates])]


def cold_sweep(optimizer, bounds) -> list[tuple[float, bool, float | None]]:
    """The seed's per-bound cold loop: one full LP solve per bound."""
    out = []
    for bound in sorted(bounds):
        result = optimizer.optimize(POWER, "min", upper_bounds={PENALTY: bound})
        out.append(
            (
                bound,
                result.feasible,
                result.objective_average if result.feasible else None,
            )
        )
    return out


def incremental_sweep(optimizer, bounds):
    """The engine sweep: warm starts + dedupe + bracketing."""
    solver = ParetoSweepSolver(optimizer)
    curve = solver.solve(bounds)
    return curve, solver.stats


def compare_curves(cold, curve) -> float:
    """Max |objective| deviation between the cold loop and the curve.

    The cold loop emits one entry per *requested* bound; the curve has
    one point per unique bound — every cold entry is matched to the
    nearest curve point.
    """
    worst = 0.0
    points = {p.bound: p for p in curve.points}
    bounds = sorted(points)
    for bound, feasible, objective in cold:
        nearest = min(bounds, key=lambda b, bound=bound: abs(b - bound))
        point = points[nearest]
        assert point.feasible == feasible, (
            f"feasibility mismatch at bound {bound}: "
            f"cold={feasible}, incremental={point.feasible}"
        )
        if feasible:
            worst = max(worst, abs(point.objective - objective))
    return worst


def _timed(fn, *args):
    start = time.perf_counter()
    value = fn(*args)
    return time.perf_counter() - start, value


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_cold_sweep_example(benchmark):
    """Cold per-bound loop on the 8-state running example."""
    bundle = example_system.build()
    optimizer = _optimizer(bundle)
    bounds = sweep_bounds(optimizer, 12)
    benchmark.pedantic(
        lambda: cold_sweep(optimizer, bounds), rounds=2, iterations=1
    )
    benchmark.extra_info["n_points"] = len(bounds)


def bench_incremental_sweep_example(benchmark):
    """Engine sweep on the 8-state running example."""
    bundle = example_system.build()
    optimizer = _optimizer(bundle)
    bounds = sweep_bounds(optimizer, 12)
    benchmark.pedantic(
        lambda: incremental_sweep(optimizer, bounds), rounds=2, iterations=1
    )
    benchmark.extra_info["n_points"] = len(bounds)


def bench_sweep_speedup_disk_32pt(benchmark):
    """Acceptance check: >= 3x on the 32-point disk-drive sweep."""
    bundle = disk_drive.build()
    optimizer = _optimizer(bundle)
    bounds = sweep_bounds(optimizer, N_POINTS)
    cold_seconds, cold = _timed(cold_sweep, optimizer, bounds)
    warm_seconds, (curve, stats) = benchmark.pedantic(
        lambda: _timed(incremental_sweep, optimizer, bounds),
        rounds=1,
        iterations=1,
    )
    deviation = compare_curves(cold, curve)
    speedup = cold_seconds / warm_seconds
    benchmark.extra_info.update(
        cold_seconds=round(cold_seconds, 4),
        incremental_seconds=round(warm_seconds, 4),
        speedup=round(speedup, 2),
        max_objective_deviation=deviation,
        sweep_stats=stats.as_dict(),
    )
    assert deviation <= OBJECTIVE_TOL, (
        f"incremental sweep deviates {deviation:.2e} from the cold loop "
        f"(tolerance {OBJECTIVE_TOL:.0e})"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"incremental sweep only {speedup:.2f}x faster than the cold loop "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s); "
        f"target {SPEEDUP_TARGET}x"
    )


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the sweep matrix and return the benchmark JSON document."""
    systems = [("example8", example_system.build, 12)]
    if not quick:
        systems.append(("disk66", disk_drive.build, N_POINTS))
    records = []
    speedups = {}
    deviations = {}
    for name, builder, n_points in systems:
        bundle = builder()
        optimizer = _optimizer(bundle)
        bounds = sweep_bounds(optimizer, n_points)
        cold_seconds, cold = _timed(cold_sweep, optimizer, bounds)
        warm_seconds, (curve, stats) = _timed(
            incremental_sweep, optimizer, bounds
        )
        deviation = compare_curves(cold, curve)
        speedup = cold_seconds / warm_seconds
        speedups[name] = round(speedup, 2)
        deviations[name] = deviation
        records.append(
            {
                "name": f"sweep_{name}_{n_points}pt",
                "system": name,
                "n_points": n_points,
                "cold_seconds": round(cold_seconds, 4),
                "incremental_seconds": round(warm_seconds, 4),
                "cold_solves_per_sec": round(len(set(bounds)) / cold_seconds, 2),
                "incremental_solves_per_sec": round(
                    stats.n_solves / warm_seconds, 2
                ),
                "speedup": round(speedup, 2),
                "max_objective_deviation": deviation,
                "sweep_stats": stats.as_dict(),
            }
        )
    return {
        "benchmarks": records,
        "speedup_vs_cold_loop": speedups,
        "max_objective_deviation": deviations,
        "speedup_target": SPEEDUP_TARGET,
        "objective_tolerance": OBJECTIVE_TOL,
    }


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    if any(
        dev > OBJECTIVE_TOL for dev in document["max_objective_deviation"].values()
    ):
        return 1
    # The acceptance target is the 66-state disk case study (quick mode
    # is a smoke run on the small example where per-solve constant
    # overheads dominate).
    if quick:
        return 0
    return 0 if document["speedup_vs_cold_loop"]["disk66"] >= SPEEDUP_TARGET else 1


if __name__ == "__main__":
    sys.exit(main())
