"""Sharded fleet-service throughput vs the single-process controller.

The service exists to break the single-core cap on the controller's
serial per-device RNG fan-in, so the headline measurement is direct:
the same stationary disk fleet stepped by a 4-shard
:class:`~repro.service.ShardSupervisor` vs one
:class:`~repro.runtime.FleetController`, at **10k** and **100k**
devices.  The acceptance gate — **>= 2x** device-slices/second at 100k
with 4 shards — is only physically reachable with enough cores to run
the workers in parallel, so it binds in full mode on machines with at
least ``N_SHARDS`` CPUs; elsewhere the speedup is reported as a
measurement (the committed baseline is floored accordingly).  The
correctness half has no such hedge: ``sharded_identical`` asserts the
sharded run's per-device telemetry is byte-identical to the
single-process run on every machine, quick mode included.

Run under pytest-benchmark::

    pytest benchmarks/bench_service.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only

or standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
import time

from bench_fleet import _stationary_fleet
from repro.runtime import FleetController, MemoryTelemetry
from repro.runtime.telemetry import snapshot_from_records
from repro.service import ShardSupervisor
from repro.systems import disk_drive

#: Worker count for the sharded leg (and the core count the speedup
#: gate needs to be physically meaningful).
N_SHARDS = 4
#: Acceptance: sharded >= 2x single-process at the 100k-device scale.
SPEEDUP_TARGET = 2.0
#: Device counts per mode.
FULL_SCALES = (10_000, 100_000)
QUICK_SCALES = (2_000,)
#: Slices per tick; two ticks per timed campaign so both paths carry
#: their one-time grouping/compile cost symmetrically.
SLICES_PER_TICK = 16
TICKS = 2
#: Identity-check fleet: small enough to be fast, large enough to
#: spread across every shard many times over.
N_DEVICES_IDENTITY = 512


def _run_single(bundle, n_devices: int) -> tuple[float, float]:
    """Single-process campaign; returns (seconds, device-slices/s)."""
    fleet = _stationary_fleet(bundle, n_devices, seed=1)
    controller = FleetController(
        fleet, slices_per_tick=SLICES_PER_TICK, backend="auto"
    )
    start = time.perf_counter()
    controller.run(TICKS)
    seconds = time.perf_counter() - start
    return seconds, n_devices * TICKS * SLICES_PER_TICK / seconds


def _run_sharded(bundle, n_devices: int) -> tuple[float, float]:
    """4-shard campaign (spooling off: this is a throughput probe)."""
    fleet = _stationary_fleet(bundle, n_devices, seed=1)
    supervisor = ShardSupervisor(
        N_SHARDS,
        slices_per_tick=SLICES_PER_TICK,
        backend="auto",
        checkpoint_every=0,
    )
    supervisor.start(fleet)
    try:
        start = time.perf_counter()
        supervisor.run(TICKS)
        seconds = time.perf_counter() - start
    finally:
        supervisor.stop()
    return seconds, n_devices * TICKS * SLICES_PER_TICK / seconds


def _sharded_identical(bundle, ticks: int = 2) -> bool:
    """Is sharded per-device telemetry byte-identical to single-process?"""
    sink = MemoryTelemetry()
    controller = FleetController(
        _stationary_fleet(bundle, N_DEVICES_IDENTITY, seed=2),
        slices_per_tick=SLICES_PER_TICK,
        telemetry=sink,
        telemetry_per_device=True,
    )
    controller.run(ticks)

    supervisor = ShardSupervisor(
        N_SHARDS, slices_per_tick=SLICES_PER_TICK
    )
    supervisor.start(_stationary_fleet(bundle, N_DEVICES_IDENTITY, seed=2))
    sharded = []
    try:
        for _ in range(ticks):
            supervisor.step_tick()
            record = snapshot_from_records(
                supervisor.tick,
                supervisor.collect_records(),
                per_device=True,
            )
            record["backend"] = supervisor.resolved_backend
            record["uniform_source"] = supervisor.uniform_source
            sharded.append(record)
    finally:
        supervisor.stop()
    return json.dumps(sharded, sort_keys=True) == json.dumps(
        sink.records, sort_keys=True
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_service_sharded_10kdev(benchmark):
    """4-shard supervisor stepping 10k stationary disks."""
    bundle = disk_drive.build()
    seconds, rate = benchmark.pedantic(
        lambda: _run_sharded(bundle, 10_000), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        n_devices=10_000,
        n_shards=N_SHARDS,
        device_slices_per_sec=round(rate),
    )


def bench_service_speedup_10kdev(benchmark):
    """Sharded vs single-process at 10k devices (measurement only —
    the 2x gate binds at 100k in the standalone full run)."""
    bundle = disk_drive.build()
    _, single_rate = _run_single(bundle, 10_000)
    _, sharded_rate = benchmark.pedantic(
        lambda: _run_sharded(bundle, 10_000), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        single_device_slices_per_sec=round(single_rate),
        sharded_device_slices_per_sec=round(sharded_rate),
        speedup=round(sharded_rate / single_rate, 2),
        cpu_count=os.cpu_count(),
    )


def bench_service_identity(benchmark):
    """Acceptance: sharded telemetry == single-process, byte for byte."""
    bundle = disk_drive.build()
    identical = benchmark.pedantic(
        lambda: _sharded_identical(bundle), rounds=1, iterations=1
    )
    assert identical, (
        "sharded per-device telemetry diverged from the single-process "
        "controller"
    )


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the matrix and return the benchmark JSON document."""
    bundle = disk_drive.build()
    scales = QUICK_SCALES if quick else FULL_SCALES
    records = []
    speedups: dict[str, float] = {}
    for n_devices in scales:
        single_seconds, single_rate = _run_single(bundle, n_devices)
        sharded_seconds, sharded_rate = _run_sharded(bundle, n_devices)
        records.append(
            {
                "name": f"single_disk66_{n_devices}dev",
                "mode": "single-process",
                "n_devices": n_devices,
                "slices_per_device": TICKS * SLICES_PER_TICK,
                "seconds": round(single_seconds, 4),
                "device_slices_per_sec": round(single_rate),
            }
        )
        records.append(
            {
                "name": f"sharded{N_SHARDS}_disk66_{n_devices}dev",
                "mode": f"{N_SHARDS}-shard service",
                "n_devices": n_devices,
                "slices_per_device": TICKS * SLICES_PER_TICK,
                "seconds": round(sharded_seconds, 4),
                "device_slices_per_sec": round(sharded_rate),
            }
        )
        speedups[f"speedup_sharded_vs_single_{n_devices}dev"] = round(
            sharded_rate / single_rate, 2
        )
    cpu_count = os.cpu_count() or 1
    document = {
        "benchmarks": records,
        **speedups,
        "speedup_target": SPEEDUP_TARGET,
        "n_shards": N_SHARDS,
        "cpu_count": cpu_count,
        # the gate needs one core per worker to be physically possible
        "speedup_gate_active": not quick and cpu_count >= N_SHARDS,
        "sharded_identical": _sharded_identical(
            bundle, ticks=1 if quick else 2
        ),
    }
    return document


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    # Correctness binds everywhere, quick mode included.
    if not document["sharded_identical"]:
        return 1
    # The throughput gate binds only on the full campaign, and only
    # where the workers can actually run in parallel.
    if not document["speedup_gate_active"]:
        return 0
    headline = f"speedup_sharded_vs_single_{FULL_SCALES[-1]}dev"
    if document[headline] < SPEEDUP_TARGET:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
