"""Micro-benchmarks of the core machinery.

Times the individual stages of the paper's tool pipeline in isolation:
Markov composition of the 66-state disk system, the constrained LP
under each backend (the PCx-stand-in interior point, the from-scratch
simplex, scipy's HiGHS), exact policy evaluation, value iteration, and
raw simulation throughput.
"""

import numpy as np

from repro.core.costs import POWER
from repro.core.dynamic_programming import value_iteration
from repro.core.optimizer import PolicyOptimizer
from repro.core.policy import evaluate_policy
from repro.policies import StationaryPolicyAgent, eager_markov_policy
from repro.sim import make_rng, simulate, simulate_replications
from repro.systems import disk_drive
from repro.traces import SRExtractor, mmpp2_trace


def bench_compose_disk_system(benchmark):
    """Markov composer: 11 x 2 x 3 joint states, five commands."""
    bundle = benchmark(disk_drive.build)
    assert bundle.system.n_states == 66


def _disk_optimizer(backend: str) -> PolicyOptimizer:
    bundle = disk_drive.build()
    return PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        backend=backend,
    )


def bench_lp_scipy_highs(benchmark):
    """Constrained 330-variable LP via scipy/HiGHS."""
    optimizer = _disk_optimizer("scipy")
    result = benchmark(
        lambda: optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.005)
    )
    assert result.feasible


def bench_lp_interior_point(benchmark):
    """The same LP via the from-scratch Mehrotra interior point (PCx
    stand-in)."""
    optimizer = _disk_optimizer("interior-point")
    result = benchmark(
        lambda: optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.005)
    )
    assert result.feasible


def bench_lp_simplex(benchmark):
    """The same LP via the from-scratch two-phase revised simplex."""
    optimizer = _disk_optimizer("simplex")
    result = benchmark.pedantic(
        lambda: optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.005),
        rounds=1,
        iterations=1,
    )
    assert result.feasible


def bench_policy_evaluation(benchmark):
    """Closed-form discounted evaluation on the 66-state system."""
    bundle = disk_drive.build()
    policy = eager_markov_policy(
        bundle.system, "go_active", "go_standby"
    )
    evaluation = benchmark(
        lambda: evaluate_policy(
            bundle.system,
            bundle.costs,
            policy,
            bundle.gamma,
            bundle.initial_distribution,
        )
    )
    assert evaluation.averages[POWER] > 0


def bench_value_iteration_disk(benchmark):
    """Unconstrained DP solve on the 66-state system (gamma = 0.999)."""
    bundle = disk_drive.build()
    costs = bundle.costs.metric(POWER)
    result = benchmark.pedantic(
        lambda: value_iteration(bundle.system, costs, 0.999, tol=1e-8),
        rounds=1,
        iterations=1,
    )
    assert result.converged


def bench_simulation_throughput(benchmark):
    """Slices per second of the Markov engine on the disk system."""
    bundle = disk_drive.build()
    policy = eager_markov_policy(bundle.system, "go_active", "go_idle")
    agent = StationaryPolicyAgent(bundle.system, policy)
    n_slices = 20_000

    def run():
        return simulate(
            bundle.system,
            bundle.costs,
            agent,
            n_slices,
            make_rng(0),
            initial_state=("active", "0", 0),
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.n_slices == n_slices
    benchmark.extra_info["slices"] = n_slices


def bench_simulation_throughput_vector(benchmark):
    """Slices per second of the vectorized backend (32 replications)."""
    bundle = disk_drive.build()
    policy = eager_markov_policy(bundle.system, "go_active", "go_idle")
    agent = StationaryPolicyAgent(bundle.system, policy)
    n_slices, n_replications = 20_000, 32

    def run():
        return simulate_replications(
            bundle.system,
            bundle.costs,
            agent,
            n_slices,
            n_replications,
            rng=0,
            initial_state=("active", "0", 0),
            backend="vector",
        )

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(results) == n_replications
    benchmark.extra_info["slices"] = n_slices * n_replications


def bench_sr_extraction(benchmark):
    """k-memory extraction over a 100k-slice stream (k = 2)."""
    counts = mmpp2_trace(0.99, 0.9, 100_000, 1.0, make_rng(1)).discretize(1.0)
    counts = np.pad(counts, (0, max(0, 100_000 - counts.size)))
    model = benchmark(lambda: SRExtractor(memory=2).fit(counts))
    assert model.n_states == 4
