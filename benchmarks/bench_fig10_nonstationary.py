"""Benchmark: regenerate Fig. 10 (nonstationary workload).

Times the full adversarial pipeline: synthesize the merged two-regime
trace, fit a (deliberately misspecified) stationary SR model, optimize,
then trace-simulate the stochastic and timeout policies.
"""

from benchmarks.conftest import run_and_verify


def bench_fig10_nonstationary_workload(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("fig10",), rounds=1, iterations=1
    )
    benchmark.extra_info["max_model_error"] = max(result.data["model_errors"])
