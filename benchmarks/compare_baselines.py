"""Benchmark regression gate: fresh JSON vs committed baselines.

Every standalone benchmark (``bench_sim_backends``, ``bench_pareto_sweep``,
``bench_fleet``, ``bench_estimation``) emits one JSON document.  This
script compares a fresh run against the baseline committed under
``benchmarks/baselines/`` and **fails on a >30% throughput regression**
(any numeric metric whose key ends in ``_per_sec``, plus the
machine-independent ``speedup*`` ratios).  Metrics are matched by their
JSON path; entries of a ``benchmarks`` array are matched by their
``name`` field, so reordering or adding scenarios never misfires.

CI usage (the ``benchmark-smoke`` job)::

    python benchmarks/compare_baselines.py benchmarks/baselines \
        bench_sim_backends.json bench_pareto_sweep.json \
        bench_fleet.json bench_estimation.json --tolerance 0.30

Refreshing baselines after an intentional change (or new hardware)::

    python benchmarks/compare_baselines.py benchmarks/baselines \
        bench_*.json --update
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

#: Keys treated as higher-is-better throughput metrics.
_THROUGHPUT_SUFFIX = "_per_sec"
_SPEEDUP_PREFIX = "speedup"


def collect_metrics(document, path: str = "") -> dict[str, float]:
    """Flatten throughput/speedup metrics into ``{json-path: value}``."""
    metrics: dict[str, float] = {}
    if isinstance(document, dict):
        for key, value in document.items():
            here = f"{path}.{key}" if path else str(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if str(key).endswith(_THROUGHPUT_SUFFIX) or str(
                    key
                ).startswith(_SPEEDUP_PREFIX):
                    # *_target thresholds are config, not measurements.
                    if not str(key).endswith("_target"):
                        metrics[here] = float(value)
            else:
                metrics.update(collect_metrics(value, here))
    elif isinstance(document, list):
        for index, item in enumerate(document):
            label = (
                item.get("name", str(index))
                if isinstance(item, dict)
                else str(index)
            )
            metrics.update(collect_metrics(item, f"{path}[{label}]"))
    return metrics


def compare_documents(
    baseline: dict, fresh: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing fresh metrics to baseline.

    A metric regresses when ``fresh < baseline * (1 - tolerance)``.
    Metrics present on only one side are reported as notes (new
    scenarios appear, retired ones disappear; neither is a failure).
    """
    baseline_metrics = collect_metrics(baseline)
    fresh_metrics = collect_metrics(fresh)
    regressions: list[str] = []
    notes: list[str] = []
    for path, base_value in sorted(baseline_metrics.items()):
        if path not in fresh_metrics:
            notes.append(f"baseline metric {path} missing from fresh run")
            continue
        fresh_value = fresh_metrics[path]
        if base_value <= 0:
            continue
        floor = base_value * (1.0 - tolerance)
        change = fresh_value / base_value - 1.0
        if fresh_value < floor:
            regressions.append(
                f"{path}: {fresh_value:g} vs baseline {base_value:g} "
                f"({change:+.1%}, tolerance -{tolerance:.0%})"
            )
        else:
            notes.append(f"{path}: {change:+.1%}")
    for path in sorted(set(fresh_metrics) - set(baseline_metrics)):
        notes.append(f"new metric {path} (no baseline yet)")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh benchmark JSON against committed baselines"
    )
    parser.add_argument(
        "baseline_dir", help="directory of committed baseline JSONs"
    )
    parser.add_argument(
        "fresh", nargs="+", help="fresh benchmark JSON files (matched by name)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional throughput drop (default: 0.30)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh JSONs over the baselines instead of comparing",
    )
    args = parser.parse_args(argv)
    baseline_dir = Path(args.baseline_dir)

    if args.update:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        for fresh_path in args.fresh:
            target = baseline_dir / Path(fresh_path).name
            shutil.copyfile(fresh_path, target)
            print(f"baseline updated: {target}")
        return 0

    failures = 0
    for fresh_path in args.fresh:
        name = Path(fresh_path).name
        baseline_path = baseline_dir / name
        if not baseline_path.exists():
            print(f"{name}: SKIP (no baseline committed)")
            continue
        try:
            baseline = json.loads(baseline_path.read_text())
            fresh = json.loads(Path(fresh_path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{name}: ERROR reading documents ({exc})")
            failures += 1
            continue
        regressions, notes = compare_documents(
            baseline, fresh, args.tolerance
        )
        if regressions:
            failures += 1
            print(f"{name}: FAIL ({len(regressions)} regression(s))")
            for line in regressions:
                print(f"  REGRESSION {line}")
        else:
            print(f"{name}: ok ({len(notes)} metric(s) within tolerance)")
        for line in notes:
            print(f"  {line}")
    if failures:
        print(
            f"{failures} benchmark document(s) regressed beyond "
            f"{args.tolerance:.0%}; if intentional, refresh with --update",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
