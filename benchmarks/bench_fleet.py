"""Fleet-controller throughput: grouped vector stepping vs device loops.

The headline acceptance check for the :mod:`repro.runtime` subsystem:
a fleet of **1024** stationary disk devices stepped by the controller's
grouped vector path must sustain **>= 10x** the device-slices/second of
the same fleet forced through the per-device reference loop.  The
second contract — a checkpoint/resume campaign reproduces an
uninterrupted run's telemetry *exactly* — is asserted alongside, on a
mixed fleet (vector group + timeout heuristics + a stream-driven
device) so every stepping path crosses the checkpoint.

Run under pytest-benchmark::

    pytest benchmarks/bench_fleet.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only

or standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]
"""

from __future__ import annotations

import json
import sys
import time

from repro.policies import (
    StationaryPolicyAgent,
    TimeoutAgent,
    eager_markov_policy,
)
from repro.runtime import (
    Fleet,
    FleetController,
    MemoryTelemetry,
    MMPP2Stream,
    device_rng,
)
from repro.systems import disk_drive, example_system

#: Headline scenario: 1024 stationary devices.
N_DEVICES = 1024
SPEEDUP_TARGET = 10.0


def _stationary_fleet(bundle, n_devices: int, seed: int = 0) -> Fleet:
    policy = eager_markov_policy(bundle.system, "go_active", "go_idle")
    fleet = Fleet()
    for i in range(n_devices):
        fleet.add_device(
            f"disk-{i:04d}",
            bundle.system,
            bundle.costs,
            StationaryPolicyAgent(bundle.system, policy),
            rng=device_rng(seed, i),
            initial_state=("active", "0", 0),
        )
    return fleet


def _mixed_fleet(seed: int = 3) -> Fleet:
    """Vector group + loop heuristics + a stream-driven device."""
    bundle = example_system.build()
    policy = eager_markov_policy(bundle.system, "s_on", "s_off")
    fleet = Fleet()
    for i in range(12):
        fleet.add_device(
            f"v-{i:02d}",
            bundle.system,
            bundle.costs,
            StationaryPolicyAgent(bundle.system, policy),
            rng=device_rng(seed, i),
        )
    for i in range(3):
        fleet.add_device(
            f"t-{i:02d}",
            bundle.system,
            bundle.costs,
            TimeoutAgent(5, 0, 1),
            rng=device_rng(seed + 1, i),
        )
    rng = device_rng(seed + 2, 0)
    fleet.add_device(
        "stream-00",
        bundle.system,
        bundle.costs,
        TimeoutAgent(3, 0, 1),
        rng=rng,
        stream=MMPP2Stream(0.95, 0.85, rng),
    )
    return fleet


def _run(fleet: Fleet, backend: str, ticks: int, slices_per_tick: int):
    """One timed campaign; returns (seconds, device_slices_per_second)."""
    controller = FleetController(
        fleet, slices_per_tick=slices_per_tick, backend=backend
    )
    start = time.perf_counter()
    controller.run(ticks)
    seconds = time.perf_counter() - start
    return seconds, len(fleet) * ticks * slices_per_tick / seconds


def _checkpoint_roundtrip_exact(tmp_path, ticks: int = 6) -> bool:
    """Does resume reproduce an uninterrupted run's telemetry exactly?"""
    split = ticks // 2
    full = MemoryTelemetry()
    FleetController(
        _mixed_fleet(), slices_per_tick=100, telemetry=full
    ).run(ticks)

    parts = MemoryTelemetry()
    controller = FleetController(
        _mixed_fleet(), slices_per_tick=100, telemetry=parts
    )
    controller.run(split)
    path = str(tmp_path / "bench_fleet.ckpt")
    controller.save_checkpoint(path)
    resumed = FleetController.resume(path, telemetry=parts)
    resumed.run(ticks - split)
    return json.dumps(full.records, sort_keys=True) == json.dumps(
        parts.records, sort_keys=True
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_fleet_vector_1024dev(benchmark):
    """Grouped vector stepping, 1024 stationary disks."""
    bundle = disk_drive.build()
    fleet = _stationary_fleet(bundle, N_DEVICES)
    benchmark.pedantic(
        lambda: _run(fleet, "vector", 1, 200), rounds=2, iterations=1
    )
    benchmark.extra_info["n_devices"] = N_DEVICES


def bench_fleet_speedup_1024dev(benchmark):
    """Acceptance: grouped vector >= 10x the per-device loop path."""
    bundle = disk_drive.build()
    loop_seconds, loop_rate = _run(
        _stationary_fleet(bundle, N_DEVICES), "loop", 1, 50
    )
    vector_seconds, vector_rate = benchmark.pedantic(
        lambda: _run(_stationary_fleet(bundle, N_DEVICES), "vector", 1, 500),
        rounds=1,
        iterations=1,
    )
    speedup = vector_rate / loop_rate
    benchmark.extra_info.update(
        loop_device_slices_per_sec=round(loop_rate),
        vector_device_slices_per_sec=round(vector_rate),
        speedup=round(speedup, 2),
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"grouped vector stepping only {speedup:.1f}x faster than the "
        f"per-device loop ({vector_rate:,.0f} vs {loop_rate:,.0f} "
        f"device-slices/s); target {SPEEDUP_TARGET}x"
    )


def bench_fleet_checkpoint_roundtrip(benchmark, tmp_path):
    """Acceptance: resumed telemetry == uninterrupted telemetry."""
    exact = benchmark.pedantic(
        lambda: _checkpoint_roundtrip_exact(tmp_path), rounds=1, iterations=1
    )
    assert exact, "checkpoint/resume telemetry diverged from the full run"


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the matrix and return the benchmark JSON document."""
    import pathlib
    import tempfile

    bundle = disk_drive.build()
    # Loop throughput is rate-stable, so it is sampled on a shorter
    # campaign; the vector path gets a fleet-scale one.
    scenarios = (
        ("loop", 1, 10 if quick else 50),
        ("vector", 1, 100 if quick else 500),
    )
    records = []
    for backend, ticks, slices_per_tick in scenarios:
        fleet = _stationary_fleet(bundle, N_DEVICES)
        seconds, rate = _run(fleet, backend, ticks, slices_per_tick)
        records.append(
            {
                "name": f"{backend}_disk66_{N_DEVICES}dev",
                "backend": backend,
                "n_devices": N_DEVICES,
                "slices_per_device": ticks * slices_per_tick,
                "seconds": round(seconds, 4),
                "device_slices_per_sec": round(rate),
            }
        )
    speedup = round(
        records[1]["device_slices_per_sec"]
        / records[0]["device_slices_per_sec"],
        2,
    )
    with tempfile.TemporaryDirectory() as tmp:
        exact = _checkpoint_roundtrip_exact(
            pathlib.Path(tmp), ticks=4 if quick else 6
        )
    return {
        "benchmarks": records,
        "speedup_vector_vs_loop": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "checkpoint_resume_exact": exact,
    }


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    if not document["checkpoint_resume_exact"]:
        return 1
    # Quick mode is a smoke run; the throughput target is only binding
    # on the full campaign.
    if quick:
        return 0
    return 0 if document["speedup_vector_vs_loop"] >= SPEEDUP_TARGET else 1


if __name__ == "__main__":
    sys.exit(main())
