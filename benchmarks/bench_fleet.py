"""Fleet-controller throughput: grouped batch stepping vs device loops.

The headline acceptance check for the :mod:`repro.runtime` subsystem:
a fleet of **1024** stationary disk devices stepped by the controller's
grouped batch path must sustain **>= 10x** the device-slices/second of
the same fleet forced through the per-device reference loop.  When
numba is installed the same fleet is also stepped on the jit tier,
which must at least match the vector tier (the per-device RNG fan-in
is backend-independent and bounds the ceiling well below the raw
kernel speedup).  A **100,000-device** fleet-scale smoke runs on the
preferred batch tier (jit when available, vector otherwise) to keep
the controller honest at the paper-fleet scale; the same scale doubles
as the RNG fan-in comparison — the serial per-device
:class:`~repro.sim.rng.FanInSource` against the vectorized
:class:`~repro.sim.rng_batched.BatchedPCG64Source` — whose blocks must
be byte-identical everywhere and whose **>= 5x** throughput gate binds
only on multi-core runners, where the batched source fans
``LANE_BAND``-lane bands across a process pool.  The final contract —
a checkpoint/resume campaign reproduces an uninterrupted run's
telemetry *exactly* — is asserted alongside, on a mixed fleet (batch
group + timeout heuristics + a stream-driven device) so every stepping
path crosses the checkpoint.

Run under pytest-benchmark::

    pytest benchmarks/bench_fleet.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' --benchmark-only

or standalone (emits one JSON document on stdout)::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.policies import (
    StationaryPolicyAgent,
    TimeoutAgent,
    eager_markov_policy,
)
from repro.runtime import (
    Fleet,
    FleetController,
    MemoryTelemetry,
    MMPP2Stream,
    device_rng,
)
from repro.sim import jit_available
from repro.sim.rng import FanInSource
from repro.sim.rng_batched import BatchedPCG64Source, batched_available
from repro.systems import disk_drive, example_system

#: Headline scenario: 1024 stationary devices.
N_DEVICES = 1024
SPEEDUP_TARGET = 10.0
#: Fleet-scale smoke: one controller tick over 10^5 devices.
N_DEVICES_SMOKE = 100_000
#: jit acceptance on the fleet path: no worse than the vector tier.
JIT_SPEEDUP_TARGET = 1.0
#: RNG fan-in comparison: one 10^5-lane block spans ~7 LANE_BAND bands,
#: so the batched source's process pool engages.
N_LANES_RNG = N_DEVICES_SMOKE
BATCHED_SPEEDUP_TARGET = 5.0
#: The >=5x gate needs real cores: the batched source beats the serial
#: fan-in by drawing LANE_BAND-lane bands in a process pool, so on
#: narrow runners the ratio sits near 1x and only byte-identity binds.
BATCHED_GATE_MIN_CORES = 8


def _stationary_fleet(bundle, n_devices: int, seed: int = 0) -> Fleet:
    policy = eager_markov_policy(bundle.system, "go_active", "go_idle")
    fleet = Fleet()
    for i in range(n_devices):
        fleet.add_device(
            f"disk-{i:04d}",
            bundle.system,
            bundle.costs,
            StationaryPolicyAgent(bundle.system, policy),
            rng=device_rng(seed, i),
            initial_state=("active", "0", 0),
        )
    return fleet


def _mixed_fleet(seed: int = 3) -> Fleet:
    """Vector group + loop heuristics + a stream-driven device."""
    bundle = example_system.build()
    policy = eager_markov_policy(bundle.system, "s_on", "s_off")
    fleet = Fleet()
    for i in range(12):
        fleet.add_device(
            f"v-{i:02d}",
            bundle.system,
            bundle.costs,
            StationaryPolicyAgent(bundle.system, policy),
            rng=device_rng(seed, i),
        )
    for i in range(3):
        fleet.add_device(
            f"t-{i:02d}",
            bundle.system,
            bundle.costs,
            TimeoutAgent(5, 0, 1),
            rng=device_rng(seed + 1, i),
        )
    rng = device_rng(seed + 2, 0)
    fleet.add_device(
        "stream-00",
        bundle.system,
        bundle.costs,
        TimeoutAgent(3, 0, 1),
        rng=rng,
        stream=MMPP2Stream(0.95, 0.85, rng),
    )
    return fleet


def _run(
    fleet: Fleet,
    backend: str,
    ticks: int,
    slices_per_tick: int,
    uniform_source: str = "auto",
):
    """One timed campaign; returns (seconds, rate, resolved backend)."""
    controller = FleetController(
        fleet,
        slices_per_tick=slices_per_tick,
        backend=backend,
        uniform_source=uniform_source,
    )
    start = time.perf_counter()
    controller.run(ticks)
    seconds = time.perf_counter() - start
    rate = len(fleet) * ticks * slices_per_tick / seconds
    return seconds, rate, controller.resolved_backend


def _rng_fan_in_rates(n_lanes: int, chunk: int, seed: int = 7):
    """Source-level fan-in: serial FanInSource vs the batched source.

    Returns ``(fanin_rate, batched_rate, identical)`` in
    device-slices/second.  The batched source snapshots the lane states
    at construction, so both sources serve the *same* draws from one
    generator set and the blocks compare byte-for-byte.  ``sync()`` —
    the write-back that keeps the device generators canonical — is
    charged to the batched clock.  ``batched_rate`` is ``None`` on
    numpy builds where the vectorized path is unavailable.
    """
    generators = [device_rng(seed, i) for i in range(n_lanes)]
    batched = (
        BatchedPCG64Source(
            generators, n_kinds=4, processes=os.cpu_count() or 1
        )
        if batched_available()
        else None
    )
    fan = FanInSource(generators, n_kinds=4)
    start = time.perf_counter()
    reference = fan.random((chunk, 4, n_lanes))
    fanin_rate = n_lanes * chunk / (time.perf_counter() - start)
    if batched is None:
        return fanin_rate, None, True
    with batched:
        start = time.perf_counter()
        block = batched.random((chunk, 4, n_lanes))
        batched.sync()
        batched_rate = n_lanes * chunk / (time.perf_counter() - start)
    return fanin_rate, batched_rate, bool((block == reference).all())


def _warm_jit(bundle):
    """Trigger one-time ``@njit`` compilation off the clock."""
    _run(_stationary_fleet(bundle, 8), "jit", 1, 32)


def _checkpoint_roundtrip_exact(tmp_path, ticks: int = 6) -> bool:
    """Does resume reproduce an uninterrupted run's telemetry exactly?"""
    split = ticks // 2
    full = MemoryTelemetry()
    FleetController(
        _mixed_fleet(), slices_per_tick=100, telemetry=full
    ).run(ticks)

    parts = MemoryTelemetry()
    controller = FleetController(
        _mixed_fleet(), slices_per_tick=100, telemetry=parts
    )
    controller.run(split)
    path = str(tmp_path / "bench_fleet.ckpt")
    controller.save_checkpoint(path)
    resumed = FleetController.resume(path, telemetry=parts)
    resumed.run(ticks - split)
    return json.dumps(full.records, sort_keys=True) == json.dumps(
        parts.records, sort_keys=True
    )


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_fleet_vector_1024dev(benchmark):
    """Grouped vector stepping, 1024 stationary disks."""
    bundle = disk_drive.build()
    fleet = _stationary_fleet(bundle, N_DEVICES)
    benchmark.pedantic(
        lambda: _run(fleet, "vector", 1, 200), rounds=2, iterations=1
    )
    benchmark.extra_info["n_devices"] = N_DEVICES


def bench_fleet_speedup_1024dev(benchmark):
    """Acceptance: grouped vector >= 10x the per-device loop path."""
    bundle = disk_drive.build()
    loop_seconds, loop_rate, _ = _run(
        _stationary_fleet(bundle, N_DEVICES), "loop", 1, 50
    )
    vector_seconds, vector_rate, _ = benchmark.pedantic(
        lambda: _run(_stationary_fleet(bundle, N_DEVICES), "vector", 1, 500),
        rounds=1,
        iterations=1,
    )
    speedup = vector_rate / loop_rate
    benchmark.extra_info.update(
        loop_device_slices_per_sec=round(loop_rate),
        vector_device_slices_per_sec=round(vector_rate),
        speedup=round(speedup, 2),
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"grouped vector stepping only {speedup:.1f}x faster than the "
        f"per-device loop ({vector_rate:,.0f} vs {loop_rate:,.0f} "
        f"device-slices/s); target {SPEEDUP_TARGET}x"
    )


def bench_fleet_jit_1024dev(benchmark):
    """Acceptance: the jit tier is no slower than the vector tier."""
    import pytest

    if not jit_available():
        pytest.skip("numba not installed; the jit tier has no compiled path")
    bundle = disk_drive.build()
    _warm_jit(bundle)
    vector_seconds, vector_rate, _ = _run(
        _stationary_fleet(bundle, N_DEVICES), "vector", 1, 500
    )
    jit_seconds, jit_rate, _ = benchmark.pedantic(
        lambda: _run(_stationary_fleet(bundle, N_DEVICES), "jit", 1, 500),
        rounds=1,
        iterations=1,
    )
    speedup = jit_rate / vector_rate
    benchmark.extra_info.update(
        vector_device_slices_per_sec=round(vector_rate),
        jit_device_slices_per_sec=round(jit_rate),
        speedup=round(speedup, 2),
    )
    assert speedup >= JIT_SPEEDUP_TARGET, (
        f"jit fleet stepping regressed below the vector tier "
        f"({jit_rate:,.0f} vs {vector_rate:,.0f} device-slices/s)"
    )


def bench_fleet_batched_vs_fanin_100000lane(benchmark):
    """Vectorized batched fan-in vs the serial per-device fan-in.

    Byte-identity of the two blocks is asserted unconditionally; the
    >=5x throughput gate binds only where the pool has cores to fan
    bands across (and the numpy build supports the batched path).
    """
    fanin_rate, batched_rate, identical = benchmark.pedantic(
        lambda: _rng_fan_in_rates(N_LANES_RNG, 8), rounds=1, iterations=1
    )
    assert identical, "batched fan-in block diverged from serial fan-in"
    benchmark.extra_info["fanin_device_slices_per_sec"] = round(fanin_rate)
    if batched_rate is None:
        benchmark.extra_info["batched"] = "unavailable on this numpy build"
        return
    speedup = batched_rate / fanin_rate
    benchmark.extra_info.update(
        batched_device_slices_per_sec=round(batched_rate),
        speedup=round(speedup, 2),
    )
    if (os.cpu_count() or 1) >= BATCHED_GATE_MIN_CORES:
        assert speedup >= BATCHED_SPEEDUP_TARGET, (
            f"batched fan-in only {speedup:.1f}x the serial fan-in "
            f"({batched_rate:,.0f} vs {fanin_rate:,.0f} device-slices/s) "
            f"on a {os.cpu_count()}-core runner; "
            f"target {BATCHED_SPEEDUP_TARGET}x"
        )


def bench_fleet_checkpoint_roundtrip(benchmark, tmp_path):
    """Acceptance: resumed telemetry == uninterrupted telemetry."""
    exact = benchmark.pedantic(
        lambda: _checkpoint_roundtrip_exact(tmp_path), rounds=1, iterations=1
    )
    assert exact, "checkpoint/resume telemetry diverged from the full run"


# ----------------------------------------------------------------------
# standalone JSON mode
# ----------------------------------------------------------------------
def collect(quick: bool = False) -> dict:
    """Run the matrix and return the benchmark JSON document."""
    import pathlib
    import tempfile

    bundle = disk_drive.build()
    with_jit = jit_available()
    if with_jit:
        _warm_jit(bundle)
    # Loop throughput is rate-stable, so it is sampled on a shorter
    # campaign; the batch tiers get fleet-scale ones.
    scenarios = [
        ("loop", 1, 10 if quick else 50),
        ("vector", 1, 100 if quick else 500),
    ]
    if with_jit:
        scenarios.append(("jit", 1, 100 if quick else 500))
    records = []
    by_backend = {}
    for backend, ticks, slices_per_tick in scenarios:
        fleet = _stationary_fleet(bundle, N_DEVICES)
        seconds, rate, _ = _run(fleet, backend, ticks, slices_per_tick)
        by_backend[backend] = rate
        records.append(
            {
                "name": f"{backend}_disk66_{N_DEVICES}dev",
                "backend": backend,
                "n_devices": N_DEVICES,
                "slices_per_device": ticks * slices_per_tick,
                "seconds": round(seconds, 4),
                "device_slices_per_sec": round(rate),
            }
        )
    # Fleet-scale smoke on the preferred batch tier: 10^5 devices in
    # one controller tick (the scale ISSUE headline).  Named without a
    # backend prefix so the no-numba and numba CI legs compare against
    # the same baseline metric.
    smoke_slices = 8 if quick else 16
    smoke_fleet = _stationary_fleet(bundle, N_DEVICES_SMOKE, seed=1)
    seconds, rate, resolved = _run(smoke_fleet, "auto", 1, smoke_slices)
    # Same scale forced through the serial fan-in: together with the
    # auto run (batched when the build supports it) this is the
    # fleet-level half of the fanin-vs-batched comparison.
    fanin_fleet = _stationary_fleet(bundle, N_DEVICES_SMOKE, seed=1)
    _, fanin_fleet_rate, _ = _run(
        fanin_fleet, "auto", 1, smoke_slices, uniform_source="fanin"
    )
    records.append(
        {
            "name": f"batch_disk66_{N_DEVICES_SMOKE}dev",
            "backend": resolved,
            "uniform_source": "auto",
            "n_devices": N_DEVICES_SMOKE,
            "slices_per_device": smoke_slices,
            "seconds": round(seconds, 4),
            "device_slices_per_sec": round(rate),
            "fanin_device_slices_per_sec": round(fanin_fleet_rate),
        }
    )
    # Source-level half: raw uniform-block production at 10^5 lanes,
    # where the batched source's band pool actually engages.
    rng_chunk = 8 if quick else 16
    fanin_rate, batched_rate, rng_identical = _rng_fan_in_rates(
        N_LANES_RNG, rng_chunk
    )
    rng_record = {
        "name": f"rng_fanin_vs_batched_{N_LANES_RNG}lane",
        "n_lanes": N_LANES_RNG,
        "chunk": rng_chunk,
        "n_kinds": 4,
        "processes": os.cpu_count() or 1,
        "fanin_device_slices_per_sec": round(fanin_rate),
    }
    if batched_rate is not None:
        rng_record["batched_device_slices_per_sec"] = round(batched_rate)
    records.append(rng_record)
    speedup = round(by_backend["vector"] / by_backend["loop"], 2)
    with tempfile.TemporaryDirectory() as tmp:
        exact = _checkpoint_roundtrip_exact(
            pathlib.Path(tmp), ticks=4 if quick else 6
        )
    document = {
        "benchmarks": records,
        "speedup_vector_vs_loop": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "jit_available": with_jit,
        "jit_speedup_target": JIT_SPEEDUP_TARGET,
        "batched_available": batched_available(),
        "batched_speedup_target": BATCHED_SPEEDUP_TARGET,
        "batched_gate_active": (
            not quick
            and batched_available()
            and (os.cpu_count() or 1) >= BATCHED_GATE_MIN_CORES
        ),
        "rng_blocks_identical": rng_identical,
        "checkpoint_resume_exact": exact,
    }
    if with_jit:
        document["speedup_jit_vs_vector"] = round(
            by_backend["jit"] / by_backend["vector"], 2
        )
    if batched_rate is not None:
        document["speedup_batched_vs_fanin"] = round(
            batched_rate / fanin_rate, 2
        )
    return document


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    document = collect(quick=quick)
    json.dump(document, sys.stdout, indent=2)
    print()
    if not document["checkpoint_resume_exact"]:
        return 1
    # Byte-identity of the fan-in producers is a correctness contract,
    # so it binds even on the quick smoke.
    if not document["rng_blocks_identical"]:
        return 1
    # Quick mode is a smoke run; the throughput targets are only
    # binding on the full campaign.
    if quick:
        return 0
    if document["speedup_vector_vs_loop"] < SPEEDUP_TARGET:
        return 1
    if (
        "speedup_jit_vs_vector" in document
        and document["speedup_jit_vs_vector"] < JIT_SPEEDUP_TARGET
    ):
        return 1
    if (
        document["batched_gate_active"]
        and document.get("speedup_batched_vs_fanin", 0.0)
        < BATCHED_SPEEDUP_TARGET
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
