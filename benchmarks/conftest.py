"""Shared helpers for the benchmark suite.

Each ``bench_*`` module regenerates one paper table or figure through
the experiment registry, printing the rows/series the paper reports and
asserting the experiment's shape checks.  Timing numbers come from
pytest-benchmark; experiments with simulations run one pedantic round
(they take seconds), while pure-LP experiments let the calibrator run.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, run_experiment


def run_and_verify(experiment_id: str, quick: bool = True, seed: int = 0):
    """Run one experiment, print its report, assert its checks."""
    result: ExperimentResult = run_experiment(experiment_id, quick=quick, seed=seed)
    print()
    print(result.render())
    assert result.all_checks_pass, (
        f"{experiment_id} failed checks: {result.failed_checks}"
    )
    return result


@pytest.fixture()
def experiment_runner():
    """Fixture handing benches the verified experiment runner."""
    return run_and_verify
