"""Benchmark: reproduce Example A.2 (the paper's worked instance).

One constrained LP on the 8-state running example: minimum power under
an average-queue bound of 0.5 and a loss bound of 0.2, checked against
the paper's reported 1.798 W band and randomized-policy structure.
"""

from benchmarks.conftest import run_and_verify


def bench_example_a2_worked_instance(benchmark):
    result = benchmark.pedantic(
        run_and_verify, args=("example_a2",), rounds=5, iterations=1
    )
    benchmark.extra_info["min_power_w"] = result.data["power"]
    benchmark.extra_info["paper_power_w"] = result.data["paper_power"]
