"""Legacy build shim.

The offline target environment lacks the ``wheel`` package, so
``pip install -e .`` must use the legacy ``setup.py develop`` path; all
real metadata lives in ``pyproject.toml`` (PEP 621), which setuptools
reads from here.
"""

from setuptools import setup

setup()
