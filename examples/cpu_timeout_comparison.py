"""SA-1100 CPU: optimal stochastic shutdown versus timeouts (Fig. 9b).

The CPU wakes on interrupts regardless of the power manager, so the
only controllable decision is *whether to shut down when idle* — a
single probability.  The example computes the optimal randomized
policy for a range of performance constraints and simulates a family
of timeout heuristics, showing the paper's point: timeouts waste power
while waiting for the timer to expire.

Run:  python examples/cpu_timeout_comparison.py
"""

from repro import PolicyOptimizer
from repro.policies import TimeoutAgent
from repro.sim import make_rng, simulate
from repro.systems import cpu
from repro.util.tables import format_table


def main() -> None:
    bundle = cpu.build()
    system = bundle.system
    print(
        f"CPU model: tau = {bundle.time_resolution * 1e3:.0f} ms slices, "
        f"active {cpu.ACTIVE_POWER} W, wake burst {cpu.WAKE_POWER} W"
    )

    optimizer = PolicyOptimizer(
        system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        action_mask=bundle.action_mask,
    )

    rows = []
    for bound in (0.01, 0.02, 0.04, 0.08):
        result = optimizer.minimize_power(penalty_bound=bound)
        if not result.feasible:
            continue
        # The single free decision: P(shutdown | active, idle).
        idle_active = system.state_index("active", "idle", 0)
        shutdown = system.chain.command_index("shutdown")
        p_shutdown = result.policy.matrix[idle_active, shutdown]
        rows.append(
            (bound, result.average("penalty"), result.average("power"), p_shutdown)
        )
    print()
    print(
        format_table(
            ["penalty bound", "penalty", "power (W)", "P(shutdown|active,idle)"],
            rows,
            title="optimal stochastic control (solid line of Fig. 9b)",
        )
    )

    rng = make_rng(0)
    rows = []
    for timeout in (0, 2, 5, 15, 40):
        agent = TimeoutAgent(
            timeout,
            bundle.metadata["active_command"],
            bundle.metadata["sleep_command"],
        )
        sim = simulate(
            system,
            bundle.costs,
            agent,
            200_000,
            rng,
            initial_state=("active", "idle", 0),
        )
        rows.append((timeout, sim.averages["penalty"], sim.averages["power"]))
    print()
    print(
        format_table(
            ["timeout (slices)", "penalty", "power (W)"],
            rows,
            title="timeout heuristic (dashed line of Fig. 9b)",
        )
    )
    print()
    print(
        "note how every nonzero timeout burns extra power at equal or "
        "better penalty than some optimal point: the CPU idles at "
        "0.3 W while the timer counts down."
    )


if __name__ == "__main__":
    main()
