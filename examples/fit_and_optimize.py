"""Raw measurements to an optimized fleet: the estimation pipeline.

The paper's case studies start from models Paleologo et al. fitted by
hand from measured traces.  ``repro.estimation`` automates that step;
this walkthrough exercises the whole path:

1. "measure" a system: synthesize a bursty request trace (standing in
   for the real one) and a service-provider transition log with noisy
   power labels (standing in for a bench harness);
2. identify the workload — BIC-selected arrival chain plus
   MMPP(2)/Poisson generator fits — and validate it (chi-square
   goodness-of-fit, split-half stationarity, confidence intervals);
3. fit the SP model from the log and recover the paper's expected
   transition times (Eq. 2);
4. assemble fitted SR x SP into a ready-to-optimize system, solve the
   constrained LP, and compare against the ground-truth system;
5. generate a fleet device-group spec driven by the fitted generator.

The CLI equivalent of steps 2-5 is::

    repro-dpm fit trace.txt --resolution 1.0 \
        --provider-log provider.jsonl \
        --out fitted_system.json --fleet-out fitted_fleet.json

Run:  python examples/fit_and_optimize.py
"""

from repro.core.average_cost import AverageCostOptimizer
from repro.estimation import (
    assemble_system,
    fit_provider,
    fit_workload,
    fleet_spec_from_fit,
    sample_provider_log,
    system_spec_from_fit,
)
from repro.runtime import FleetController, build_fleet
from repro.sim import make_rng
from repro.systems import example_system
from repro.traces import mmpp2_trace

#: Ground truth used only to synthesize the "measurements".
TRUE_P_STAY_IDLE = 0.95
TRUE_P_STAY_BUSY = 0.85


def main() -> None:
    rng = make_rng(42)

    # ------------------------------------------------------------------
    # 1. "Measure" the system.
    # ------------------------------------------------------------------
    trace = mmpp2_trace(
        TRUE_P_STAY_IDLE, TRUE_P_STAY_BUSY, 20_000, 1.0, rng
    )
    provider_log = sample_provider_log(
        example_system.build_provider(), 20_000, rng, power_noise=0.1
    )
    print(
        f"measurements: {trace.n_requests} requests over "
        f"{trace.duration:.0f} s, {len(provider_log)} SP transitions "
        f"with noisy power labels"
    )

    # ------------------------------------------------------------------
    # 2. Identify and validate the workload.
    # ------------------------------------------------------------------
    workload = fit_workload(trace, resolution=1.0, memories=(1, 2, 3))
    print()
    print(workload.summary())
    chain = workload.model.matrix
    print(
        f"\nrecovered stay probabilities: idle {chain[0, 0]:.3f} "
        f"(true {TRUE_P_STAY_IDLE}), busy {chain[1, 1]:.3f} "
        f"(true {TRUE_P_STAY_BUSY})"
    )

    # ------------------------------------------------------------------
    # 3. Fit the provider from its transition log.
    # ------------------------------------------------------------------
    provider_fit = fit_provider(provider_log)
    print()
    print(provider_fit.summary())
    print(provider_fit.transition_time_table())

    # ------------------------------------------------------------------
    # 4. Assemble, optimize, and compare to the ground truth.
    # ------------------------------------------------------------------
    fitted_system, fitted_costs = assemble_system(
        provider_fit.provider, workload, queue_capacity=1
    )
    fitted_result = AverageCostOptimizer(
        fitted_system, fitted_costs
    ).minimize_power(penalty_bound=0.5, loss_bound=0.3)

    true_bundle = example_system.build()
    true_result = AverageCostOptimizer(
        true_bundle.system, true_bundle.costs
    ).minimize_power(penalty_bound=0.5, loss_bound=0.3)
    fitted_power = fitted_result.evaluation.averages["power"]
    true_power = true_result.evaluation.averages["power"]
    print(
        f"optimal power: {fitted_power:.4f} W predicted on the fitted "
        f"system vs {true_power:.4f} W on the ground truth"
    )

    # The deployment question: how good is the *policy* learned from
    # measurements when it runs on the real system?  (The fitted chain
    # has the same two-state shape as the truth, so the policy applies
    # directly.)
    if fitted_system.n_states == true_bundle.system.n_states:
        from repro.core import evaluate_policy

        deployed = evaluate_policy(
            true_bundle.system,
            true_bundle.costs,
            fitted_result.policy,
            gamma=true_bundle.gamma,  # ~1: discounted ≈ long-run average
            initial_distribution=true_bundle.initial_distribution,
        )
        gap = (
            deployed.averages["power"] - true_power
        ) / true_power
        print(
            f"deploying the learned policy on the true system: "
            f"{deployed.averages['power']:.4f} W "
            f"({gap:+.2%} vs the true optimum), penalty "
            f"{deployed.averages['penalty']:.3f} (bound 0.5)"
        )

    # ------------------------------------------------------------------
    # 5. Scenario generation: a fleet driven by the fitted generator.
    # ------------------------------------------------------------------
    inline_spec = system_spec_from_fit(
        "fitted-example",
        provider_fit.provider,
        workload,
        queue_capacity=1,
        constraints={"penalty": 0.5, "loss": 0.3},
    )
    fleet_spec = fleet_spec_from_fit(
        workload,
        inline_spec,
        count=8,
        agent={
            "type": "optimal",
            "formulation": "average",
            "penalty_bound": 0.5,
            "loss_bound": 0.3,
        },
        seed=7,
    )
    fleet, cache = build_fleet(fleet_spec)
    controller = FleetController(fleet, slices_per_tick=500)
    controller.run(4)
    snapshot = controller.snapshot()
    print(
        f"\nfleet campaign: {len(fleet)} devices x "
        f"{snapshot['fleet_slices'] // len(fleet)} slices on the fitted "
        f"workload ({cache.stats.misses} LP solve(s) for the group); "
        f"mean power {snapshot['metrics']['power']['mean']:.3f} W"
    )


if __name__ == "__main__":
    main()
