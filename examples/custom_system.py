"""Modelling a new device from scratch: a wireless network interface.

The paper's framework is not limited to its three case studies — this
example builds a WLAN radio model with the public API alone:

* three power states: ``rx`` (receiving, 1.4 W), ``doze`` (0.045 W,
  wakes in ~2 slices) and ``off`` (0 W, wakes in ~40 slices) — numbers
  loosely shaped on early-2000s 802.11 hardware;
* a bursty packet workload (two-state Markov modulated);
* a four-packet receive queue.

It then explores the power/latency trade-off and prints the optimal
policy for a mid-range constraint.

Run:  python examples/custom_system.py
"""

from repro import (
    CostModel,
    PolicyOptimizer,
    PowerManagedSystem,
    ServiceProvider,
    ServiceQueue,
    ServiceRequester,
    trade_off_curve,
)
from repro.markov.chain import MarkovChain
from repro.util.tables import format_table


def build_radio() -> ServiceProvider:
    """Three-state WLAN radio with geometric wake transitions."""
    states = ["rx", "doze", "off"]
    commands = ["listen", "doze", "power_off"]
    # Per-command transition matrices: move toward the commanded state;
    # wakes are geometric (doze ~2 slices, off ~40 slices).
    transitions = {
        "listen": [
            [1.0, 0.0, 0.0],
            [0.5, 0.5, 0.0],
            [0.025, 0.0, 0.975],
        ],
        "doze": [
            [0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.025, 0.0, 0.975],  # waking from off continues regardless
        ],
        "power_off": [
            [0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0],
        ],
    }
    service_rates = {
        "rx": {"listen": 0.9, "doze": 0.0, "power_off": 0.0},
        "doze": {"listen": 0.0, "doze": 0.0, "power_off": 0.0},
        "off": {"listen": 0.0, "doze": 0.0, "power_off": 0.0},
    }
    power = {
        "rx": {"listen": 1.4, "doze": 1.0, "power_off": 0.5},
        "doze": {"listen": 1.2, "doze": 0.045, "power_off": 0.1},
        "off": {"listen": 1.2, "doze": 0.0, "power_off": 0.0},
    }
    return ServiceProvider.from_tables(
        states=states,
        commands=commands,
        transitions=transitions,
        service_rates=service_rates,
        power=power,
    )


def main() -> None:
    radio = build_radio()
    packets = ServiceRequester(
        MarkovChain([[0.97, 0.03], [0.20, 0.80]], ["quiet", "burst"]),
        arrivals={"quiet": 0, "burst": 1},
    )
    system = PowerManagedSystem(radio, packets, ServiceQueue(4))
    costs = CostModel.standard(system)
    print(
        f"WLAN model: {system.n_states} joint states "
        f"({radio.n_states} radio x {packets.n_states} traffic x 5 queue)"
    )

    optimizer = PolicyOptimizer(
        system,
        costs,
        gamma=1.0 - 1e-4,  # ~10 s horizon at 1 ms slices
        initial_distribution=system.point_distribution("rx", "quiet", 0),
    )

    curve = trade_off_curve(optimizer, [0.2, 0.5, 1.0, 1.5, 2.0, 3.0])
    rows = [
        (p.bound, p.objective, p.averages["loss"])
        for p in curve.feasible_points
    ]
    print()
    print(
        format_table(
            ["queue bound", "min power (W)", "loss prob"],
            rows,
            title="power vs queueing-latency trade-off (always-rx burns 1.4 W)",
        )
    )

    result = optimizer.minimize_power(penalty_bound=1.0, loss_bound=0.02)
    result.require_feasible()
    print()
    policy = result.policy
    interesting = [
        system.state_index("rx", "quiet", 0),
        system.state_index("rx", "burst", 0),
        system.state_index("doze", "burst", 1),
        system.state_index("off", "burst", 4),
    ]
    rows = [
        tuple([str(system.state(i))] + [f"{policy.matrix[i, a]:.3f}" for a in range(3)])
        for i in interesting
    ]
    print(
        format_table(
            ["state", "P(listen)", "P(doze)", "P(power_off)"],
            rows,
            title=(
                f"optimal policy highlights at power "
                f"{result.average('power'):.3f} W (queue <= 1, loss <= 2%)"
            ),
        )
    )


if __name__ == "__main__":
    main()
