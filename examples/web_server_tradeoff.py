"""Dual-processor web server: the paper's Section VI-B scenario.

Two non-identical processors serve a bursty request stream: P2 delivers
1.5x the throughput of P1 at 2x the power.  The power manager can turn
each processor on or off independently.  This example sweeps the
minimum-throughput requirement, prints the power trade-off (paper
Fig. 9a), and reproduces the paper's analysis finding that the fast,
power-hungry processor is never worth running alone.

Run:  python examples/web_server_tradeoff.py
"""

from repro import PolicyOptimizer
from repro.systems import web_server
from repro.util.tables import format_table


def main() -> None:
    bundle = web_server.build()
    system = bundle.system
    print(
        "web-server model: SP states = "
        + ", ".join(
            f"{name} ({web_server.THROUGHPUT[name]:.1f} thr)"
            for name in system.provider.state_names
        )
    )

    optimizer = PolicyOptimizer(
        system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
    )

    p2 = system.provider.chain.state_index("p2")
    sp_of = system.provider_index_of_state

    rows = []
    for bound in (0.02, 0.06, 0.10, 0.14, 0.18, 0.22):
        result = optimizer.optimize(
            "power", "min", lower_bounds={"throughput": bound}
        )
        if not result.feasible:
            rows.append((bound, float("nan"), float("nan"), "-"))
            continue
        occupancy = result.evaluation.frequencies.sum(axis=1)
        p2_share = float(occupancy[sp_of == p2].sum() * (1.0 - bundle.gamma))
        rows.append(
            (
                bound,
                result.average("power"),
                result.average("throughput"),
                f"{p2_share:.2e}",
            )
        )

    print()
    print(
        format_table(
            ["min throughput", "power (W)", "delivered", "time in P2-only"],
            rows,
            title=(
                "Fig. 9(a) trade-off — the P2-only column shows the paper's "
                "finding: the fast processor never runs alone"
            ),
        )
    )
    print()
    print(
        "why: P2 costs 2x P1's power for only 1.5x its throughput, so any "
        "demand worth 0.6 of capacity is served cheaper by P1 + bursts of "
        "both."
    )


if __name__ == "__main__":
    main()
