"""Quickstart: reproduce the paper's worked Example A.2.

Builds the running example of the paper (a two-state provider, a bursty
two-state workload, a one-slot queue), solves the constrained policy
optimization — minimum power subject to an average queue length of at
most 0.5 and a request-loss probability of at most 0.2 — and prints the
optimal randomized policy alongside the paper's reported numbers.

Run:  python examples/quickstart.py
"""

from repro import PolicyOptimizer
from repro.systems import example_system
from repro.util.tables import format_table


def main() -> None:
    bundle = example_system.build()
    system = bundle.system
    print(
        f"composed system: {system.n_states} joint states "
        f"(SP x SR x queue), commands = {system.command_names}"
    )

    optimizer = PolicyOptimizer(
        system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
    )
    result = optimizer.minimize_power(
        penalty_bound=example_system.PAPER_PENALTY_BOUND_A2,
        loss_bound=example_system.PAPER_LOSS_BOUND_A2,
    ).require_feasible()

    print()
    print(
        format_table(
            ["metric", "optimal", "paper reports"],
            [
                ("expected power (W)", result.average("power"),
                 example_system.PAPER_MINIMUM_POWER_A2),
                ("avg queue length", result.average("penalty"), 0.5),
                ("request-loss prob", result.average("loss"), 0.2),
            ],
            title="Example A.2 — minimum power under performance constraints",
        )
    )

    print()
    policy = result.policy
    rows = [
        (str(state), policy.matrix[i, 0], policy.matrix[i, 1])
        for i, state in enumerate(system.states)
    ]
    print(
        format_table(
            ["state (sp,sr,queue)", "P(s_on)", "P(s_off)"],
            rows,
            title="optimal randomized Markov stationary policy (paper Eq. 16)",
        )
    )
    kind = "randomized" if not policy.is_deterministic else "deterministic"
    print()
    print(
        f"the optimal policy is {kind} — with both constraints active, "
        f"Theorem A.2 says it must be; always-on would burn 3.0 W."
    )


if __name__ == "__main__":
    main()
