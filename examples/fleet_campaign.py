"""An online fleet campaign: one controller, hundreds of devices.

The paper optimizes a single device offline; this walkthrough runs the
:mod:`repro.runtime` subsystem the repo grew toward a production
setting — a long-lived controller stepping a heterogeneous fleet:

* 256 disk drives under the *optimal* constrained policy — solved
  **once** through the content-addressed :class:`PolicyCache` and
  stepped as a single vectorized batch (one group, one compiled
  kernel, 256 lanes);
* 4 disks under a classic timeout heuristic (stateful, so each runs on
  the per-device reference loop);
* 4 example devices fed by a bursty synthetic *workload stream*
  instead of their Markov SR model (the fleet rendition of the paper's
  trace-driven mode).

Halfway through the campaign the fleet is checkpointed — RNG streams,
agent state, stream cursors and all — then resumed, and the final
telemetry is shown to be identical to an uninterrupted run's: fleets
are bitwise reproducible from per-device seeds, however they are
grouped, stopped or restarted.

Run:  python examples/fleet_campaign.py
"""

import json
import tempfile
from pathlib import Path

from repro.core.average_cost import AverageCostOptimizer
from repro.policies import StationaryPolicyAgent, TimeoutAgent
from repro.runtime import (
    Fleet,
    FleetController,
    MemoryTelemetry,
    MMPP2Stream,
    PolicyCache,
    device_rng,
)
from repro.systems import disk_drive, example_system
from repro.util.tables import format_table

N_OPTIMAL_DISKS = 256
N_TIMEOUT_DISKS = 4
N_STREAM_DEVICES = 4
SLICES_PER_TICK = 400
TICKS = 10
PENALTY_BOUND = 0.5


def build_fleet() -> tuple[Fleet, PolicyCache]:
    fleet = Fleet()
    cache = PolicyCache()

    # --- 256 optimally-managed disks: one LP solve, 255 cache hits ----
    disk = disk_drive.build()
    optimizer = AverageCostOptimizer(disk.system, disk.costs)
    for i in range(N_OPTIMAL_DISKS):
        result = cache.optimize(
            optimizer, "power", upper_bounds={"penalty": PENALTY_BOUND}
        )
        fleet.add_device(
            f"disk-opt-{i:03d}",
            disk.system,
            disk.costs,
            StationaryPolicyAgent(disk.system, result.policy),
            rng=device_rng(seed=0, index=i),
            initial_state=("active", "0", 0),
        )

    # --- a few timeout-managed disks (stateful -> per-device loop) ----
    active = disk.system.chain.command_index("go_active")
    standby = disk.system.chain.command_index("go_standby")
    for i in range(N_TIMEOUT_DISKS):
        fleet.add_device(
            f"disk-timeout-{i:03d}",
            disk.system,
            disk.costs,
            TimeoutAgent(200, active, standby),
            rng=device_rng(seed=1, index=i),
            initial_state=("active", "0", 0),
        )

    # --- stream-driven edge devices (exogenous bursty workload) -------
    edge = example_system.build()
    for i in range(N_STREAM_DEVICES):
        rng = device_rng(seed=2, index=i)
        fleet.add_device(
            f"edge-{i:03d}",
            edge.system,
            edge.costs,
            TimeoutAgent(3, 0, 1),
            rng=rng,
            stream=MMPP2Stream(0.95, 0.85, rng),
        )
    return fleet, cache


def main() -> None:
    fleet, cache = build_fleet()
    print(
        f"fleet: {len(fleet)} devices; policy cache solved "
        f"{cache.stats.misses} LP(s) and answered {cache.stats.hits} "
        f"device(s) from cache"
    )

    # ------------------------------------------------------------------
    # Campaign A: uninterrupted.
    # ------------------------------------------------------------------
    telemetry_a = MemoryTelemetry()
    controller = FleetController(
        fleet,
        slices_per_tick=SLICES_PER_TICK,
        telemetry=telemetry_a,
        telemetry_every=2,
    )
    grouping = controller.grouping()
    print(
        f"grouping: {len(grouping['vector_groups'])} vector group(s) "
        f"({sum(g['devices'] for g in grouping['vector_groups'])} devices "
        f"batched), {grouping['loop_devices']} on the per-device loop"
    )
    controller.run(TICKS)
    final = controller.snapshot()

    rows = [
        (name, stats["mean"], stats["min"], stats["max"])
        for name, stats in sorted(final["metrics"].items())
    ]
    print()
    print(
        format_table(
            ["metric", "fleet_mean", "min", "max"],
            rows,
            title=f"fleet metrics after {TICKS} ticks "
            f"({final['fleet_slices']} device-slices)",
        )
    )

    # ------------------------------------------------------------------
    # Campaign B: checkpointed halfway, resumed, compared.
    # ------------------------------------------------------------------
    fleet_b, _ = build_fleet()
    telemetry_b = MemoryTelemetry()
    controller_b = FleetController(
        fleet_b,
        slices_per_tick=SLICES_PER_TICK,
        telemetry=telemetry_b,
        telemetry_every=2,
    )
    controller_b.run(TICKS // 2)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.ckpt"
        controller_b.save_checkpoint(path)
        print(
            f"\ncheckpointed at tick {controller_b.tick} "
            f"({path.stat().st_size} bytes), resuming..."
        )
        resumed = FleetController.resume(path, telemetry=telemetry_b)
    resumed.run(TICKS - TICKS // 2)

    identical = json.dumps(telemetry_a.records, sort_keys=True) == json.dumps(
        telemetry_b.records, sort_keys=True
    )
    print(
        f"resumed campaign telemetry identical to uninterrupted run: "
        f"{identical}"
    )
    assert identical


if __name__ == "__main__":
    main()
