"""Disk-drive power management: the paper's Section VI-A scenario.

Builds the IBM Travelstar model (Table I: five operational conditions,
wake delays from 1 ms to 6 s), sweeps the power-performance trade-off
curve, and pits the optimal policies against the classic heuristics —
eager shutdown into each sleep state and fixed timeouts — exactly the
comparison of paper Fig. 8(b).

Run:  python examples/disk_drive_pareto.py
"""

import numpy as np

from repro import PolicyOptimizer, evaluate_policy, trade_off_curve
from repro.core.pareto import simulate_curve
from repro.policies import TimeoutAgent, eager_markov_policy
from repro.sim import simulate_many
from repro.systems import disk_drive
from repro.util.tables import format_table


def main() -> None:
    bundle = disk_drive.build()
    system, costs = bundle.system, bundle.costs
    print(
        f"disk model: {system.provider.n_states} SP states "
        f"({len(system.provider.sleep_states)} unable to serve), "
        f"{system.n_states} joint states, commands = {system.command_names}"
    )

    optimizer = PolicyOptimizer(
        system,
        costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
    )

    # ------------------------------------------------------------------
    # The optimal trade-off curve (paper Fig. 8b, continuous line).
    # ------------------------------------------------------------------
    bounds = list(np.geomspace(0.005, 1.5, 6))
    curve = trade_off_curve(optimizer, bounds)
    rows = [
        (p.bound, p.objective, p.averages["penalty"], p.averages["loss"])
        for p in curve.feasible_points
    ]
    print()
    print(
        format_table(
            ["penalty bound", "min power (W)", "avg queue", "loss prob"],
            rows,
            title="optimal power-performance trade-off (always-on burns 2.5 W)",
        )
    )

    # ------------------------------------------------------------------
    # Heuristics: eager per sleep state (exact) and timeouts (simulated).
    # ------------------------------------------------------------------
    active = bundle.metadata["active_command"]
    sleeps = bundle.metadata["sleep_commands"]
    rows = []
    for state, command in sleeps.items():
        policy = eager_markov_policy(system, active, command)
        ev = evaluate_policy(
            system, costs, policy, bundle.gamma, bundle.initial_distribution
        )
        rows.append(
            (f"eager->{state}", ev.averages["penalty"], ev.averages["power"])
        )

    timeout_settings = [(50, "lpidle"), (500, "standby"), (3000, "sleep")]
    timeout_sims = simulate_many(
        system,
        costs,
        [
            TimeoutAgent(timeout, active, sleeps[state])
            for timeout, state in timeout_settings
        ],
        150_000,
        0,
        initial_state=("active", "0", 0),
    )
    for (timeout, state), sims in zip(timeout_settings, timeout_sims):
        rows.append(
            (f"timeout({timeout})->{state}", sims[0].averages["penalty"],
             sims[0].averages["power"])
        )
    print()
    print(
        format_table(
            ["heuristic policy", "avg queue", "power (W)"],
            rows,
            title="heuristic baselines (triangles of Fig. 8b)",
        )
    )

    # Verify the optimal policies by simulation ('circles on the curve'):
    # one vectorized batch simulates every feasible point at once.  Note
    # that loosely-constrained randomized policies mix very slowly (deep
    # sleep periods of thousands of slices), so a single finite
    # trajectory carries real Monte-Carlo error at the loose end.
    circle_sims = simulate_curve(
        curve, system, costs, 150_000, 1, initial_state=("active", "0", 0)
    )
    print()
    for point, sims in zip(curve.points, circle_sims):
        if sims is None:
            continue
        print(
            f"verification: optimal policy at bound {point.bound:.4f} — "
            f"analytic power {point.objective:.4f} W, "
            f"simulated {sims[0].averages['power']:.4f} W"
        )


if __name__ == "__main__":
    main()
