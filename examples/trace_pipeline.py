"""The full tool pipeline of paper Fig. 7, end to end.

Starting from a *time-stamped request trace* (synthesized here — the
paper used Auspex file-system measurements), the pipeline

1. discretizes the trace and extracts a k-memory Markov workload model
   (the "SR extractor");
2. composes the joint controlled Markov chain with the disk-drive SP;
3. solves the constrained LP and extracts the optimal policy;
4. verifies the policy twice: against the Markov model (consistency)
   and against the raw trace (model quality) — the two simulation modes
   of Section V.

Run:  python examples/trace_pipeline.py
"""

from repro.sim import make_rng
from repro.systems import disk_drive
from repro.tool.pipeline import run_pipeline
from repro.tool.spec import SystemSpec
from repro.traces import mmpp2_trace


def main() -> None:
    rng = make_rng(7)

    # A bursty synthetic request trace standing in for the measured one:
    # mean idle period 1 s, mean burst 20 ms, at 1 ms resolution.
    trace = mmpp2_trace(
        p_stay_idle=0.999,
        p_stay_busy=0.95,
        n_slices=200_000,
        resolution=disk_drive.TIME_RESOLUTION,
        rng=rng,
    )
    print(
        f"trace: {trace.n_requests} requests over {trace.duration:.0f} s, "
        f"burstiness (CoV of interarrivals) = {trace.burstiness():.2f}"
    )

    spec = SystemSpec(
        name="travelstar-from-trace",
        provider=disk_drive.build_provider(),
        requester=None,  # to be extracted from the trace
        queue_capacity=2,
        gamma=1.0 - 1e-6,  # the paper's 1e6-slice disk horizon
        time_resolution=disk_drive.TIME_RESOLUTION,
        initial_state=("active", "0", 0),
        objective="power",
        constraints={"penalty": 0.5, "loss": 0.05},
    )

    report = run_pipeline(
        spec,
        trace=trace,
        memory=2,
        rng=rng,
        verify_slices=100_000,
    )

    model = report.sr_model
    print(
        f"extracted SR model: memory {model.memory}, {model.n_states} states, "
        f"{model.n_observations} transitions observed"
    )
    print()
    print(report.summary())
    print()
    print(
        "reading the table: 'analytic' is the LP's prediction, 'markov-sim'\n"
        "replays the fitted model (consistency check), 'trace-sim' replays\n"
        "the original trace (model-quality check). Close agreement in the\n"
        "last column means the Markov workload assumption holds — compare\n"
        "paper Fig. 8(b), where the simulated circles sit on the curve."
    )


if __name__ == "__main__":
    main()
