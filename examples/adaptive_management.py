"""Adaptive power management on a nonstationary workload.

The paper ends with a future-work item: "adaptive algorithms that can
compute optimal policies in systems where workloads are highly
nonstationary".  This example runs that algorithm on the Fig. 10
scenario: a CPU workload that switches from an editing-like sparse
regime to a compile-like burst halfway through.

Three managers compete on the same trace:

* the *static* optimal policy, computed once against a stationary model
  fitted to the whole trace (the paper's Fig. 10 setup);
* a fixed *timeout* heuristic;
* the *adaptive* manager: a sliding window re-extracts the workload
  model and re-solves the average-cost LP every second of simulated
  time, switching policies on the fly.

The punchline is constraint enforcement: only the adaptive manager
keeps the sleep-while-busy probability below its bound in *both*
regimes.

Run:  python examples/adaptive_management.py
"""

from repro.core.optimizer import PolicyOptimizer
from repro.experiments.fig10_nonstationary import build_nonstationary_trace
from repro.policies import AdaptivePolicyAgent, StationaryPolicyAgent, TimeoutAgent
from repro.sim import make_rng
from repro.sim.trace_sim import simulate_trace
from repro.systems import cpu
from repro.systems.cpu import build_provider, reactive_wake_mask
from repro.util.tables import format_table

PENALTY_BOUND = 0.01
N_SLICES = 60_000


def main() -> None:
    rng = make_rng(0)
    trace = build_nonstationary_trace(N_SLICES, rng)
    counts = trace.discretize(cpu.TIME_RESOLUTION)
    half = counts.size // 2
    print(
        f"nonstationary trace: first half carries "
        f"{counts[:half].mean():.3f} requests/slice, second half "
        f"{counts[half:].mean():.3f}"
    )

    bundle = cpu.build_from_trace(trace)
    model = bundle.metadata["sr_model"]
    sleep_idx = bundle.metadata["sleep_state_index"]

    def penalty_fn(s, q, z):
        return 1.0 if (s == sleep_idx and z > 0) else 0.0

    def replay(agent, segment):
        return simulate_trace(
            bundle.system,
            agent,
            segment,
            make_rng(1),
            tracker=model.tracker(),
            penalty_fn=penalty_fn,
            initial_provider_state="active",
        )

    managers = {}

    optimizer = PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        action_mask=bundle.action_mask,
    )
    static = optimizer.minimize_power(penalty_bound=PENALTY_BOUND).require_feasible()
    managers["static optimal"] = lambda: StationaryPolicyAgent(
        bundle.system, static.policy
    )
    managers["timeout(10)"] = lambda: TimeoutAgent(
        10, bundle.metadata["active_command"], bundle.metadata["sleep_command"]
    )
    managers["adaptive"] = lambda: AdaptivePolicyAgent(
        provider=build_provider(),
        queue_capacity=0,
        optimize=lambda o: o.minimize_power(penalty_bound=PENALTY_BOUND),
        window=4000,
        refit_every=1000,
        fallback_command=bundle.metadata["active_command"],
        build_costs=cpu.standard_costs,
        action_mask_builder=reactive_wake_mask,
    )

    rows = []
    for name, factory in managers.items():
        full = replay(factory(), counts)
        sparse = replay(factory(), counts[:half])
        dense = replay(factory(), counts[half:])
        rows.append(
            (
                name,
                full.mean_power,
                sparse.mean_penalty,
                dense.mean_penalty,
                "yes"
                if max(sparse.mean_penalty, dense.mean_penalty)
                <= 1.15 * PENALTY_BOUND
                else "NO",
            )
        )

    print()
    print(
        format_table(
            [
                "manager",
                "power (W)",
                "penalty: editing regime",
                "penalty: compile regime",
                f"bound {PENALTY_BOUND} held?",
            ],
            rows,
            title="regime-switching workload — who keeps the promise?",
        )
    )
    print()
    print(
        "the static policy optimizes against the blended model, so it "
        "overspends its penalty budget in the sparse regime; the adaptive "
        "manager refits every second and enforces the bound everywhere."
    )


if __name__ == "__main__":
    main()
