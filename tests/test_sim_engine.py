"""Tests for the Markov-driven simulation engine."""

import pytest

from repro.core.costs import PENALTY, POWER
from repro.core.policy import MarkovPolicy, evaluate_policy
from repro.policies import ConstantAgent, StationaryPolicyAgent
from repro.sim import make_rng, simulate, simulate_sessions
from repro.util.validation import ValidationError


class TestBasicRuns:
    def test_slice_accounting(self, example_bundle, rng):
        agent = ConstantAgent(0)
        result = simulate(example_bundle.system, example_bundle.costs, agent, 500, rng)
        assert result.n_slices == 500
        assert result.command_counts.sum() == 500
        assert result.provider_occupancy.sum() == 500

    def test_always_on_power_exact(self, example_bundle, rng):
        # Holding s_on from (on, ., .) keeps the SP on at 3 W every slice.
        agent = ConstantAgent(0)
        result = simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            2000,
            rng,
            initial_state=("on", "0", 0),
        )
        assert result.averages[POWER] == pytest.approx(3.0)
        assert result.provider_occupancy[0] == 2000

    def test_counters_consistent(self, example_bundle, rng):
        agent = ConstantAgent(0)
        result = simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            5000,
            rng,
            initial_state=("on", "0", 0),
        )
        # Requests cannot be serviced or lost more than arrived (+ final queue).
        assert result.serviced + result.lost <= result.arrivals
        capacity = example_bundle.system.queue.capacity
        assert (
            result.arrivals - result.serviced - result.lost <= capacity
        )

    def test_invalid_agent_command_rejected(self, example_bundle, rng):
        agent = ConstantAgent(7)
        with pytest.raises(ValidationError, match="command"):
            simulate(example_bundle.system, example_bundle.costs, agent, 10, rng)

    def test_zero_slices_rejected(self, example_bundle, rng):
        with pytest.raises(ValidationError):
            simulate(example_bundle.system, example_bundle.costs, ConstantAgent(0), 0, rng)

    def test_reproducible_with_seed(self, example_bundle):
        agent = ConstantAgent(0)
        a = simulate(
            example_bundle.system, example_bundle.costs, agent, 2000, make_rng(9)
        )
        b = simulate(
            example_bundle.system, example_bundle.costs, agent, 2000, make_rng(9)
        )
        assert a.averages == b.averages
        assert a.final_state == b.final_state

    def test_different_seeds_differ(self, example_bundle):
        agent = ConstantAgent(0)
        a = simulate(
            example_bundle.system, example_bundle.costs, agent, 2000, make_rng(1)
        )
        b = simulate(
            example_bundle.system, example_bundle.costs, agent, 2000, make_rng(2)
        )
        assert a.averages[PENALTY] != b.averages[PENALTY]


class TestAgreementWithAnalytic:
    """The paper's 'circles on the curve': simulated averages converge
    to the closed-form policy evaluation."""

    def test_always_on(self, example_bundle, rng):
        policy = MarkovPolicy.constant(0, 8, 2, ("s_on", "s_off"))
        analytic = evaluate_policy(
            example_bundle.system,
            example_bundle.costs,
            policy,
            example_bundle.gamma,
            example_bundle.initial_distribution,
        )
        agent = StationaryPolicyAgent(example_bundle.system, policy)
        sim = simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            120_000,
            rng,
            initial_state=("on", "0", 0),
        )
        for metric in (POWER, PENALTY):
            assert sim.averages[metric] == pytest.approx(
                analytic.averages[metric], rel=0.05, abs=0.02
            )

    def test_randomized_optimal_policy(self, example_bundle, example_optimizer, rng):
        result = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        result.require_feasible()
        agent = StationaryPolicyAgent(example_bundle.system, result.policy)
        sim = simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            150_000,
            rng,
            initial_state=("on", "0", 0),
        )
        assert sim.averages[POWER] == pytest.approx(
            result.average(POWER), rel=0.06, abs=0.03
        )
        assert sim.averages[PENALTY] == pytest.approx(
            result.average(PENALTY), rel=0.10, abs=0.04
        )

    def test_overflow_metric_matches_physical_losses(self, example_bundle, rng):
        """The expected-overflow metric accumulated from matrices must
        track the engine's physical lost-request counter."""
        policy = MarkovPolicy.constant(1, 8, 2, ("s_on", "s_off"))  # always off
        agent = StationaryPolicyAgent(example_bundle.system, policy)
        sim = simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            80_000,
            rng,
            initial_state=("on", "0", 0),
        )
        physical_rate = sim.lost / sim.n_slices
        assert sim.averages["overflow"] == pytest.approx(
            physical_rate, rel=0.08, abs=0.01
        )

    def test_loss_indicator_matches_event_count(self, example_bundle, rng):
        policy = MarkovPolicy.constant(1, 8, 2, ("s_on", "s_off"))
        agent = StationaryPolicyAgent(example_bundle.system, policy)
        sim = simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            50_000,
            rng,
            initial_state=("on", "0", 0),
        )
        assert sim.averages["loss"] == pytest.approx(
            sim.loss_event_slices / sim.n_slices, abs=1e-12
        )


class TestSessions:
    def test_session_totals_estimate_discounted_totals(self, example_bundle):
        gamma = 0.99
        policy = MarkovPolicy.constant(0, 8, 2, ("s_on", "s_off"))
        analytic = evaluate_policy(
            example_bundle.system,
            example_bundle.costs,
            policy,
            gamma,
            example_bundle.initial_distribution,
        )
        agent = StationaryPolicyAgent(example_bundle.system, policy)
        stats = simulate_sessions(
            example_bundle.system,
            example_bundle.costs,
            agent,
            gamma,
            400,
            make_rng(11),
            initial_state=("on", "0", 0),
        )
        assert stats[POWER].agrees_with(analytic.totals[POWER], confidence=0.999)

    def test_session_length_cap(self, example_bundle, rng):
        agent = ConstantAgent(0)
        stats = simulate_sessions(
            example_bundle.system,
            example_bundle.costs,
            agent,
            0.999,
            20,
            rng,
            max_session_slices=50,
        )
        # Power per slice is at most 4 W; capped sessions bound totals.
        assert stats[POWER].mean <= 4.0 * 50

    def test_rejects_bad_gamma(self, example_bundle, rng):
        with pytest.raises(ValidationError):
            simulate_sessions(
                example_bundle.system,
                example_bundle.costs,
                ConstantAgent(0),
                1.0,
                5,
                rng,
            )
