"""Tests for the trace container and discretization (paper Example 5.1)."""

import numpy as np
import pytest

from repro.traces import Trace, binarize, discretize_timestamps
from repro.util.validation import ValidationError

#: Paper Example 5.1: arrival times in ms, tau = 1 ms.
EXAMPLE_51_TIMES = [2, 5, 6, 7, 12]
EXAMPLE_51_STREAM = [0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1]


class TestDiscretize:
    def test_paper_example_51(self):
        counts = discretize_timestamps(EXAMPLE_51_TIMES, 1.0, duration=13)
        assert counts.tolist() == EXAMPLE_51_STREAM

    def test_multiple_requests_per_slice(self):
        counts = discretize_timestamps([0.1, 0.2, 0.9, 1.5], 1.0, duration=2)
        assert counts.tolist() == [3, 1]

    def test_empty_trace(self):
        assert discretize_timestamps([], 1.0, duration=0).size == 0
        assert discretize_timestamps([], 1.0, duration=3).tolist() == [0, 0, 0]

    def test_boundary_timestamp_gets_a_slice(self):
        counts = discretize_timestamps([2.0], 1.0)
        assert counts.tolist() == [0, 0, 1]

    def test_rejects_negative_resolution(self):
        with pytest.raises(ValidationError):
            discretize_timestamps([1.0], -1.0)

    def test_rejects_negative_timestamps(self):
        with pytest.raises(ValidationError):
            discretize_timestamps([-1.0], 1.0)

    def test_binarize(self):
        assert binarize([0, 2, 1, 0]).tolist() == [0, 1, 1, 0]

    def test_binarize_rejects_negative(self):
        with pytest.raises(ValidationError):
            binarize([-1])


class TestTrace:
    def test_paper_example_via_trace(self):
        trace = Trace(EXAMPLE_51_TIMES, duration=13)
        assert trace.n_requests == 5
        assert trace.discretize(1.0).tolist() == EXAMPLE_51_STREAM

    def test_sorting(self):
        trace = Trace([5.0, 1.0, 3.0])
        assert trace.timestamps.tolist() == [1.0, 3.0, 5.0]

    def test_duration_default(self):
        assert Trace([1.0, 4.0]).duration == 4.0

    def test_duration_check(self):
        with pytest.raises(ValidationError, match="duration"):
            Trace([5.0], duration=3.0)

    def test_mean_rate(self):
        trace = Trace([1, 2, 3, 4], duration=8)
        assert trace.mean_rate() == pytest.approx(0.5)

    def test_interarrival_and_burstiness(self):
        poissonish = Trace(np.cumsum(np.ones(100)), duration=101)
        assert poissonish.burstiness() == pytest.approx(0.0, abs=1e-12)
        bursty = Trace([1, 1.1, 1.2, 50, 50.1, 50.2], duration=60)
        assert bursty.burstiness() > 1.0

    def test_shifted(self):
        trace = Trace([1.0, 2.0], duration=3.0)
        moved = trace.shifted(2.0)
        assert moved.timestamps.tolist() == [3.0, 4.0]
        assert moved.duration == 5.0

    def test_shift_negative_guard(self):
        with pytest.raises(ValidationError):
            Trace([0.5]).shifted(-1.0)

    def test_concatenated(self):
        first = Trace([1.0], duration=2.0)
        second = Trace([0.5], duration=1.0)
        merged = first.concatenated(second)
        assert merged.timestamps.tolist() == [1.0, 2.5]
        assert merged.duration == 3.0

    def test_concatenate_type_check(self):
        with pytest.raises(ValidationError):
            Trace([1.0]).concatenated([2.0])

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace([0.5, 1.25, 7.75], duration=10.0)
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.timestamps.tolist() == trace.timestamps.tolist()
        assert loaded.duration == trace.duration

    def test_len(self):
        assert len(Trace([1, 2, 3])) == 3


class TestDiscretizeEdgeCases:
    """Boundary behaviour the estimation layer now leans on."""

    def test_empty_trace_object(self):
        trace = Trace([])
        assert trace.n_requests == 0
        assert trace.duration == 0.0
        assert trace.mean_rate() == 0.0
        assert trace.burstiness() == 0.0
        assert trace.discretize(0.5).size == 0

    def test_empty_trace_with_duration(self):
        assert Trace([], duration=2.0).discretize(0.5).tolist() == [0] * 4

    def test_empty_trace_save_load(self, tmp_path):
        path = tmp_path / "empty.txt"
        Trace([], duration=3.0).save(path)
        loaded = Trace.load(path)
        assert loaded.n_requests == 0
        assert loaded.duration == 3.0

    def test_timestamp_exactly_on_slice_boundary(self):
        # A request at exactly i * tau lands in slice i, not i - 1.
        counts = discretize_timestamps([0.0, 1.0, 2.0], 1.0, duration=3)
        assert counts.tolist() == [1, 1, 1]

    def test_timestamp_at_window_end_gets_extra_slice(self):
        # duration = 2.0 gives ceil(2/1) = 2 slices, but a request at
        # t = 2.0 belongs to slice 2 — the window must grow, not drop it.
        counts = discretize_timestamps([2.0], 1.0, duration=2.0)
        assert counts.tolist() == [0, 0, 1]
        assert int(counts.sum()) == 1

    def test_duration_not_a_slice_multiple(self):
        # 2.5 s at tau = 1 s -> ceil = 3 slices; nothing is truncated.
        counts = discretize_timestamps([0.4, 2.4], 1.0, duration=2.5)
        assert counts.tolist() == [1, 0, 1]

    def test_just_below_boundary_stays_in_lower_slice(self):
        counts = discretize_timestamps([0.999999, 1.0], 1.0, duration=2)
        assert counts.tolist() == [1, 1]

    def test_total_requests_conserved(self):
        stamps = np.linspace(0.0, 9.99, 173)
        counts = discretize_timestamps(stamps, 0.37, duration=10.0)
        assert int(counts.sum()) == stamps.size

    def test_zero_duration_with_request_at_zero(self):
        counts = discretize_timestamps([0.0], 1.0, duration=0.0)
        assert counts.tolist() == [1]

    def test_rejects_negative_duration(self):
        with pytest.raises(ValidationError):
            discretize_timestamps([], 1.0, duration=-1.0)

    def test_rejects_non_finite_timestamps(self):
        with pytest.raises(ValidationError):
            discretize_timestamps([float("nan")], 1.0)
        with pytest.raises(ValidationError):
            discretize_timestamps([float("inf")], 1.0)

    def test_binarize_rejects_2d(self):
        with pytest.raises(ValidationError):
            binarize([[1, 0], [0, 1]])
