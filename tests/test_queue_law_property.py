"""Property-based tests of the queue law (paper Eq. 3).

The queue update must conserve probability and requests for *every*
(capacity, length, service rate, arrivals) combination — hypothesis
sweeps the space.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import ServiceQueue
from tests.conftest import assert_stochastic

capacities = st.integers(min_value=0, max_value=8)
rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
arrival_counts = st.integers(min_value=0, max_value=12)


@settings(max_examples=200, deadline=None)
@given(capacities, rates, arrival_counts)
def test_rows_are_distributions(capacity, sigma, z):
    queue = ServiceQueue(capacity)
    matrix = queue.transition_matrix(sigma, z)
    assert_stochastic(matrix)


@settings(max_examples=200, deadline=None)
@given(capacities, rates, arrival_counts, st.data())
def test_request_conservation(capacity, sigma, z, data):
    """E[next queue] + E[served] + E[lost] == queue + arrivals."""
    queue = ServiceQueue(capacity)
    q = data.draw(st.integers(min_value=0, max_value=capacity))
    dist = queue.next_state_distribution(q, sigma, z)
    expected_next = float(np.arange(queue.n_states) @ dist)
    pending = q + z
    expected_served = sigma if pending > 0 else 0.0
    expected_lost = queue.expected_loss(q, sigma, z)
    np.testing.assert_allclose(
        expected_next + expected_served + expected_lost, pending, atol=1e-9
    )


@settings(max_examples=200, deadline=None)
@given(capacities, rates, arrival_counts, st.data())
def test_queue_support_is_two_adjacent_levels(capacity, sigma, z, data):
    """Single server: the next queue takes at most two adjacent values."""
    queue = ServiceQueue(capacity)
    q = data.draw(st.integers(min_value=0, max_value=capacity))
    dist = queue.next_state_distribution(q, sigma, z)
    support = np.where(dist > 1e-15)[0]
    assert support.size in (1, 2)
    if support.size == 2:
        assert support[1] - support[0] == 1
    # Both support points are the clamped served / unserved levels.
    served = min(max(q + z - 1, 0), capacity)
    unserved = min(q + z, capacity)
    assert set(support.tolist()) <= {served, unserved, 0}


@settings(max_examples=200, deadline=None)
@given(capacities, rates, arrival_counts, st.data())
def test_loss_zero_when_capacity_sufficient(capacity, sigma, z, data):
    queue = ServiceQueue(capacity)
    q = data.draw(st.integers(min_value=0, max_value=capacity))
    if q + z <= capacity:
        assert queue.expected_loss(q, sigma, z) == 0.0


@settings(max_examples=200, deadline=None)
@given(capacities, rates, arrival_counts, st.data())
def test_loss_monotone_in_service_rate(capacity, sigma, z, data):
    """A faster server can only lose fewer requests."""
    queue = ServiceQueue(capacity)
    q = data.draw(st.integers(min_value=0, max_value=capacity))
    slower = queue.expected_loss(q, sigma * 0.5, z)
    faster = queue.expected_loss(q, sigma, z)
    assert faster <= slower + 1e-12


@settings(max_examples=100, deadline=None)
@given(capacities, arrival_counts)
def test_perfect_server_empties_singles(capacity, z):
    """With sigma = 1 and one pending request, the queue empties."""
    queue = ServiceQueue(capacity)
    if capacity >= 1 and z == 0:
        dist = queue.next_state_distribution(1, 1.0, 0)
        assert dist[0] == 1.0
