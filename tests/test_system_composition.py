"""Tests for the Markov composer (paper Eq. 4, Example 3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.util.validation import ValidationError
from tests.conftest import assert_stochastic


class TestExampleComposition:
    def test_eight_states_two_commands(self, example_bundle):
        system = example_bundle.system
        assert system.n_states == 8
        assert system.n_commands == 2
        assert system.command_names == ("s_on", "s_off")

    def test_joint_matrices_are_stochastic(self, example_bundle):
        for command in example_bundle.system.command_names:
            assert_stochastic(example_bundle.system.chain.matrix(command))

    def test_example_35_transition_value(self, example_bundle):
        """The worked transition of paper Example 3.5.

        P[(on,0,0) -> (on,1,0) | s_on] = P_SR[0,1] * sigma(on,s_on)
            * P_SP[on,on | s_on] = 0.05 * 0.8 * 1.0 = 0.04.
        """
        system = example_bundle.system
        src = system.state_index("on", "0", 0)
        dst = system.state_index("on", "1", 0)
        value = system.chain.transition_probability(src, dst, "s_on")
        assert value == pytest.approx(0.05 * 0.8 * 1.0)

    def test_example_35_sleep_command_blocks_service(self, example_bundle):
        """Under s_off the SP cannot service: the arriving request stays."""
        system = example_bundle.system
        src = system.state_index("on", "0", 0)
        dst = system.state_index("on", "1", 0)
        assert system.chain.transition_probability(src, dst, "s_off") == 0.0

    def test_state_tuple_roundtrip(self, example_bundle):
        system = example_bundle.system
        for index in range(system.n_states):
            state = system.state(index)
            assert (
                system.state_index(state.provider, state.requester, state.queue)
                == index
            )

    def test_state_names_format(self, example_bundle):
        assert str(example_bundle.system.state(0)) == "(on,0,0)"

    def test_decomposition_arrays(self, example_bundle):
        system = example_bundle.system
        sp_of = system.provider_index_of_state
        sr_of = system.requester_index_of_state
        q_of = system.queue_length_of_state
        idx = system.state_index("off", "1", 1)
        assert sp_of[idx] == 1
        assert sr_of[idx] == 1
        assert q_of[idx] == 1


class TestCostBuildingBlocks:
    def test_power_cost_matrix(self, example_bundle):
        system = example_bundle.system
        power = system.power_cost_matrix()
        on_idle_empty = system.state_index("on", "0", 0)
        off_idle_empty = system.state_index("off", "0", 0)
        assert power[on_idle_empty].tolist() == [3.0, 4.0]
        assert power[off_idle_empty].tolist() == [4.0, 0.0]

    def test_queue_penalty_matrix(self, example_bundle):
        system = example_bundle.system
        penalty = system.queue_length_penalty_matrix()
        assert penalty[system.state_index("on", "0", 0)].tolist() == [0.0, 0.0]
        assert penalty[system.state_index("on", "1", 1)].tolist() == [1.0, 1.0]

    def test_loss_indicator_matrix(self, example_bundle):
        system = example_bundle.system
        loss = system.request_loss_indicator_matrix()
        # Loss risk requires the SR issuing AND a full queue (Q = 1).
        assert loss[system.state_index("on", "1", 1)].tolist() == [1.0, 1.0]
        assert loss[system.state_index("on", "1", 0)].tolist() == [0.0, 0.0]
        assert loss[system.state_index("on", "0", 1)].tolist() == [0.0, 0.0]

    def test_expected_loss_matrix_values(self, example_bundle):
        system = example_bundle.system
        overflow = system.expected_loss_matrix()
        # From (on, 1, 1) under s_on: stay busy w.p. 0.85, arrival joins
        # a full queue, serve w.p. 0.8 -> lose (1 - 0.8) of it.
        x = system.state_index("on", "1", 1)
        a = system.chain.command_index("s_on")
        assert overflow[x, a] == pytest.approx(0.85 * 0.2)
        # Under s_off nothing is served: every arrival to the full queue
        # is lost.
        a_off = system.chain.command_index("s_off")
        assert overflow[x, a_off] == pytest.approx(0.85 * 1.0)

    def test_expand_provider_table_shape_check(self, example_bundle):
        with pytest.raises(ValidationError, match="shape"):
            example_bundle.system.expand_provider_table(np.zeros((3, 2)))

    def test_expected_loss_matrix_byte_identical_to_loop(self, example_bundle):
        """The einsum path is pinned byte-for-byte to the reference
        quadruple loop — not merely approximately equal."""
        from repro.systems import disk_drive, web_server

        systems = [
            example_bundle.system,
            disk_drive.build().system,
            disk_drive.build(queue_capacity=6).system,
            web_server.build().system,
        ]
        for system in systems:
            fast = system.expected_loss_matrix()
            reference = system._expected_loss_matrix_reference()
            assert fast.shape == reference.shape
            assert fast.tobytes() == reference.tobytes()


class TestDistributions:
    def test_point_distribution(self, example_bundle):
        system = example_bundle.system
        p0 = system.point_distribution("on", "0", 0)
        assert p0.sum() == 1.0
        assert p0[system.state_index("on", "0", 0)] == 1.0

    def test_uniform_distribution(self, example_bundle):
        p0 = example_bundle.system.uniform_distribution()
        assert np.allclose(p0, 1.0 / 8)

    def test_check_distribution_wrong_size(self, example_bundle):
        with pytest.raises(ValidationError):
            example_bundle.system.check_distribution(np.ones(4) / 4)

    def test_bad_queue_index(self, example_bundle):
        with pytest.raises(ValidationError, match="queue length"):
            example_bundle.system.state_index("on", "0", 5)


class TestCompositionFactorization:
    """Eq. 4: the joint kernel factorizes into SP x SR x SQ terms."""

    def test_factorization_everywhere(self, example_bundle):
        system = example_bundle.system
        sp = system.provider
        sr = system.requester
        queue = system.queue
        for command in system.command_names:
            joint = system.chain.matrix(command)
            a = sp.chain.command_index(command)
            for src in range(system.n_states):
                s = system.provider_index_of_state[src]
                r = system.requester_index_of_state[src]
                q = system.queue_length_of_state[src]
                for dst in range(system.n_states):
                    s2 = system.provider_index_of_state[dst]
                    r2 = system.requester_index_of_state[dst]
                    q2 = system.queue_length_of_state[dst]
                    expected = (
                        sp.chain.tensor[a, s, s2]
                        * sr.chain.matrix[r, r2]
                        * queue.next_state_distribution(
                            q,
                            sp.service_rate_matrix[s, a],
                            sr.arrival_counts[r2],
                        )[q2]
                    )
                    assert joint[src, dst] == pytest.approx(expected, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=100_000),
)
def test_random_compositions_are_stochastic(n_sp, n_sr, capacity, n_cmd, seed):
    """Any valid component triple composes to a valid controlled chain."""
    rng = np.random.default_rng(seed)

    def stochastic(n):
        raw = rng.random((n, n)) + 1e-3
        return raw / raw.sum(axis=1, keepdims=True)

    chain = {str(c): stochastic(n_sp) for c in range(n_cmd)}
    provider = ServiceProvider.from_tables(
        states=[f"s{i}" for i in range(n_sp)],
        commands=[str(c) for c in range(n_cmd)],
        transitions=chain,
        service_rates=rng.random((n_sp, n_cmd)),
        power=rng.random((n_sp, n_cmd)) * 5,
    )
    requester = ServiceRequester(
        MarkovChain(stochastic(n_sr)), rng.integers(0, 3, size=n_sr)
    )
    system = PowerManagedSystem(provider, requester, ServiceQueue(capacity))
    assert system.n_states == n_sp * n_sr * (capacity + 1)
    for command in system.command_names:
        assert_stochastic(system.chain.matrix(command), atol=1e-8)
