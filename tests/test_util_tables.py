"""Unit tests for :mod:`repro.util.tables`."""

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.0), (30, 4.5)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # All lines share the same total width (right-justified columns).
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table(["x"], [(1.23456,)], float_format=".2f")
        assert "1.23" in text
        assert "1.2346" not in text

    def test_integers_not_float_formatted(self):
        text = format_table(["x"], [(7,)])
        assert " 7" in text or text.endswith("7")

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [(1,)])

    def test_string_cells(self):
        text = format_table(["name"], [("hello",)])
        assert "hello" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_basic(self):
        text = format_series("curve", [1.0, 2.0], [10.0, 20.0])
        assert "curve" in text
        assert "10.0000" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="x values"):
            format_series("s", [1.0], [1.0, 2.0])

    def test_custom_labels(self):
        text = format_series("s", [1.0], [2.0], x_label="bound", y_label="power")
        assert "bound" in text
        assert "power" in text
