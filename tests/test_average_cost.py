"""Tests for the average-cost formulation (paper Eq. 7 solved directly)."""

import numpy as np
import pytest

from repro.core.average_cost import AverageCostOptimizer
from repro.core.costs import LOSS, PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.markov.analysis import stationary_distribution
from repro.systems import example_system
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def bundle():
    return example_system.build()


@pytest.fixture(scope="module")
def optimizer(bundle):
    return AverageCostOptimizer(bundle.system, bundle.costs)


class TestBasics:
    def test_example_a2_constraints_active(self, optimizer):
        result = optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        result.require_feasible()
        assert result.average(PENALTY) == pytest.approx(0.5, abs=1e-7)
        assert result.average(LOSS) == pytest.approx(0.2, abs=1e-7)
        assert not result.policy.is_deterministic

    def test_no_horizon_bookkeeping(self, optimizer):
        result = optimizer.minimize_power(penalty_bound=0.5)
        assert result.evaluation.expected_horizon == float("inf")
        # Averages equal totals in per-slice accounting.
        assert result.evaluation.averages == result.evaluation.totals

    def test_frequencies_are_a_distribution(self, optimizer):
        result = optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        assert result.frequencies.sum() == pytest.approx(1.0, abs=1e-8)
        assert np.all(result.frequencies >= -1e-12)

    def test_frequencies_are_stationary(self, bundle, optimizer):
        """The LP distribution is stationary for the induced chain."""
        result = optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        P_pi = bundle.system.chain.policy_matrix(result.policy.matrix)
        occupancy = result.frequencies.sum(axis=1)
        assert np.allclose(occupancy @ P_pi, occupancy, atol=1e-8)

    def test_infeasible_detected(self, optimizer):
        result = optimizer.minimize_power(penalty_bound=0.01)
        assert not result.feasible

    def test_bad_sense_rejected(self, optimizer):
        with pytest.raises(ValidationError):
            optimizer.optimize(POWER, "down")

    def test_foreign_costs_rejected(self, bundle):
        other = example_system.build()
        with pytest.raises(ValidationError):
            AverageCostOptimizer(bundle.system, other.costs)


class TestAgreementWithDiscounted:
    def test_discounted_converges_to_average(self, bundle, optimizer):
        """As gamma -> 1 the discounted optimum approaches the
        average-cost optimum (standard vanishing-discount result)."""
        average = optimizer.minimize_power(
            penalty_bound=0.5, loss_bound=0.2
        ).average(POWER)
        previous_gap = None
        for gamma in (0.999, 0.99999, 0.9999999):
            discounted = PolicyOptimizer(
                bundle.system,
                bundle.costs,
                gamma=gamma,
                initial_distribution=bundle.initial_distribution,
            ).minimize_power(penalty_bound=0.5, loss_bound=0.2)
            gap = abs(discounted.average(POWER) - average)
            if previous_gap is not None:
                assert gap <= previous_gap + 1e-9
            previous_gap = gap
        assert previous_gap < 1e-4

    def test_average_immune_to_session_end_gamble(self, bundle):
        """The discounted LP can sleep into the session end; the
        average-cost LP cannot — its unconstrained minimum power is the
        true long-run floor."""
        avg = AverageCostOptimizer(bundle.system, bundle.costs)
        floor = avg.minimize_unconstrained(POWER).require_feasible()
        # Long-run: the SP parks off, power exactly 0 (off + s_off).
        assert floor.average(POWER) == pytest.approx(0.0, abs=1e-9)

    def test_unconstrained_deterministic(self, optimizer):
        result = optimizer.minimize_unconstrained(POWER).require_feasible()
        assert result.policy.is_deterministic


class TestActionMask:
    def test_mask_respected(self, cpu_bundle):
        optimizer = AverageCostOptimizer(
            cpu_bundle.system,
            cpu_bundle.costs,
            action_mask=cpu_bundle.action_mask,
        )
        result = optimizer.minimize_power(penalty_bound=0.05).require_feasible()
        assert np.all(result.policy.matrix[~cpu_bundle.action_mask] == 0.0)

    def test_single_free_decision(self, cpu_bundle):
        optimizer = AverageCostOptimizer(
            cpu_bundle.system,
            cpu_bundle.costs,
            action_mask=cpu_bundle.action_mask,
        )
        result = optimizer.minimize_power(penalty_bound=0.03).require_feasible()
        randomized = np.sum(result.policy.matrix.max(axis=1) < 1.0 - 1e-9)
        assert randomized <= 1


class TestOptimalityDominance:
    def test_random_policies_never_beat_average_lp(self, bundle, optimizer):
        """Long-run averages of arbitrary stationary policies are
        dominated by the average-cost optimum at matched constraints."""
        from repro.core.policy import MarkovPolicy

        rng = np.random.default_rng(9)
        system, costs = bundle.system, bundle.costs
        for _ in range(15):
            raw = rng.random((8, 2)) + 1e-6
            policy = MarkovPolicy(
                raw / raw.sum(axis=1, keepdims=True), ("s_on", "s_off")
            )
            P_pi = system.chain.policy_matrix(policy.matrix)
            pi = stationary_distribution(P_pi)
            freq = pi[:, None] * policy.matrix
            penalty = costs.evaluate(PENALTY, freq)
            loss = costs.evaluate(LOSS, freq)
            power = costs.evaluate(POWER, freq)
            result = optimizer.minimize_power(
                penalty_bound=penalty, loss_bound=loss
            ).require_feasible()
            assert result.average(POWER) <= power + 1e-7
