"""Tests for the LP policy optimizer (paper Appendix A)."""

import numpy as np
import pytest

from repro.core.costs import LOSS, PENALTY, POWER
from repro.core.optimizer import (
    InfeasibleProblemError,
    PolicyOptimizer,
)
from repro.systems import example_system
from repro.util.validation import ValidationError


class TestConstruction:
    def test_rejects_foreign_costs(self, example_bundle):
        other = example_system.build()
        with pytest.raises(ValidationError, match="different system"):
            PolicyOptimizer(example_bundle.system, other.costs, gamma=0.9)

    def test_rejects_gamma_one(self, example_bundle):
        with pytest.raises(ValidationError):
            PolicyOptimizer(example_bundle.system, example_bundle.costs, gamma=1.0)

    def test_rejects_gamma_zero(self, example_bundle):
        with pytest.raises(ValidationError):
            PolicyOptimizer(example_bundle.system, example_bundle.costs, gamma=0.0)

    def test_expected_horizon(self, example_bundle):
        opt = PolicyOptimizer(example_bundle.system, example_bundle.costs, gamma=0.99)
        assert opt.expected_horizon == pytest.approx(100.0)

    def test_rejects_bad_mask_shape(self, example_bundle):
        with pytest.raises(ValidationError, match="action_mask"):
            PolicyOptimizer(
                example_bundle.system,
                example_bundle.costs,
                gamma=0.9,
                action_mask=np.ones((2, 2), dtype=bool),
            )

    def test_rejects_all_forbidden_state(self, example_bundle):
        mask = np.ones((8, 2), dtype=bool)
        mask[3] = False
        with pytest.raises(ValidationError, match="forbids every command"):
            PolicyOptimizer(
                example_bundle.system,
                example_bundle.costs,
                gamma=0.9,
                action_mask=mask,
            )


class TestBalanceEquations:
    def test_frequencies_satisfy_balance(self, example_optimizer, example_bundle):
        result = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        result.require_feasible()
        x = result.frequencies
        gamma = example_bundle.gamma
        tensor = example_bundle.system.chain.tensor
        p0 = example_bundle.initial_distribution
        for j in range(example_bundle.system.n_states):
            outflow = x[j].sum()
            inflow = sum(
                tensor[a, s, j] * x[s, a]
                for s in range(example_bundle.system.n_states)
                for a in range(2)
            )
            assert outflow - gamma * inflow == pytest.approx(p0[j], abs=1e-6)

    def test_total_frequency_is_horizon(self, example_optimizer, example_bundle):
        result = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        horizon = 1.0 / (1.0 - example_bundle.gamma)
        assert result.frequencies.sum() == pytest.approx(horizon, rel=1e-6)


class TestConstraints:
    def test_constraints_respected(self, example_optimizer):
        result = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        assert result.average(PENALTY) <= 0.5 + 1e-7
        assert result.average(LOSS) <= 0.2 + 1e-7

    def test_active_constraints_are_tight(self, example_optimizer):
        # Example A.2: both constraints bind at the optimum.
        result = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        assert result.average(PENALTY) == pytest.approx(0.5, abs=1e-6)
        assert result.average(LOSS) == pytest.approx(0.2, abs=1e-6)

    def test_looser_bound_never_costs_more(self, example_optimizer):
        tight = example_optimizer.minimize_power(penalty_bound=0.3).average(POWER)
        loose = example_optimizer.minimize_power(penalty_bound=0.6).average(POWER)
        assert loose <= tight + 1e-9

    def test_lower_bound_constraint(self, web_bundle):
        opt = PolicyOptimizer(
            web_bundle.system,
            web_bundle.costs,
            gamma=web_bundle.gamma,
            initial_distribution=web_bundle.initial_distribution,
        )
        result = opt.optimize(POWER, "min", lower_bounds={"throughput": 0.1})
        result.require_feasible()
        assert result.average("throughput") >= 0.1 - 1e-7

    def test_maximize_sense(self, web_bundle):
        opt = PolicyOptimizer(
            web_bundle.system,
            web_bundle.costs,
            gamma=web_bundle.gamma,
            initial_distribution=web_bundle.initial_distribution,
        )
        result = opt.optimize("throughput", "max", upper_bounds={POWER: 1.0})
        result.require_feasible()
        assert result.average(POWER) <= 1.0 + 1e-7
        # More power budget cannot reduce achievable throughput.
        more = opt.optimize("throughput", "max", upper_bounds={POWER: 2.0})
        assert more.average("throughput") >= result.average("throughput") - 1e-9

    def test_bad_sense_rejected(self, example_optimizer):
        with pytest.raises(ValidationError, match="sense"):
            example_optimizer.optimize(POWER, "maximize")


class TestInfeasibility:
    def test_impossible_penalty_bound(self, example_optimizer):
        result = example_optimizer.minimize_power(penalty_bound=0.01)
        assert not result.feasible
        assert result.policy is None
        assert result.objective_average is None

    def test_require_feasible_raises(self, example_optimizer):
        result = example_optimizer.minimize_power(penalty_bound=0.01)
        with pytest.raises(InfeasibleProblemError, match="constraints"):
            result.require_feasible()

    def test_average_raises_when_infeasible(self, example_optimizer):
        result = example_optimizer.minimize_power(penalty_bound=0.01)
        with pytest.raises(InfeasibleProblemError):
            result.average(POWER)


class TestPolicyExtraction:
    def test_policy_rows_are_distributions(self, example_optimizer):
        result = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        matrix = result.policy.matrix
        assert np.all(matrix >= 0)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_lp_objective_matches_policy_evaluation(
        self, example_optimizer, example_bundle
    ):
        """Eq. 16 extraction is exact: re-evaluating the policy in closed
        form reproduces the LP's discounted objective."""
        result = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        lp_total = result.lp_result.objective
        assert result.evaluation.totals[POWER] == pytest.approx(lp_total, rel=1e-6)

    def test_frequencies_match_evaluation_frequencies(
        self, example_optimizer
    ):
        result = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        assert np.allclose(
            result.frequencies, result.evaluation.frequencies, atol=1e-5
        )

    def test_fallback_explicit_command(self, example_bundle):
        opt = PolicyOptimizer(
            example_bundle.system,
            example_bundle.costs,
            gamma=example_bundle.gamma,
            initial_distribution=example_bundle.initial_distribution,
            fallback="s_on",
        )
        freq = np.zeros((8, 2))
        freq[0, 0] = 1.0  # only one state visited
        policy = opt.policy_from_frequencies(freq)
        # Unvisited states all get the explicit fallback command.
        assert np.all(policy.matrix[1:, 0] == 1.0)

    def test_fallback_lowest_power(self, example_bundle):
        opt = PolicyOptimizer(
            example_bundle.system,
            example_bundle.costs,
            gamma=example_bundle.gamma,
            fallback="lowest-power",
        )
        policy = opt.policy_from_frequencies(np.zeros((8, 2)))
        power = example_bundle.system.power_cost_matrix()
        for state in range(8):
            chosen = int(policy.matrix[state].argmax())
            assert power[state, chosen] == power[state].min()

    def test_fallback_unknown_rule_raises(self, example_bundle):
        opt = PolicyOptimizer(
            example_bundle.system,
            example_bundle.costs,
            gamma=0.9,
            fallback="warp-drive",
        )
        with pytest.raises(ValidationError, match="fallback"):
            opt.policy_from_frequencies(np.zeros((8, 2)))


class TestActionMask:
    def test_masked_commands_never_issued(self, cpu_bundle):
        opt = PolicyOptimizer(
            cpu_bundle.system,
            cpu_bundle.costs,
            gamma=cpu_bundle.gamma,
            initial_distribution=cpu_bundle.initial_distribution,
            action_mask=cpu_bundle.action_mask,
        )
        result = opt.minimize_power(penalty_bound=0.05).require_feasible()
        forbidden = ~cpu_bundle.action_mask
        assert np.all(result.policy.matrix[forbidden] == 0.0)

    def test_mask_changes_optimum(self, cpu_bundle):
        free = PolicyOptimizer(
            cpu_bundle.system,
            cpu_bundle.costs,
            gamma=cpu_bundle.gamma,
            initial_distribution=cpu_bundle.initial_distribution,
        )
        masked = PolicyOptimizer(
            cpu_bundle.system,
            cpu_bundle.costs,
            gamma=cpu_bundle.gamma,
            initial_distribution=cpu_bundle.initial_distribution,
            action_mask=cpu_bundle.action_mask,
        )
        free_power = free.minimize_power(penalty_bound=0.05).average(POWER)
        masked_power = masked.minimize_power(penalty_bound=0.05).average(POWER)
        # Removing freedom can only cost power (or tie).
        assert masked_power >= free_power - 1e-9


class TestBackends:
    @pytest.mark.parametrize("backend", ["scipy", "interior-point", "simplex"])
    def test_all_backends_agree_on_example_a2(self, example_bundle, backend):
        opt = PolicyOptimizer(
            example_bundle.system,
            example_bundle.costs,
            gamma=example_bundle.gamma,
            initial_distribution=example_bundle.initial_distribution,
            backend=backend,
        )
        result = opt.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        result.require_feasible()
        assert result.average(POWER) == pytest.approx(1.7383, abs=2e-3)

    def test_cross_check_mode(self, example_bundle):
        opt = PolicyOptimizer(
            example_bundle.system,
            example_bundle.costs,
            gamma=example_bundle.gamma,
            initial_distribution=example_bundle.initial_distribution,
            cross_check=True,
        )
        result = opt.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        assert result.feasible
