"""The fleet runtime: registry, determinism, checkpointing, telemetry.

The central contracts under test:

* **per-device determinism** — a fleet of N devices stepped together
  produces metrics *identical* (bitwise) to the same N devices stepped
  independently with the same per-device seeds, however they are
  grouped and whatever else shares the fleet (the fleet analogue of
  the loop==vector common-random-numbers suite);
* **checkpoint/resume** — a resumed campaign's telemetry is
  byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.policies import (
    ConstantAgent,
    StationaryPolicyAgent,
    TimeoutAgent,
    eager_markov_policy,
)
from repro.runtime import (
    Fleet,
    FleetController,
    JsonLinesTelemetry,
    MemoryTelemetry,
    MMPP2Stream,
    PeriodicBurstStream,
    build_fleet,
    device_rng,
    load_checkpoint,
    snapshot,
)
from repro.runtime.streams import CallableStream
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def eager_policy(example_bundle):
    return eager_markov_policy(example_bundle.system, "s_on", "s_off")


def _stationary_device(bundle, policy, fleet, device_id, seed, index):
    return fleet.add_device(
        device_id,
        bundle.system,
        bundle.costs,
        StationaryPolicyAgent(bundle.system, policy),
        rng=device_rng(seed, index),
    )


def _device_fingerprint(device):
    """Everything a determinism comparison should pin down."""
    return (
        device.totals.tolist(),
        device.state,
        device.prev_arrivals,
        device.arrivals,
        device.serviced,
        device.lost,
        device.loss_event_slices,
        device.command_counts.tolist(),
        device.provider_occupancy.tolist(),
        device.slices,
    )


class TestFleetRegistry:
    def test_add_and_lookup(self, example_bundle, eager_policy):
        fleet = Fleet()
        device = _stationary_device(
            example_bundle, eager_policy, fleet, "d-0", 0, 0
        )
        assert len(fleet) == 1
        assert fleet.device("d-0") is device
        assert "d-0" in fleet
        assert fleet.device_ids == ("d-0",)
        assert device.vector_eligible

    def test_duplicate_id_rejected(self, example_bundle, eager_policy):
        fleet = Fleet()
        _stationary_device(example_bundle, eager_policy, fleet, "d-0", 0, 0)
        with pytest.raises(ValidationError, match="duplicate"):
            _stationary_device(
                example_bundle, eager_policy, fleet, "d-0", 0, 1
            )

    def test_unknown_id_rejected(self):
        fleet = Fleet()
        with pytest.raises(ValidationError, match="unknown device"):
            fleet.device("nope")

    def test_remove_bumps_version(self, example_bundle, eager_policy):
        fleet = Fleet()
        _stationary_device(example_bundle, eager_policy, fleet, "d-0", 0, 0)
        version = fleet.version
        fleet.remove_device("d-0")
        assert len(fleet) == 0
        assert fleet.version > version

    def test_adopt_device_keeps_state_and_bumps_version(
        self, example_bundle, eager_policy
    ):
        staging = Fleet()
        device = _stationary_device(
            example_bundle, eager_policy, staging, "d-0", 0, 0
        )
        device.slices = 123  # accumulated state an adopt must not touch
        fleet = Fleet()
        version = fleet.version
        assert fleet.adopt_device(device) is device
        assert fleet.device("d-0") is device
        assert device.slices == 123
        assert fleet.version > version
        with pytest.raises(ValidationError, match="duplicate"):
            fleet.adopt_device(device)
        with pytest.raises(ValidationError, match="takes a Device"):
            fleet.adopt_device("d-1")

    def test_replace_agent_resets_and_bumps_version(
        self, example_bundle, eager_policy
    ):
        fleet = Fleet()
        device = _stationary_device(
            example_bundle, eager_policy, fleet, "d-0", 0, 0
        )
        agent = TimeoutAgent(5, 0, 1)
        agent._idle_slices = 3  # dirty state the reset must clear
        version = fleet.version
        assert fleet.replace_agent("d-0", agent) is device
        assert device.agent is agent
        assert agent._idle_slices == 0
        assert fleet.version > version
        with pytest.raises(ValidationError, match="unknown device"):
            fleet.replace_agent("ghost", agent)
        with pytest.raises(ValidationError, match="must be a PolicyAgent"):
            fleet.replace_agent("d-0", "always_on")

    def test_foreign_costs_rejected(self, example_bundle, disk_bundle):
        fleet = Fleet()
        with pytest.raises(ValidationError, match="different system"):
            fleet.add_device(
                "d-0",
                example_bundle.system,
                disk_bundle.costs,
                ConstantAgent(0),
            )

    def test_stream_device_not_vector_eligible(
        self, example_bundle, eager_policy
    ):
        fleet = Fleet()
        rng = device_rng(0, 0)
        device = fleet.add_device(
            "d-0",
            example_bundle.system,
            example_bundle.costs,
            StationaryPolicyAgent(example_bundle.system, eager_policy),
            rng=rng,
            stream=PeriodicBurstStream(2, 5),
        )
        assert not device.vector_eligible


class TestFleetDeterminism:
    """Together == independently, bitwise, for every stepping path."""

    def _run_together(self, example_bundle, eager_policy, n, ticks, spt):
        fleet = Fleet()
        for i in range(n):
            _stationary_device(
                example_bundle, eager_policy, fleet, f"d-{i}", 0, i
            )
        FleetController(fleet, slices_per_tick=spt).run(ticks)
        return fleet

    def _run_alone(self, example_bundle, eager_policy, i, ticks, spt):
        fleet = Fleet()
        _stationary_device(example_bundle, eager_policy, fleet, f"d-{i}", 0, i)
        FleetController(fleet, slices_per_tick=spt).run(ticks)
        return fleet.device(f"d-{i}")

    def test_vector_group_equals_independent_devices(
        self, example_bundle, eager_policy
    ):
        together = self._run_together(example_bundle, eager_policy, 6, 3, 200)
        for i in range(6):
            alone = self._run_alone(example_bundle, eager_policy, i, 3, 200)
            assert _device_fingerprint(alone) == _device_fingerprint(
                together.device(f"d-{i}")
            )

    def test_loop_devices_equal_independent_devices(self, example_bundle):
        def build(ids):
            fleet = Fleet()
            for i in ids:
                fleet.add_device(
                    f"t-{i}",
                    example_bundle.system,
                    example_bundle.costs,
                    TimeoutAgent(4, 0, 1),
                    rng=device_rng(5, i),
                )
            FleetController(fleet, slices_per_tick=150).run(2)
            return fleet

        together = build(range(4))
        for i in range(4):
            alone = build([i]).device(f"t-{i}")
            assert _device_fingerprint(alone) == _device_fingerprint(
                together.device(f"t-{i}")
            )

    def test_grouping_invariance_in_mixed_fleet(
        self, example_bundle, disk_bundle, eager_policy
    ):
        """A device's trajectory ignores everything else in the fleet."""
        alone = self._run_alone(example_bundle, eager_policy, 0, 2, 250)

        mixed = Fleet()
        _stationary_device(example_bundle, eager_policy, mixed, "d-0", 0, 0)
        # A second vector group on a different system...
        disk_policy = eager_markov_policy(
            disk_bundle.system, "go_active", "go_idle"
        )
        mixed.add_device(
            "disk-0",
            disk_bundle.system,
            disk_bundle.costs,
            StationaryPolicyAgent(disk_bundle.system, disk_policy),
            rng=device_rng(9, 0),
        )
        # ... a loop heuristic, and a stream-driven device.
        mixed.add_device(
            "t-0",
            example_bundle.system,
            example_bundle.costs,
            TimeoutAgent(4, 0, 1),
            rng=device_rng(9, 1),
        )
        rng = device_rng(9, 2)
        mixed.add_device(
            "s-0",
            example_bundle.system,
            example_bundle.costs,
            TimeoutAgent(3, 0, 1),
            rng=rng,
            stream=MMPP2Stream(0.9, 0.8, rng),
        )
        FleetController(mixed, slices_per_tick=250).run(2)
        assert _device_fingerprint(alone) == _device_fingerprint(
            mixed.device("d-0")
        )

    def test_tick_size_invariance_for_vector_devices(
        self, example_bundle, eager_policy
    ):
        """Stream consumption is per-slice, so tick length is neutral.

        Trajectories and integer counters are *identical* across tick
        schedules; float totals fold at different chunk boundaries, so
        they agree only to summation rounding (the bitwise guarantee
        holds for equal tick schedules, which is what checkpoints keep).
        """
        a = self._run_together(example_bundle, eager_policy, 3, 4, 125)
        b = self._run_together(example_bundle, eager_policy, 3, 2, 250)
        for i in range(3):
            da, db = a.device(f"d-{i}"), b.device(f"d-{i}")
            assert _device_fingerprint(da)[1:] == _device_fingerprint(db)[1:]
            np.testing.assert_allclose(
                da.totals, db.totals, rtol=1e-12, atol=1e-9
            )

    def test_randomized_policy_group(self, example_bundle, example_optimizer):
        """Non-deterministic policies batch too (4-kind uniform path)."""
        result = example_optimizer.minimize_power(
            penalty_bound=0.5, loss_bound=0.2
        )
        assert not result.policy.is_deterministic

        def run(ids):
            fleet = Fleet()
            for i in ids:
                fleet.add_device(
                    f"r-{i}",
                    example_bundle.system,
                    example_bundle.costs,
                    StationaryPolicyAgent(example_bundle.system, result.policy),
                    rng=device_rng(21, i),
                )
            FleetController(fleet, slices_per_tick=300).run(2)
            return fleet

        together = run(range(5))
        alone = run([2]).device("r-2")
        assert _device_fingerprint(alone) == _device_fingerprint(
            together.device("r-2")
        )


class TestControllerBackends:
    def test_vector_backend_rejects_stateful(self, example_bundle):
        fleet = Fleet()
        fleet.add_device(
            "t-0",
            example_bundle.system,
            example_bundle.costs,
            TimeoutAgent(4, 0, 1),
            rng=device_rng(0, 0),
        )
        controller = FleetController(fleet, backend="vector")
        with pytest.raises(ValidationError, match="vector-eligible"):
            controller.step_tick()

    def test_loop_backend_runs_stationary_devices(
        self, example_bundle, eager_policy
    ):
        fleet = Fleet()
        _stationary_device(example_bundle, eager_policy, fleet, "d-0", 0, 0)
        controller = FleetController(
            fleet, slices_per_tick=100, backend="loop"
        )
        controller.run(2)
        assert controller.grouping()["loop_devices"] == 1
        assert fleet.device("d-0").slices == 200

    def test_grouping_splits_by_policy_determinism(
        self, example_bundle, example_optimizer, eager_policy
    ):
        randomized = example_optimizer.minimize_power(
            penalty_bound=0.5, loss_bound=0.2
        ).policy
        fleet = Fleet()
        _stationary_device(example_bundle, eager_policy, fleet, "d-0", 0, 0)
        fleet.add_device(
            "r-0",
            example_bundle.system,
            example_bundle.costs,
            StationaryPolicyAgent(example_bundle.system, randomized),
            rng=device_rng(0, 1),
        )
        controller = FleetController(fleet, slices_per_tick=50)
        groups = controller.grouping()["vector_groups"]
        assert len(groups) == 2  # deterministic and randomized never mix

    def test_empty_fleet_rejected(self):
        controller = FleetController(Fleet())
        with pytest.raises(ValidationError, match="empty fleet"):
            controller.step_tick()

    def test_membership_change_regroups(self, example_bundle, eager_policy):
        fleet = Fleet()
        _stationary_device(example_bundle, eager_policy, fleet, "d-0", 0, 0)
        controller = FleetController(fleet, slices_per_tick=50)
        controller.run(1)
        _stationary_device(example_bundle, eager_policy, fleet, "d-1", 0, 1)
        controller.run(1)
        assert fleet.device("d-0").slices == 100
        assert fleet.device("d-1").slices == 50

    def test_parameter_validation(self, example_bundle, eager_policy):
        fleet = Fleet()
        _stationary_device(example_bundle, eager_policy, fleet, "d-0", 0, 0)
        with pytest.raises(ValidationError, match="slices_per_tick"):
            FleetController(fleet, slices_per_tick=0)
        with pytest.raises(ValidationError, match="backend"):
            FleetController(fleet, backend="warp")
        with pytest.raises(ValidationError, match="telemetry_every"):
            FleetController(fleet, telemetry_every=0)


class TestTelemetry:
    def _controller(self, example_bundle, eager_policy, sink, **kwargs):
        fleet = Fleet()
        for i in range(3):
            _stationary_device(
                example_bundle, eager_policy, fleet, f"d-{i}", 0, i
            )
        return FleetController(
            fleet, slices_per_tick=100, telemetry=sink, **kwargs
        )

    def test_snapshot_structure(self, example_bundle, eager_policy):
        sink = MemoryTelemetry()
        controller = self._controller(example_bundle, eager_policy, sink)
        controller.run(2)
        assert [r["tick"] for r in sink.records] == [1, 2]
        record = sink.records[-1]
        assert record["n_devices"] == 3
        assert record["fleet_slices"] == 600
        assert set(record["metrics"]) == set(
            example_bundle.costs.metric_names
        )
        for stats in record["metrics"].values():
            assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_telemetry_every(self, example_bundle, eager_policy):
        sink = MemoryTelemetry()
        controller = self._controller(
            example_bundle, eager_policy, sink, telemetry_every=2
        )
        controller.run(5)
        assert [r["tick"] for r in sink.records] == [2, 4]

    def test_per_device_records(self, example_bundle, eager_policy):
        sink = MemoryTelemetry()
        controller = self._controller(
            example_bundle, eager_policy, sink, telemetry_per_device=True
        )
        controller.run(1)
        devices = sink.records[0]["devices"]
        assert [d["id"] for d in devices] == ["d-0", "d-1", "d-2"]
        assert all(d["workload"] == "model" for d in devices)

    def test_jsonl_sink_round_trips(
        self, example_bundle, eager_policy, tmp_path
    ):
        path = tmp_path / "telemetry.jsonl"
        with JsonLinesTelemetry(path) as sink:
            self._controller(example_bundle, eager_policy, sink).run(3)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[-1])["tick"] == 3

    def test_snapshot_of_empty_fleet(self):
        record = snapshot(Fleet(), tick=0)
        assert record["n_devices"] == 0
        assert record["metrics"] == {}

    def test_jsonl_sink_opens_lazily(self, tmp_path):
        """Constructing a sink must not truncate an existing file; only
        the first record does (a failed CLI run keeps old telemetry)."""
        path = tmp_path / "telemetry.jsonl"
        path.write_text("precious old telemetry\n")
        sink = JsonLinesTelemetry(path)
        sink.close()
        assert path.read_text() == "precious old telemetry\n"
        with JsonLinesTelemetry(path) as live:
            live.record({"tick": 1})
        assert json.loads(path.read_text())["tick"] == 1

    def test_jsonl_flush_every_batches_writes(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = JsonLinesTelemetry(path, flush_every=3)
        try:
            sink.record({"tick": 1})
            sink.record({"tick": 2})
            # below the batch threshold: nothing has reached the OS yet
            assert path.read_text() == ""
            sink.record({"tick": 3})
            assert len(path.read_text().splitlines()) == 3
            sink.record({"tick": 4})  # pending again...
        finally:
            sink.close()  # ...but close never drops records
        assert len(path.read_text().splitlines()) == 4

    def test_jsonl_flush_every_validated(self, tmp_path):
        with pytest.raises(ValidationError, match="flush_every"):
            JsonLinesTelemetry(tmp_path / "t.jsonl", flush_every=0)

    def test_jsonl_fsync_follows_every_flush(self, tmp_path, monkeypatch):
        import repro.runtime.telemetry as telemetry_module

        synced = []
        monkeypatch.setattr(
            telemetry_module.os, "fsync", lambda fd: synced.append(fd)
        )
        with JsonLinesTelemetry(
            tmp_path / "t.jsonl", flush_every=2, fsync=True
        ) as sink:
            for tick in range(5):
                sink.record({"tick": tick})
        # two full batches plus the close-time flush of the remainder
        assert len(synced) == 3


def _mixed_fleet(example_bundle, eager_policy):
    """All three stepping paths: vector group, loop, stream-driven."""
    fleet = Fleet()
    for i in range(4):
        fleet.add_device(
            f"v-{i}",
            example_bundle.system,
            example_bundle.costs,
            StationaryPolicyAgent(example_bundle.system, eager_policy),
            rng=device_rng(0, i),
        )
    fleet.add_device(
        "t-0",
        example_bundle.system,
        example_bundle.costs,
        TimeoutAgent(4, 0, 1),
        rng=device_rng(1, 0),
    )
    rng = device_rng(2, 0)
    fleet.add_device(
        "s-0",
        example_bundle.system,
        example_bundle.costs,
        TimeoutAgent(3, 0, 1),
        rng=rng,
        stream=MMPP2Stream(0.95, 0.85, rng),
    )
    return fleet


class TestCheckpoint:
    def test_resume_telemetry_byte_identical(
        self, example_bundle, eager_policy, tmp_path
    ):
        """The headline contract: resume == never stopped, bytewise."""
        full_path = tmp_path / "full.jsonl"
        with JsonLinesTelemetry(full_path) as sink:
            FleetController(
                _mixed_fleet(example_bundle, eager_policy),
                slices_per_tick=150,
                telemetry=sink,
            ).run(6)

        split_path = tmp_path / "split.jsonl"
        ckpt = tmp_path / "fleet.ckpt"
        with JsonLinesTelemetry(split_path) as sink:
            controller = FleetController(
                _mixed_fleet(example_bundle, eager_policy),
                slices_per_tick=150,
                telemetry=sink,
            )
            controller.run(3)
            controller.save_checkpoint(ckpt)
        with JsonLinesTelemetry(split_path, append=True) as sink:
            FleetController.resume(ckpt, telemetry=sink).run(3)

        assert full_path.read_bytes() == split_path.read_bytes()

    def test_resume_restores_counters_and_settings(
        self, example_bundle, eager_policy, tmp_path
    ):
        controller = FleetController(
            _mixed_fleet(example_bundle, eager_policy),
            slices_per_tick=120,
            telemetry_every=2,
        )
        controller.run(2)
        path = tmp_path / "fleet.ckpt"
        controller.save_checkpoint(path)
        resumed = FleetController.resume(path)
        assert resumed.tick == 2
        assert resumed.slices_per_tick == 120
        assert resumed._telemetry_every == 2
        assert resumed.fleet.device_ids == controller.fleet.device_ids
        assert resumed.fleet.total_slices == controller.fleet.total_slices

    def test_callable_stream_refused(self, example_bundle, tmp_path):
        fleet = Fleet()
        fleet.add_device(
            "c-0",
            example_bundle.system,
            example_bundle.costs,
            TimeoutAgent(3, 0, 1),
            rng=device_rng(0, 0),
            stream=CallableStream(lambda start, n: np.zeros(n, dtype=int)),
        )
        controller = FleetController(fleet, slices_per_tick=50)
        with pytest.raises(ValidationError, match="non-checkpointable"):
            controller.save_checkpoint(tmp_path / "fleet.ckpt")

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "not_a_checkpoint.ckpt"
        path.write_bytes(b"garbage")
        with pytest.raises(ValidationError, match="not readable|not a repro"):
            load_checkpoint(path)
        with pytest.raises(ValidationError, match="does not exist"):
            load_checkpoint(tmp_path / "missing.ckpt")


class TestBuildFleet:
    def test_example_spec_file_builds_and_steps(self):
        from pathlib import Path

        spec_path = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "fleet_spec.json"
        )
        raw = json.loads(spec_path.read_text())
        fleet, cache = build_fleet(raw)
        assert len(fleet) == 12
        # 8 identical optimal disks: one LP solve, deduped via the cache.
        assert cache.stats.misses == 1
        controller = FleetController(fleet, slices_per_tick=50)
        controller.run(1)
        grouping = controller.grouping()
        assert sum(g["devices"] for g in grouping["vector_groups"]) == 8
        # Timeout heuristics and stream-driven devices ride the loop.
        assert grouping["loop_devices"] == 4

    def test_inline_system_spec(self):
        raw = {
            "groups": [
                {
                    "count": 2,
                    "system": {
                        "name": "inline",
                        "queue_capacity": 1,
                        "provider": {
                            "states": ["on", "off"],
                            "commands": ["s_on", "s_off"],
                            "transitions": {
                                "s_on": [[1.0, 0.0], [0.1, 0.9]],
                                "s_off": [[0.2, 0.8], [0.0, 1.0]],
                            },
                            "service_rates": [[0.8, 0.0], [0.0, 0.0]],
                            "power": [[3.0, 4.0], [4.0, 0.0]],
                        },
                        "requester": {
                            "transitions": [[0.9, 0.1], [0.2, 0.8]],
                            "arrivals": [0, 1],
                        },
                    },
                    "agent": {"type": "optimal", "penalty_bound": 0.5},
                }
            ]
        }
        fleet, _ = build_fleet(raw)
        assert len(fleet) == 2
        FleetController(fleet, slices_per_tick=50).run(1)

    def test_adaptive_auto_memory_agent(self):
        raw = {
            "groups": [
                {
                    "id": "auto",
                    "count": 1,
                    "system": "example",
                    "agent": {
                        "type": "adaptive",
                        "window": 50,
                        "refit_every": 30,
                        "auto_memory": True,
                        "memories": [1, 2],
                        "penalty_bound": 0.5,
                        "loss_bound": 0.25,
                    },
                }
            ]
        }
        fleet, _ = build_fleet(raw, base_seed=5)
        FleetController(fleet, slices_per_tick=60).run(2)
        agent = fleet.device("auto-0000").agent
        assert agent.refits >= 1
        assert agent.fitted_memory in (1, 2)
        assert "chain-estimator" in agent.describe()

    def test_spec_validation_errors(self):
        with pytest.raises(ValidationError, match="groups"):
            build_fleet({"groups": []})
        with pytest.raises(ValidationError, match="missing 'system'"):
            build_fleet({"groups": [{"agent": {"type": "optimal"}}]})
        with pytest.raises(ValidationError, match="unknown system"):
            build_fleet(
                {"groups": [{"system": "toaster", "agent": {"type": "optimal"}}]}
            )
        with pytest.raises(ValidationError, match="unknown agent type"):
            build_fleet(
                {"groups": [{"system": "example", "agent": {"type": "psychic"}}]}
            )

    def test_trace_workload_loaded_once_per_group(self, tmp_path):
        from repro.traces.trace import Trace

        path = tmp_path / "trace.txt"
        Trace([0.5, 1.5, 2.5], duration=4).save(path)
        raw = {
            "groups": [
                {
                    "count": 3,
                    "system": "example",
                    "agent": {"type": "timeout", "timeout": 2,
                              "active": "s_on", "sleep": "s_off"},
                    "workload": {
                        "type": "trace",
                        "path": str(path),
                        "resolution": 1.0,
                    },
                }
            ]
        }
        fleet, _ = build_fleet(raw)
        streams = [device.stream for device in fleet]
        # One shared backing buffer, one private cursor per device.
        assert all(
            np.shares_memory(s.counts, streams[0].counts)
            for s in streams[1:]
        )
        FleetController(fleet, slices_per_tick=10).run(1)
        assert all(s.position == 10 for s in streams)

    def test_infeasible_optimal_agent_reported(self):
        raw = {
            "groups": [
                {
                    "system": "example",
                    "agent": {"type": "optimal", "penalty_bound": 1e-9},
                }
            ]
        }
        with pytest.raises(ValidationError, match="infeasible"):
            build_fleet(raw)
