"""Tests for Markov policies and their closed-form evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import MarkovPolicy, evaluate_policy
from repro.util.validation import ValidationError


class TestMarkovPolicy:
    def test_randomized_rows(self):
        policy = MarkovPolicy([[0.4, 0.6], [1.0, 0.0]], ["s_on", "s_off"])
        assert not policy.is_deterministic
        assert policy.probability(0, "s_off") == pytest.approx(0.6)
        assert policy.probability(1, 0) == 1.0

    def test_deterministic_constructor(self):
        policy = MarkovPolicy.deterministic([1, 0, 1], 2)
        assert policy.is_deterministic
        assert policy.as_deterministic().tolist() == [1, 0, 1]

    def test_deterministic_by_name(self):
        policy = MarkovPolicy.deterministic(
            ["s_off", "s_on"], 2, command_names=["s_on", "s_off"]
        )
        assert policy.as_deterministic().tolist() == [1, 0]

    def test_constant_policy(self):
        policy = MarkovPolicy.constant(1, 4, 3)
        assert policy.n_states == 4
        assert np.all(policy.greedy_commands() == 1)

    def test_as_deterministic_raises_on_randomized(self):
        policy = MarkovPolicy([[0.5, 0.5]])
        with pytest.raises(ValidationError, match="randomized"):
            policy.as_deterministic()

    def test_randomization_degree(self):
        deterministic = MarkovPolicy.deterministic([0, 1], 2)
        assert deterministic.randomization_degree() == pytest.approx(0.0)
        mixed = MarkovPolicy([[0.7, 0.3], [1.0, 0.0]])
        assert mixed.randomization_degree() == pytest.approx(0.3)

    def test_rows_renormalized(self):
        # Tolerance dust is cleaned up on construction.
        policy = MarkovPolicy([[0.5 + 1e-12, 0.5 - 1e-12]])
        assert policy.matrix.sum() == pytest.approx(1.0)

    def test_rejects_non_distribution_rows(self):
        with pytest.raises(ValidationError):
            MarkovPolicy([[0.5, 0.6]])

    def test_rejects_bad_command_count(self):
        with pytest.raises(ValidationError, match="command names"):
            MarkovPolicy([[1.0, 0.0]], ["only_one_name_for_two"][:1] * 1)

    def test_out_of_range_deterministic_command(self):
        with pytest.raises(ValidationError, match="out of range"):
            MarkovPolicy.deterministic([2], 2)

    def test_sample_command_respects_support(self, rng):
        policy = MarkovPolicy([[0.0, 1.0], [1.0, 0.0]])
        assert policy.sample_command(0, rng) == 1
        assert policy.sample_command(1, rng) == 0

    def test_sample_command_frequencies(self, rng):
        policy = MarkovPolicy([[0.25, 0.75]])
        draws = [policy.sample_command(0, rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(0.75, abs=0.03)

    def test_equality(self):
        a = MarkovPolicy([[0.5, 0.5]], ["x", "y"])
        b = MarkovPolicy([[0.5, 0.5]], ["x", "y"])
        c = MarkovPolicy([[0.4, 0.6]], ["x", "y"])
        assert a == b
        assert a != c


class TestEvaluatePolicy:
    def test_horizon_and_occupancy_mass(self, example_bundle):
        policy = MarkovPolicy.constant(
            0, example_bundle.system.n_states, 2, ("s_on", "s_off")
        )
        ev = evaluate_policy(
            example_bundle.system,
            example_bundle.costs,
            policy,
            gamma=0.99,
            initial_distribution=example_bundle.initial_distribution,
        )
        assert ev.expected_horizon == pytest.approx(100.0)
        assert ev.occupancy.sum() == pytest.approx(100.0)

    def test_always_on_power_is_three_watts(self, example_bundle):
        # Holding s_on from (on, 0, 0): the SP stays on, m = 3 W always.
        policy = MarkovPolicy.constant(
            0, example_bundle.system.n_states, 2, ("s_on", "s_off")
        )
        ev = evaluate_policy(
            example_bundle.system,
            example_bundle.costs,
            policy,
            gamma=example_bundle.gamma,
            initial_distribution=example_bundle.initial_distribution,
        )
        assert ev.averages["power"] == pytest.approx(3.0, abs=1e-9)

    def test_frequencies_match_occupancy_times_policy(self, example_bundle):
        policy = MarkovPolicy(
            np.full((8, 2), 0.5), ("s_on", "s_off")
        )
        ev = evaluate_policy(
            example_bundle.system,
            example_bundle.costs,
            policy,
            gamma=0.95,
            initial_distribution=example_bundle.initial_distribution,
        )
        assert np.allclose(ev.frequencies.sum(axis=1), ev.occupancy)
        assert np.allclose(ev.frequencies[:, 0], ev.frequencies[:, 1])

    def test_average_is_total_scaled(self, example_bundle):
        policy = MarkovPolicy.constant(0, 8, 2, ("s_on", "s_off"))
        ev = evaluate_policy(
            example_bundle.system,
            example_bundle.costs,
            policy,
            gamma=0.9,
            initial_distribution=example_bundle.initial_distribution,
        )
        for name in example_bundle.costs.metric_names:
            assert ev.averages[name] == pytest.approx(ev.totals[name] * 0.1)

    def test_uniform_default_p0(self, example_bundle):
        policy = MarkovPolicy.constant(0, 8, 2, ("s_on", "s_off"))
        ev = evaluate_policy(
            example_bundle.system, example_bundle.costs, policy, gamma=0.9
        )
        assert ev.occupancy.sum() == pytest.approx(10.0)

    def test_gamma_one_rejected(self, example_bundle):
        policy = MarkovPolicy.constant(0, 8, 2, ("s_on", "s_off"))
        with pytest.raises(ValidationError):
            evaluate_policy(
                example_bundle.system, example_bundle.costs, policy, gamma=1.0
            )

    def test_shape_mismatch_rejected(self, example_bundle):
        policy = MarkovPolicy.constant(0, 4, 2)
        with pytest.raises(ValidationError, match="does not\n?.*match|match"):
            evaluate_policy(
                example_bundle.system, example_bundle.costs, policy, gamma=0.9
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_monte_carlo_series_property(self, seed):
        """Closed form equals explicit truncated series on random policies."""
        # hypothesis can't inject fixtures; rebuild the small system.
        from repro.systems import example_system

        bundle = example_system.build()
        rng = np.random.default_rng(seed)
        raw = rng.random((8, 2)) + 1e-3
        policy = MarkovPolicy(raw / raw.sum(axis=1, keepdims=True), ("s_on", "s_off"))
        gamma = 0.9
        ev = evaluate_policy(
            bundle.system, bundle.costs, policy, gamma, bundle.initial_distribution
        )
        # Truncated series for the power metric.
        P = bundle.system.chain.policy_matrix(policy.matrix)
        cost = (bundle.costs.metric("power") * policy.matrix).sum(axis=1)
        p = bundle.initial_distribution.copy()
        total = 0.0
        for t in range(400):
            total += (gamma**t) * float(p @ cost)
            p = p @ P
        assert ev.totals["power"] == pytest.approx(total, rel=1e-8)
