"""Tests for service-provider estimation from transition logs."""

import numpy as np
import pytest

from repro.estimation.provider_fit import (
    ProviderLog,
    TransitionRecord,
    fit_provider,
    sample_provider_log,
)
from repro.sim import make_rng
from repro.systems.example_system import build_provider
from repro.util.validation import ValidationError


class TestProviderLog:
    def test_append_and_iterate(self):
        log = ProviderLog()
        log.append("on", "s_off", "off", power=4.0, serviced=False)
        assert len(log) == 1
        record = next(iter(log))
        assert record.next_state == "off"
        assert record.power == 4.0

    def test_accepts_dict_records(self):
        log = ProviderLog(
            [{"state": "on", "command": "s_on", "next_state": "on"}]
        )
        assert log.records[0].power is None

    def test_rejects_malformed_records(self):
        with pytest.raises(ValidationError):
            ProviderLog([{"state": "on"}])
        with pytest.raises(ValidationError):
            ProviderLog([42])

    def test_jsonl_round_trip(self, tmp_path):
        log = sample_provider_log(build_provider(), 100, make_rng(0))
        path = tmp_path / "provider.jsonl"
        log.save_jsonl(path)
        loaded = ProviderLog.load_jsonl(path)
        assert len(loaded) == len(log)
        assert loaded.records[0] == log.records[0]

    def test_jsonl_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValidationError):
            ProviderLog.load_jsonl(path)

    def test_record_to_dict_omits_missing_labels(self):
        record = TransitionRecord("on", "s_on", "on")
        assert "power" not in record.to_dict()


class TestFitProvider:
    def test_round_trip_recovery(self):
        """Fitting a sampled log recovers the generating provider."""
        true = build_provider()
        log = sample_provider_log(true, 40_000, make_rng(1), power_noise=0.05)
        fit = fit_provider(
            log, states=true.state_names, commands=true.command_names
        )
        for command in true.command_names:
            fitted = fit.provider.chain.matrix(command)
            truth = true.chain.matrix(command)
            assert np.abs(fitted - truth).max() < 0.02
        assert fit.provider.power("on", "s_on") == pytest.approx(3.0, abs=0.02)
        assert fit.provider.service_rate("on", "s_on") == pytest.approx(
            0.8, abs=0.02
        )

    def test_expected_transition_times(self):
        true = build_provider()
        log = sample_provider_log(true, 30_000, make_rng(2))
        fit = fit_provider(
            log, states=true.state_names, commands=true.command_names
        )
        # True P(off -> on | s_on) = 0.1 -> E[T] = 10 slices (Eq. 2).
        assert fit.expected_transition_time("off", "on", "s_on") == (
            pytest.approx(10.0, rel=0.15)
        )
        assert "expected_slices" in fit.transition_time_table()

    def test_first_seen_ordering(self):
        log = ProviderLog()
        log.append("sleep", "wake", "active")
        log.append("active", "rest", "sleep")
        fit = fit_provider(log)
        assert fit.provider.state_names == ("sleep", "active")
        assert fit.provider.command_names == ("wake", "rest")

    def test_unobserved_rows_hold_state(self):
        log = ProviderLog()
        for _ in range(5):
            log.append("a", "go", "b")
            log.append("b", "go", "a")
        fit = fit_provider(log, states=["a", "b"], commands=["go", "stay"])
        # The "stay" command was never observed: identity completion.
        assert fit.provider.chain.matrix("stay")[0, 0] == 1.0

    def test_defaults_fill_unlabeled_cells(self):
        log = ProviderLog()
        log.append("a", "go", "a")  # no power/service labels
        fit = fit_provider(
            log, default_power=2.5, default_service_rate=0.25
        )
        assert fit.provider.power("a", "go") == 2.5
        assert fit.provider.service_rate("a", "go") == 0.25
        assert int(fit.power_counts.sum()) == 0

    def test_noisy_zero_power_is_clamped(self):
        log = ProviderLog()
        log.append("a", "go", "a", power=-0.01)
        fit = fit_provider(log)
        assert fit.provider.power("a", "go") == 0.0

    def test_smoothing_spreads_mass(self):
        log = ProviderLog()
        for _ in range(10):
            log.append("a", "go", "a")
        fit = fit_provider(log, states=["a", "b"], commands=["go"],
                           smoothing=1.0)
        assert fit.provider.chain.matrix("go")[0, 1] > 0.0

    def test_empty_log_rejected(self):
        with pytest.raises(ValidationError):
            fit_provider(ProviderLog())

    def test_unknown_state_rejected(self):
        log = ProviderLog()
        log.append("mystery", "go", "a")
        with pytest.raises(ValidationError):
            fit_provider(log, states=["a"], commands=["go"])

    def test_summary_mentions_counts(self):
        log = sample_provider_log(build_provider(), 50, make_rng(3))
        assert "50 transitions" in fit_provider(log).summary()


class TestSampleProviderLog:
    def test_respects_command_sampler(self):
        log = sample_provider_log(
            build_provider(),
            20,
            make_rng(0),
            command_sampler=lambda state, rng: 0,
        )
        assert {record.command for record in log} == {"s_on"}

    def test_initial_state_by_name(self):
        log = sample_provider_log(
            build_provider(), 5, make_rng(0), initial_state="off"
        )
        assert log.records[0].state == "off"

    def test_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            sample_provider_log(build_provider(), 0, make_rng(0))
