"""Tests for the incremental Pareto sweep engine.

Covers the ISSUE-2 tentpole and satellites: cold/warm/parallel sweep
equivalence across all three LP backends (including an infeasible
prefix), solve-count regressions via a spy backend (dedupe and
bracketing), adaptive refinement, the tagged ``simulate_curve`` error
for feasible-but-policyless points, and the simplex warm-start hooks.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

import repro.lp.solve as lp_solve
from repro.core.average_cost import AverageCostOptimizer
from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer
from repro.core.pareto import min_achievable, simulate_curve, trade_off_curve
from repro.core.pareto_sweep import ParetoSweepSolver, SweepStats
from repro.util.validation import ValidationError

#: Sweep with duplicates and an infeasible prefix (the example system's
#: penalty floor is ~0.163).
SWEEP_BOUNDS = [0.05, 0.08, 0.1, 0.12, 0.15, 0.2, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9]
ALL_BACKENDS = ("scipy", "interior-point", "simplex")


def _make_optimizer(bundle, backend="scipy"):
    return PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        backend=backend,
    )


def _cold_reference(optimizer, bounds):
    """The seed's per-bound cold loop over the unique sorted bounds."""
    out = []
    for bound in sorted(set(bounds)):
        result = optimizer.optimize(POWER, "min", upper_bounds={PENALTY: bound})
        out.append(result)
    return out


@pytest.fixture()
def spy_backend(monkeypatch):
    """Count LP solves going through the scipy backend."""
    counter = {"solves": 0}
    original = lp_solve._BACKENDS["scipy"]

    def counting(problem, warm_start=None):
        counter["solves"] += 1
        return original(problem, warm_start=warm_start)

    monkeypatch.setitem(lp_solve._BACKENDS, "scipy", counting)
    return counter


class TestEquivalence:
    """Cold vs warm-started vs parallel sweeps produce identical curves."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_engine_matches_cold_loop(self, example_bundle, backend):
        reference = _cold_reference(
            _make_optimizer(example_bundle, backend), SWEEP_BOUNDS
        )
        curve = trade_off_curve(
            _make_optimizer(example_bundle, backend), SWEEP_BOUNDS
        )
        assert len(curve.points) == len(reference)
        for ref, point in zip(reference, curve.points):
            assert ref.feasible == point.feasible
            if ref.feasible:
                assert point.objective == pytest.approx(
                    ref.objective_average, abs=1e-8
                )
                assert np.allclose(
                    point.policy.matrix, ref.policy.matrix, atol=1e-6
                )
            else:
                assert point.objective is None
                assert point.policy is None

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_warm_matches_cold_engine(self, example_bundle, backend):
        cold = trade_off_curve(
            _make_optimizer(example_bundle, backend),
            SWEEP_BOUNDS,
            warm_start=False,
            bracket=False,
        )
        warm = trade_off_curve(
            _make_optimizer(example_bundle, backend), SWEEP_BOUNDS
        )
        assert [p.bound for p in cold.points] == [p.bound for p in warm.points]
        for p_cold, p_warm in zip(cold.points, warm.points):
            assert p_cold.feasible == p_warm.feasible
            if p_cold.feasible:
                assert p_warm.objective == pytest.approx(
                    p_cold.objective, abs=1e-8
                )
                assert np.allclose(
                    p_warm.policy.matrix, p_cold.policy.matrix, atol=1e-6
                )

    def test_parallel_matches_serial(self, example_bundle):
        serial = trade_off_curve(_make_optimizer(example_bundle), SWEEP_BOUNDS)
        parallel = trade_off_curve(
            _make_optimizer(example_bundle), SWEEP_BOUNDS, n_jobs=2
        )
        for p_serial, p_parallel in zip(serial.points, parallel.points):
            assert p_serial.feasible == p_parallel.feasible
            if p_serial.feasible:
                assert p_parallel.objective == pytest.approx(
                    p_serial.objective, abs=1e-10
                )
                assert np.allclose(
                    p_parallel.policy.matrix, p_serial.policy.matrix, atol=1e-9
                )

    def test_infeasible_prefix_is_flagged(self, example_bundle):
        optimizer = _make_optimizer(example_bundle)
        floor = min_achievable(optimizer, PENALTY)
        curve = trade_off_curve(optimizer, SWEEP_BOUNDS)
        for point in curve.points:
            assert point.feasible == (point.bound >= floor - 1e-9)

    def test_average_cost_optimizer_sweeps(self, example_bundle):
        optimizer = AverageCostOptimizer(
            example_bundle.system, example_bundle.costs, backend="simplex"
        )
        curve = trade_off_curve(optimizer, [0.1, 0.2, 0.3, 0.5, 0.9])
        assert not curve.points[0].feasible
        assert curve.is_convex()
        assert curve.is_non_increasing()


class TestLowerBoundSweep:
    def test_throughput_sweep_matches_direct_solves(self, web_bundle):
        optimizer = _make_optimizer(web_bundle)
        bounds = [0.02, 0.08, 0.14, 0.20]
        solver = ParetoSweepSolver(
            optimizer,
            objective=POWER,
            constraint="throughput",
            constraint_sense=">=",
        )
        curve = solver.solve(bounds)
        for bound, point in zip(bounds, curve.points):
            direct = optimizer.optimize(
                POWER, "min", lower_bounds={"throughput": bound}
            )
            assert point.feasible == direct.feasible
            if direct.feasible:
                assert point.objective == pytest.approx(
                    direct.objective_average, abs=1e-10
                )

    def test_bad_sense_rejected(self, example_bundle):
        with pytest.raises(ValidationError, match="constraint_sense"):
            ParetoSweepSolver(
                _make_optimizer(example_bundle), constraint_sense="=="
            )


class TestDedupe:
    def test_duplicate_bounds_solved_once(self, example_bundle, spy_backend):
        optimizer = _make_optimizer(example_bundle)
        curve = trade_off_curve(
            optimizer, [0.5, 0.5, 0.5, 0.5 + 1e-12, 0.9], bracket=False
        )
        # 0.5 appears four times (one within tolerance); one point each.
        assert [p.bound for p in curve.points] == [0.5, 0.9]
        assert spy_backend["solves"] == 2
        assert curve.stats.n_deduped == 3
        assert curve.stats.n_solves == 2

    def test_near_duplicates_outside_tolerance_kept(self, example_bundle):
        curve = trade_off_curve(
            _make_optimizer(example_bundle), [0.5, 0.500001, 0.9]
        )
        assert len(curve.points) == 3


class TestBracketing:
    def test_infeasible_prefix_skips_solves(self, example_bundle, spy_backend):
        optimizer = _make_optimizer(example_bundle)
        infeasible = list(np.linspace(0.01, 0.15, 10))  # floor is ~0.163
        feasible = [0.2, 0.4, 0.9]
        curve = trade_off_curve(optimizer, infeasible + feasible)
        assert sum(not p.feasible for p in curve.points) == 10
        assert sum(p.feasible for p in curve.points) == 3
        # The cold loop would need 13 solves; bisection needs far fewer.
        assert spy_backend["solves"] < 13
        assert curve.stats.n_bracket_skipped > 0
        assert (
            curve.stats.n_solves + curve.stats.n_bracket_skipped
            == curve.stats.n_unique
        )

    def test_all_infeasible_sweep(self, example_bundle, spy_backend):
        curve = trade_off_curve(
            _make_optimizer(example_bundle), [0.01, 0.05, 0.1, 0.12]
        )
        assert all(not p.feasible for p in curve.points)
        # One probe at the loosest bound proves the whole sweep infeasible.
        assert spy_backend["solves"] == 1

    def test_bracketing_results_match_unbracketed(self, example_bundle):
        bounds = list(np.linspace(0.01, 0.15, 6)) + [0.2, 0.5, 0.9]
        bracketed = trade_off_curve(_make_optimizer(example_bundle), bounds)
        plain = trade_off_curve(
            _make_optimizer(example_bundle), bounds, bracket=False
        )
        for p_b, p_p in zip(bracketed.points, plain.points):
            assert p_b.feasible == p_p.feasible
            if p_b.feasible:
                assert p_b.objective == pytest.approx(p_p.objective, abs=1e-8)


class TestRefine:
    def test_refine_densifies_largest_gap(self, example_bundle):
        optimizer = _make_optimizer(example_bundle, "simplex")
        solver = ParetoSweepSolver(optimizer)
        base = solver.solve([0.2, 0.9])
        refined = solver.solve([0.2, 0.9], refine=3)
        assert len(refined.points) == len(base.points) + 3
        assert refined.stats.n_refined == 3
        bounds = [p.bound for p in refined.points]
        assert bounds == sorted(bounds)
        assert refined.is_convex()
        assert refined.is_non_increasing()

    def test_refined_points_match_direct_solves(self, example_bundle):
        optimizer = _make_optimizer(example_bundle, "simplex")
        refined = ParetoSweepSolver(optimizer).solve([0.2, 0.9], refine=2)
        direct = _make_optimizer(example_bundle)
        for point in refined.points:
            result = direct.optimize(
                POWER, "min", upper_bounds={PENALTY: point.bound}
            )
            assert point.objective == pytest.approx(
                result.objective_average, abs=1e-8
            )

    def test_refine_zero_is_default(self, example_bundle):
        solver = ParetoSweepSolver(_make_optimizer(example_bundle))
        curve = solver.solve([0.3, 0.6])
        assert len(curve.points) == 2
        assert curve.stats.n_refined == 0

    def test_negative_refine_rejected(self, example_bundle):
        solver = ParetoSweepSolver(_make_optimizer(example_bundle))
        with pytest.raises(ValidationError, match="refine"):
            solver.solve([0.3, 0.6], refine=-1)


class TestSweepStats:
    def test_stats_attached_to_curve(self, example_bundle):
        curve = trade_off_curve(_make_optimizer(example_bundle), [0.3, 0.6])
        assert isinstance(curve.stats, SweepStats)
        assert curve.stats.n_requested == 2
        assert set(curve.stats.as_dict()) == {
            "n_requested",
            "n_unique",
            "n_solves",
            "n_warm",
            "n_cold",
            "n_deduped",
            "n_bracket_skipped",
            "n_refined",
            "lp_iterations",
            "lp_refactorizations",
        }

    def test_warm_solves_counted_on_simplex(self, example_bundle):
        curve = trade_off_curve(
            _make_optimizer(example_bundle, "simplex"),
            [0.3, 0.4, 0.5, 0.6, 0.7],
        )
        assert curve.stats.n_warm > 0
        assert curve.stats.n_warm + curve.stats.n_cold == curve.stats.n_solves

    def test_no_warm_solves_on_scipy(self, example_bundle):
        curve = trade_off_curve(
            _make_optimizer(example_bundle), [0.3, 0.5, 0.7]
        )
        assert curve.stats.n_warm == 0

    def test_empty_bounds_rejected(self, example_bundle):
        solver = ParetoSweepSolver(_make_optimizer(example_bundle))
        with pytest.raises(ValidationError, match="at least one"):
            solver.solve([])


class TestSimulateCurveTaggedError:
    def test_feasible_point_without_policy_raises(self, example_bundle):
        curve = trade_off_curve(
            _make_optimizer(example_bundle), [0.3, 0.6], bracket=False
        )
        curve.points[1].policy = None  # corrupt: feasible but no policy
        with pytest.raises(ValidationError, match="feasible but"):
            simulate_curve(
                curve,
                example_bundle.system,
                example_bundle.costs,
                100,
                rng=0,
            )

    def test_intact_curve_simulates(self, example_bundle):
        curve = trade_off_curve(
            _make_optimizer(example_bundle), [0.1, 0.3, 0.6]
        )
        results = simulate_curve(
            curve, example_bundle.system, example_bundle.costs, 200, rng=0
        )
        assert results[0] is None  # 0.1 is below the feasibility floor
        assert results[1] is not None and results[2] is not None


class TestLexicographicFallback:
    """The greedy-service fallback must order lexicographically."""

    @staticmethod
    def _fake_system(rates, power):
        rates = np.asarray(rates, dtype=float)
        provider = SimpleNamespace(
            service_rate_matrix=rates, power_matrix=np.asarray(power, float)
        )
        return SimpleNamespace(
            provider=provider,
            provider_index_of_state=np.arange(rates.shape[0]),
            n_states=rates.shape[0],
            n_commands=rates.shape[1],
        )

    def test_huge_power_does_not_override_rate(self):
        # Old scoring ``rates - 1e-9 * power`` picks command 1 here:
        # 1e-9 * 1e6 = 1e-3 dwarfs the 1e-12 rate gap.  Lexicographic
        # ordering must pick command 0, the strictly higher rate.
        system = self._fake_system(
            rates=[[1.0, 1.0 - 1e-12]], power=[[1e6, 0.0]]
        )
        commands = PolicyOptimizer._fallback_commands(
            system, "greedy-service", None
        )
        assert commands.tolist() == [0]

    def test_rate_tie_broken_by_lower_power(self):
        system = self._fake_system(
            rates=[[1.0, 1.0, 0.5]], power=[[3.0, 2.0, 0.0]]
        )
        commands = PolicyOptimizer._fallback_commands(
            system, "greedy-service", None
        )
        assert commands.tolist() == [1]

    def test_full_tie_prefers_lowest_index(self):
        system = self._fake_system(rates=[[1.0, 1.0]], power=[[2.0, 2.0]])
        commands = PolicyOptimizer._fallback_commands(
            system, "greedy-service", None
        )
        assert commands.tolist() == [0]

    def test_mask_excludes_commands(self):
        system = self._fake_system(
            rates=[[1.0, 0.9], [1.0, 0.9]], power=[[1.0, 0.0], [1.0, 0.0]]
        )
        mask = np.array([[False, True], [True, True]])
        commands = PolicyOptimizer._fallback_commands(
            system, "greedy-service", mask
        )
        assert commands.tolist() == [1, 0]

    def test_matches_exact_evaluation_on_example(self, example_bundle):
        # On the running example the old heuristic and the exact
        # ordering agree — the fix must not perturb it.
        commands = PolicyOptimizer._fallback_commands(
            example_bundle.system, "greedy-service", None
        )
        rates = example_bundle.system.provider.service_rate_matrix[
            example_bundle.system.provider_index_of_state
        ]
        for state, command in enumerate(commands):
            assert rates[state, command] == rates[state].max()


class TestSweepValidation:
    def test_rejects_optimizer_without_lp_surface(self):
        with pytest.raises(ValidationError, match="build_lp"):
            ParetoSweepSolver(SimpleNamespace())

    def test_rejects_bad_n_jobs(self, example_bundle):
        with pytest.raises(ValidationError, match="n_jobs"):
            ParetoSweepSolver(_make_optimizer(example_bundle), n_jobs=0)

    def test_rejects_non_finite_bounds(self, example_bundle):
        solver = ParetoSweepSolver(_make_optimizer(example_bundle))
        with pytest.raises(ValidationError, match="finite"):
            solver.solve([0.3, float("nan")])
