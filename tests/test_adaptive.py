"""Tests for the adaptive policy manager (the paper's future-work item)."""

import pytest

from repro.experiments.fig10_nonstationary import build_nonstationary_trace
from repro.core.optimizer import PolicyOptimizer
from repro.policies import AdaptivePolicyAgent, StationaryPolicyAgent
from repro.sim import make_rng, simulate
from repro.sim.trace_sim import simulate_trace
from repro.systems import cpu, example_system
from repro.systems.cpu import build_provider, reactive_wake_mask
from repro.util.validation import ValidationError


def cpu_adaptive_agent(penalty_bound=0.02, window=4000, refit_every=1000):
    return AdaptivePolicyAgent(
        provider=build_provider(),
        queue_capacity=0,
        optimize=lambda o: o.minimize_power(penalty_bound=penalty_bound),
        window=window,
        refit_every=refit_every,
        fallback_command=0,
        build_costs=cpu.standard_costs,
        action_mask_builder=reactive_wake_mask,
    )


class TestLifecycle:
    def test_fallback_until_first_fit(self, rng):
        agent = cpu_adaptive_agent(window=200, refit_every=100)
        agent.reset()
        from repro.policies.base import Observation

        # Before any window fills, the agent issues the fallback command.
        for t in range(50):
            command = agent.select_command(
                Observation(0, 0, 0, 0, t), rng
            )
            assert command == 0
        assert agent.refits == 0

    def test_refits_happen(self, example_bundle, rng):
        agent = AdaptivePolicyAgent(
            provider=example_system.build_provider(),
            queue_capacity=1,
            optimize=lambda o: o.minimize_power(penalty_bound=0.5, loss_bound=0.25),
            window=1000,
            refit_every=500,
            fallback_command=0,
        )
        simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            4000,
            rng,
            initial_state=("on", "0", 0),
        )
        assert agent.refits >= 5
        assert agent.current_policy is not None


class TestEstimatorMode:
    """Refitting through the estimation layer instead of fixed memory."""

    def make_agent(self, estimator):
        return AdaptivePolicyAgent(
            provider=example_system.build_provider(),
            queue_capacity=1,
            optimize=lambda o: o.minimize_power(
                penalty_bound=0.5, loss_bound=0.25
            ),
            window=600,
            refit_every=300,
            fallback_command=0,
            estimator=estimator,
        )

    def test_bic_string_builds_default_estimator(self, example_bundle, rng):
        agent = self.make_agent("bic")
        assert "chain-estimator" in agent.describe()
        simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            1500,
            rng,
            initial_state=("on", "0", 0),
        )
        assert agent.refits >= 1
        assert agent.fitted_memory in (1, 2, 3)

    def test_custom_estimator_is_used(self, example_bundle, rng):
        from repro.estimation import ArrivalChainEstimator

        estimator = ArrivalChainEstimator(memories=(2,))
        agent = self.make_agent(estimator)
        simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            1500,
            rng,
            initial_state=("on", "0", 0),
        )
        assert agent.refits >= 1
        assert agent.fitted_memory == 2
        assert estimator.last_selection is not None

    def test_estimator_refits_route_through_cache(
        self, example_bundle, rng
    ):
        from repro.runtime.policy_cache import PolicyCache

        cache = PolicyCache()
        agent = AdaptivePolicyAgent(
            provider=example_system.build_provider(),
            queue_capacity=1,
            optimize=lambda o: o.minimize_power(
                penalty_bound=0.5, loss_bound=0.25
            ),
            window=400,
            refit_every=200,
            fallback_command=0,
            estimator="bic",
            policy_cache=cache,
        )
        simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            1600,
            rng,
            initial_state=("on", "0", 0),
        )
        assert agent.refits >= 2
        assert cache.stats.hits + cache.stats.misses >= agent.refits

    def test_invalid_estimator_rejected(self):
        with pytest.raises(ValidationError):
            self.make_agent(estimator=42)

    def test_fitted_memory_none_before_first_fit(self):
        agent = self.make_agent("bic")
        assert agent.fitted_memory is None
        agent.reset()
        assert agent.fitted_memory is None
        assert agent.current_policy is None

    def test_reset_clears_state(self, rng):
        agent = cpu_adaptive_agent(window=100, refit_every=50)
        from repro.policies.base import Observation

        agent.reset()
        for t in range(300):
            agent.select_command(Observation(0, 0, 0, t % 2, t), rng)
        assert agent.refits > 0
        agent.reset()
        assert agent.refits == 0
        assert agent.current_policy is None

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            cpu_adaptive_agent(window=5)
        with pytest.raises(ValidationError):
            AdaptivePolicyAgent(
                provider=build_provider(),
                queue_capacity=0,
                optimize=lambda o: o.minimize_power(penalty_bound=0.1),
                refit_every=0,
            )

    def test_describe(self):
        agent = cpu_adaptive_agent(window=100, refit_every=50)
        assert "adaptive" in agent.describe()


class TestStationaryConvergence:
    def test_matches_static_optimum_on_markovian_workload(self):
        """On a truly Markovian workload, the adaptive agent's refit
        model converges to the truth and its power approaches the
        static optimum computed with the true model."""
        bundle = cpu.build()
        static_opt = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=bundle.gamma,
            initial_distribution=bundle.initial_distribution,
            action_mask=bundle.action_mask,
        )
        static = static_opt.minimize_power(penalty_bound=0.03).require_feasible()
        static_sim = simulate(
            bundle.system,
            bundle.costs,
            StationaryPolicyAgent(bundle.system, static.policy),
            60_000,
            make_rng(4),
            initial_state=("active", "idle", 0),
        )
        agent = cpu_adaptive_agent(penalty_bound=0.03, window=6000, refit_every=2000)
        adaptive_sim = simulate(
            bundle.system,
            bundle.costs,
            agent,
            60_000,
            make_rng(4),
            initial_state=("active", "idle", 0),
        )
        assert agent.refits > 10
        # Within noise of the static optimum — no adaptivity penalty.
        assert adaptive_sim.averages["power"] == pytest.approx(
            static_sim.averages["power"], rel=0.15, abs=0.03
        )


class TestNonstationaryTracking:
    """On the Fig. 10 regime-switching workload the adaptive manager's
    advantage is *constraint enforcement*: the static policy, optimized
    against the blended model, spends its whole penalty budget in one
    regime (violating the bound there), while the adaptive agent meets
    the bound in every regime at competitive power."""

    BOUND = 0.01

    @pytest.fixture(scope="class")
    def setup(self):
        rng = make_rng(0)
        trace = build_nonstationary_trace(60_000, rng)
        counts = trace.discretize(cpu.TIME_RESOLUTION)
        bundle = cpu.build_from_trace(trace)
        model = bundle.metadata["sr_model"]
        sleep_idx = bundle.metadata["sleep_state_index"]

        def penalty_fn(s, q, z):
            return 1.0 if (s == sleep_idx and z > 0) else 0.0

        def replay(agent, segment):
            return simulate_trace(
                bundle.system,
                agent,
                segment,
                make_rng(1),
                tracker=model.tracker(),
                penalty_fn=penalty_fn,
                initial_provider_state="active",
            )

        return bundle, counts, replay

    def test_static_violates_bound_per_regime(self, setup):
        bundle, counts, replay = setup
        half = counts.size // 2
        optimizer = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=bundle.gamma,
            initial_distribution=bundle.initial_distribution,
            action_mask=bundle.action_mask,
        )
        static = optimizer.minimize_power(
            penalty_bound=self.BOUND
        ).require_feasible()
        editing = replay(
            StationaryPolicyAgent(bundle.system, static.policy), counts[:half]
        )
        # The blended model hides the editing regime's exposure: the
        # bound is violated there by a wide margin.
        assert editing.mean_penalty > 1.3 * self.BOUND

    def test_adaptive_enforces_bound_in_every_regime(self, setup):
        bundle, counts, replay = setup
        half = counts.size // 2
        for segment in (counts[:half], counts[half:], counts):
            agent = cpu_adaptive_agent(
                penalty_bound=self.BOUND, window=4000, refit_every=1000
            )
            result = replay(agent, segment)
            assert result.mean_penalty <= 1.15 * self.BOUND
            assert agent.refits > 10

    def test_adaptive_power_competitive_with_compliant_static(self, setup):
        """Among static policies that actually meet the per-regime
        bound, none saves meaningfully more power than the adaptive."""
        bundle, counts, replay = setup
        half = counts.size // 2
        optimizer = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=bundle.gamma,
            initial_distribution=bundle.initial_distribution,
            action_mask=bundle.action_mask,
        )
        compliant_powers = []
        for bound in (0.002, 0.004, 0.006, 0.008, 0.01):
            result = optimizer.minimize_power(penalty_bound=bound)
            if not result.feasible:
                continue
            agent = StationaryPolicyAgent(bundle.system, result.policy)
            worst = replay(agent, counts[:half]).mean_penalty
            if worst <= 1.05 * self.BOUND:
                agent = StationaryPolicyAgent(bundle.system, result.policy)
                compliant_powers.append(replay(agent, counts).mean_power)
        assert compliant_powers, "no compliant static policy found"

        adaptive = cpu_adaptive_agent(
            penalty_bound=self.BOUND, window=4000, refit_every=1000
        )
        adaptive_power = replay(adaptive, counts).mean_power
        assert adaptive_power <= min(compliant_powers) + 0.01
