"""Tests for the tool layer: specs, the Fig. 7 pipeline, and the CLI."""

import json

import pytest

from repro.sim import make_rng
from repro.tool.cli import main as cli_main
from repro.tool.pipeline import optimize_spec, run_pipeline
from repro.tool.spec import load_spec, parse_spec
from repro.traces import Trace, mmpp2_trace
from repro.util.validation import ValidationError


def example_spec_dict() -> dict:
    return {
        "name": "example",
        "gamma": 0.99999,
        "queue_capacity": 1,
        "time_resolution": 1.0,
        "provider": {
            "states": ["on", "off"],
            "commands": ["s_on", "s_off"],
            "transitions": {
                "s_on": [[1.0, 0.0], [0.1, 0.9]],
                "s_off": [[0.2, 0.8], [0.0, 1.0]],
            },
            "service_rates": [[0.8, 0.0], [0.0, 0.0]],
            "power": [[3.0, 4.0], [4.0, 0.0]],
        },
        "requester": {
            "states": ["0", "1"],
            "transitions": [[0.95, 0.05], [0.15, 0.85]],
            "arrivals": [0, 1],
        },
        "initial_state": ["on", "0", 0],
        "objective": "power",
        "constraints": {"penalty": 0.5, "loss": 0.2},
    }


class TestSpecParsing:
    def test_roundtrip(self):
        spec = parse_spec(example_spec_dict())
        assert spec.name == "example"
        assert spec.provider.n_states == 2
        assert spec.requester.n_states == 2
        assert spec.constraints == {"penalty": 0.5, "loss": 0.2}

    def test_compose(self):
        spec = parse_spec(example_spec_dict())
        system, costs, p0 = spec.compose()
        assert system.n_states == 8
        assert costs.has_metric("power")
        assert p0[system.state_index("on", "0", 0)] == 1.0

    def test_missing_provider(self):
        raw = example_spec_dict()
        del raw["provider"]
        with pytest.raises(ValidationError, match="provider"):
            parse_spec(raw)

    def test_missing_provider_field(self):
        raw = example_spec_dict()
        del raw["provider"]["power"]
        with pytest.raises(ValidationError, match="power"):
            parse_spec(raw)

    def test_bad_gamma(self):
        raw = example_spec_dict()
        raw["gamma"] = 1.5
        with pytest.raises(ValidationError, match="gamma"):
            parse_spec(raw)

    def test_bad_initial_state(self):
        raw = example_spec_dict()
        raw["initial_state"] = ["on", "0"]
        with pytest.raises(ValidationError, match="initial_state"):
            parse_spec(raw)

    def test_stochastic_error_propagates(self):
        raw = example_spec_dict()
        raw["provider"]["transitions"]["s_on"] = [[0.5, 0.4], [0.1, 0.9]]
        with pytest.raises(ValidationError):
            parse_spec(raw)

    def test_requester_optional(self):
        raw = example_spec_dict()
        raw["requester"] = None
        spec = parse_spec(raw)
        assert spec.requester is None
        with pytest.raises(ValidationError, match="no requester"):
            spec.compose()

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(example_spec_dict()))
        spec = load_spec(path)
        assert spec.name == "example"

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="JSON"):
            load_spec(path)


class TestPipeline:
    def test_optimize_spec(self):
        spec = parse_spec(example_spec_dict())
        optimizer, result = optimize_spec(spec)
        result.require_feasible()
        assert result.average("power") == pytest.approx(1.7383, abs=2e-3)

    def test_optimize_spec_average_formulation(self):
        spec = parse_spec(example_spec_dict())
        _, result = optimize_spec(spec, formulation="average")
        result.require_feasible()
        # Long-run average optimum sits next to the discounted one at
        # gamma = 0.99999.
        assert result.average("power") == pytest.approx(1.7386, abs=2e-3)
        assert result.evaluation.expected_horizon == float("inf")

    def test_optimize_spec_unknown_formulation(self):
        spec = parse_spec(example_spec_dict())
        with pytest.raises(ValidationError, match="formulation"):
            optimize_spec(spec, formulation="quantum")

    def test_waiting_metric_constraint(self):
        raw = example_spec_dict()
        raw["constraints"] = {"waiting": 2.0, "loss": 0.2}
        spec = parse_spec(raw)
        _, result = optimize_spec(spec)
        result.require_feasible()
        assert result.average("waiting") <= 2.0 + 1e-7
        rate = 0.25  # stationary arrival rate of the example workload
        assert result.average("penalty") == pytest.approx(
            result.average("waiting") * rate, rel=1e-9
        )

    def test_pipeline_without_trace(self):
        spec = parse_spec(example_spec_dict())
        report = run_pipeline(spec, rng=make_rng(0), verify_slices=20_000)
        assert report.optimization.feasible
        assert report.markov_simulation is not None
        assert report.trace_simulation is None
        assert report.markov_simulation.averages["power"] == pytest.approx(
            report.optimization.average("power"), rel=0.15, abs=0.1
        )

    def test_pipeline_with_trace_extraction(self):
        spec = parse_spec(example_spec_dict())
        spec.requester = None  # force extraction
        trace = mmpp2_trace(0.95, 0.85, 60_000, 1.0, make_rng(1))
        report = run_pipeline(
            spec, trace=trace, rng=make_rng(2), verify_slices=20_000
        )
        assert report.sr_model is not None
        assert report.sr_model.matrix[0, 0] == pytest.approx(0.95, abs=0.02)
        assert report.optimization.feasible
        assert report.trace_simulation is not None
        # Trace-driven power agrees with the model prediction (the
        # workload really is Markovian here).
        assert report.trace_simulation.mean_power == pytest.approx(
            report.optimization.average("power"), rel=0.15, abs=0.1
        )

    def test_pipeline_infeasible_constraints(self):
        spec = parse_spec(example_spec_dict())
        spec.constraints = {"penalty": 0.01}
        report = run_pipeline(spec, rng=make_rng(0))
        assert not report.optimization.feasible
        assert "INFEASIBLE" in report.summary()

    def test_pipeline_no_verification(self):
        spec = parse_spec(example_spec_dict())
        report = run_pipeline(spec, rng=None)
        assert report.markov_simulation is None
        assert report.optimization.feasible

    def test_summary_renders(self):
        spec = parse_spec(example_spec_dict())
        report = run_pipeline(spec, rng=make_rng(0), verify_slices=5000)
        text = report.summary()
        assert "power" in text
        assert "analytic" in text


class TestCLI:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(example_spec_dict()))
        return str(path)

    def test_optimize(self, spec_file, capsys):
        code = cli_main(["optimize", spec_file, "--no-verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "policy: randomized" in out

    def test_optimize_print_policy(self, spec_file, capsys):
        code = cli_main(["optimize", spec_file, "--no-verify", "--print-policy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(on,0,0)" in out

    def test_optimize_average_formulation(self, spec_file, capsys):
        code = cli_main(["optimize", spec_file, "--no-verify", "--average"])
        out = capsys.readouterr().out
        assert code == 0
        assert "policy: randomized" in out

    def test_optimize_profile(self, spec_file, capsys):
        code = cli_main(
            [
                "optimize",
                spec_file,
                "--no-verify",
                "--lp-backend",
                "simplex",
                "--profile",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lp solve profile" in out
        assert "iterations" in out and "refactorizations" in out
        assert "fill-in" in out and "pricing" in out

    def test_optimize_profile_backend_without_stats(self, spec_file, capsys):
        code = cli_main(
            [
                "optimize",
                spec_file,
                "--no-verify",
                "--lp-backend",
                "interior-point",
                "--profile",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "reported no solve statistics" in out

    def test_optimize_infeasible_exit_code(self, spec_file, tmp_path, capsys):
        raw = example_spec_dict()
        raw["constraints"] = {"penalty": 0.001}
        bad = tmp_path / "bad_spec.json"
        bad.write_text(json.dumps(raw))
        assert cli_main(["optimize", str(bad), "--no-verify"]) == 1

    def test_pareto(self, spec_file, capsys):
        code = cli_main(
            ["pareto", spec_file, "--bounds", "0.3,0.5,0.7", "--constraint", "penalty"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trade-off curve" in out
        assert out.count("yes") == 3

    def test_pareto_profile(self, spec_file, capsys):
        code = cli_main(
            [
                "pareto",
                spec_file,
                "--bounds",
                "0.3,0.5,0.7",
                "--constraint",
                "penalty",
                "--lp-backend",
                "simplex",
                "--profile",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "simplex iterations" in out
        assert "refactorizations across" in out
        assert "representative solve" in out

    def test_experiment_list(self, capsys):
        code = cli_main(["experiment", "list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig8" in out
        assert "table1" in out

    def test_experiment_run(self, capsys):
        code = cli_main(["experiment", "table1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Travelstar" in out

    def test_experiment_unknown_id(self, capsys):
        code = cli_main(["experiment", "fig99"])
        assert code == 2

    def test_experiment_backend_flags_forwarded(self, capsys):
        # fig9a accepts both flags; table1 accepts neither — both must
        # run (the registry forwards only what a driver's signature
        # takes).
        code = cli_main(
            ["experiment", "fig9a", "--backend", "vector", "--lp-backend", "scipy"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "web server" in out
        assert cli_main(["experiment", "table1", "--backend", "loop"]) == 0

    def test_fleet_run(self, capsys, tmp_path):
        spec = {
            "name": "cli-test",
            "slices_per_tick": 50,
            "groups": [
                {
                    "id": "ex",
                    "count": 3,
                    "system": "example",
                    "agent": {"type": "optimal", "penalty_bound": 0.5},
                    "seed": 1,
                }
            ],
        }
        spec_path = tmp_path / "fleet.json"
        spec_path.write_text(json.dumps(spec))
        telemetry = tmp_path / "telemetry.jsonl"
        checkpoint = tmp_path / "fleet.ckpt"
        code = cli_main(
            [
                "fleet",
                str(spec_path),
                "--ticks",
                "2",
                "--telemetry",
                str(telemetry),
                "--checkpoint",
                str(checkpoint),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 devices" in out
        assert "1 batch group(s)" in out
        assert len(telemetry.read_text().splitlines()) == 2
        assert checkpoint.exists()

        # Resume continues from the checkpoint and appends telemetry.
        code = cli_main(
            [
                "fleet",
                "--resume",
                str(checkpoint),
                "--ticks",
                "1",
                "--telemetry",
                str(telemetry),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "resumed fleet" in out
        assert "after tick 3" in out
        assert len(telemetry.read_text().splitlines()) == 3

    def test_fleet_requires_spec_or_resume(self, capsys):
        assert cli_main(["fleet", "--ticks", "1"]) == 2
        assert "fleet spec is required" in capsys.readouterr().err

    def test_extract(self, tmp_path, capsys):
        trace = Trace([2, 5, 6, 7, 12], duration=13)
        path = tmp_path / "trace.txt"
        trace.save(path)
        code = cli_main(["extract", str(path), "--resolution", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 states" in out

    def test_missing_file_error(self, capsys):
        code = cli_main(["optimize", "/nonexistent/spec.json"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestFitCLI:
    """The estimation pipeline behind ``repro-dpm fit``."""

    @pytest.fixture()
    def trace_file(self, tmp_path):
        trace = mmpp2_trace(0.95, 0.85, 6000, 1.0, make_rng(0))
        path = tmp_path / "trace.txt"
        trace.save(path)
        return str(path)

    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(example_spec_dict()))
        return str(path)

    def test_report_only(self, trace_file, capsys):
        code = cli_main(["fit", trace_file, "--resolution", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "arrival-chain selection" in out
        assert "chi-square" in out

    def test_out_requires_provider(self, trace_file, tmp_path, capsys):
        code = cli_main(
            ["fit", trace_file, "--resolution", "1.0",
             "--out", str(tmp_path / "sys.json")]
        )
        assert code == 2
        assert "provider" in capsys.readouterr().err

    def test_provider_sources_are_exclusive(
        self, trace_file, spec_file, capsys
    ):
        code = cli_main(
            ["fit", trace_file, "--resolution", "1.0",
             "--provider-spec", spec_file, "--provider-log", spec_file]
        )
        assert code == 2

    def test_report_json_written(self, trace_file, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = cli_main(
            ["fit", trace_file, "--resolution", "1.0",
             "--report", str(report_path)]
        )
        assert code == 0
        document = json.loads(report_path.read_text())
        assert document["valid"] is True
        assert document["selection"]["selected"]["memory"] >= 1

    def test_provider_log_fit(self, trace_file, tmp_path, capsys):
        from repro.estimation import sample_provider_log
        from repro.systems.example_system import build_provider

        log_path = tmp_path / "provider.jsonl"
        sample_provider_log(
            build_provider(), 5000, make_rng(1)
        ).save_jsonl(log_path)
        out_path = tmp_path / "sys.json"
        code = cli_main(
            ["fit", trace_file, "--resolution", "1.0",
             "--provider-log", str(log_path), "--out", str(out_path),
             "--queue-capacity", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "provider fit" in out
        spec = load_spec(out_path)
        assert spec.provider.n_states == 2

    def test_fit_output_feeds_optimize_exactly(
        self, trace_file, spec_file, tmp_path, capsys
    ):
        """Acceptance: the fit CLI's spec reproduces the directly-built
        system's optimal power within 1e-6."""
        out_path = tmp_path / "fitted.json"
        code = cli_main(
            ["fit", trace_file, "--resolution", "1.0", "--memory", "1",
             "--smoothing", "0.0",
             "--provider-spec", spec_file, "--out", str(out_path)]
        )
        assert code == 0
        capsys.readouterr()

        # The CLI-emitted spec, solved through the optimize pipeline.
        fitted_spec = load_spec(out_path)
        _, via_cli = optimize_spec(fitted_spec)

        # The same fit constructed directly in memory.
        from repro.core.optimizer import PolicyOptimizer
        from repro.estimation import assemble_system
        from repro.traces import SRExtractor

        trace = Trace.load(trace_file)
        model = SRExtractor(memory=1, smoothing=0.0).fit_trace(trace, 1.0)
        system, costs = assemble_system(
            parse_spec(example_spec_dict()).provider, model,
            queue_capacity=1,
        )
        direct = PolicyOptimizer(
            system,
            costs,
            gamma=fitted_spec.gamma,
            initial_distribution=system.uniform_distribution(),
        ).optimize(
            "power", "min", upper_bounds={"penalty": 0.5, "loss": 0.2}
        )
        assert via_cli.feasible and direct.feasible
        assert via_cli.evaluation.averages["power"] == pytest.approx(
            direct.evaluation.averages["power"], abs=1e-6
        )

    def test_fleet_out_builds(self, trace_file, spec_file, tmp_path, capsys):
        fleet_path = tmp_path / "fleet.json"
        code = cli_main(
            ["fit", trace_file, "--resolution", "1.0",
             "--provider-spec", spec_file,
             "--fleet-out", str(fleet_path), "--count", "3"]
        )
        assert code == 0
        capsys.readouterr()
        assert (
            cli_main(
                ["fleet", str(fleet_path), "--ticks", "1",
                 "--slices-per-tick", "50"]
            )
            == 0
        )
        assert "3 devices" in capsys.readouterr().out

    def test_strict_flags_nonstationary(self, tmp_path, capsys):
        from repro.traces import merge_traces

        calm = mmpp2_trace(0.995, 0.4, 5000, 1.0, make_rng(2))
        storm = mmpp2_trace(0.5, 0.97, 5000, 1.0, make_rng(3))
        path = tmp_path / "mixed.txt"
        merge_traces([calm, storm]).save(path)
        code = cli_main(
            ["fit", str(path), "--resolution", "1.0", "--strict"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "validation: FAILED" in out
