"""Unit tests for the revised-simplex internals."""

import numpy as np
import pytest

from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import _prepare, solve, solve_standard_form


class TestPrepare:
    def test_flips_negative_rhs_rows(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([1.0, -2.0])
        A2, b2 = _prepare(A, b)
        assert np.allclose(A2[0], A[0])
        assert np.allclose(A2[1], -A[1])
        assert b2.tolist() == [1.0, 2.0]

    def test_originals_untouched(self):
        A = np.array([[1.0]])
        b = np.array([-1.0])
        _prepare(A, b)
        assert b[0] == -1.0


class TestDegenerateInstances:
    def test_highly_degenerate_cycling_guard(self):
        """A classic degenerate instance where Dantzig's rule can cycle;
        the Bland fallback guarantees termination at the optimum."""
        # Beale's cycling example (standard form, min).
        c = np.array([-0.75, 150.0, -0.02, 6.0, 0.0, 0.0, 0.0])
        A = np.array(
            [
                [0.25, -60.0, -0.04, 9.0, 1.0, 0.0, 0.0],
                [0.5, -90.0, -0.02, 3.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            ]
        )
        b = np.array([0.0, 0.0, 1.0])
        from repro.lp.problem import StandardFormLP

        std = StandardFormLP(c=c, A=A, b=b, n_original=7)
        result = solve_standard_form(std)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-0.05, abs=1e-9)

    def test_redundant_row_dropped_in_phase_one(self):
        lp = LinearProgram([1.0, 1.0, 1.0])
        lp.add_equality([1.0, 1.0, 0.0], 1.0)
        lp.add_equality([2.0, 2.0, 0.0], 2.0)  # redundant
        lp.add_equality([0.0, 0.0, 1.0], 0.5)
        result = solve(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(1.5, abs=1e-9)

    def test_equality_with_negative_rhs(self):
        lp = LinearProgram([1.0, 2.0])
        lp.add_equality([-1.0, -1.0], -1.0)  # i.e. x + y = 1
        result = solve(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(1.0, abs=1e-9)

    def test_zero_objective(self):
        lp = LinearProgram([0.0, 0.0])
        lp.add_equality([1.0, 1.0], 1.0)
        result = solve(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(0.0)

    def test_solution_feasibility_on_larger_instance(self):
        rng = np.random.default_rng(7)
        n = 12
        lp = LinearProgram(rng.random(n))
        x0 = rng.random(n)
        for _ in range(5):
            row = rng.standard_normal(n)
            lp.add_equality(row, float(row @ x0))
        for _ in range(4):
            row = rng.standard_normal(n)
            lp.add_inequality(row, float(row @ x0) + 0.5)
        result = solve(lp)
        assert result.is_optimal
        assert lp.is_feasible(result.x, tol=1e-6)
