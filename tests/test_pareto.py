"""Tests for trade-off curve exploration (paper Section IV-A, Thm 4.1)."""

import pytest

from repro.core.costs import LOSS, PENALTY, POWER
from repro.core.pareto import min_achievable, trade_off_curve


@pytest.fixture(scope="module")
def curve(example_optimizer_module):
    return trade_off_curve(
        example_optimizer_module,
        [0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9],
        objective=POWER,
        constraint=PENALTY,
    )


@pytest.fixture(scope="module")
def example_optimizer_module():
    from repro.core.optimizer import PolicyOptimizer
    from repro.systems import example_system

    bundle = example_system.build()
    return PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
    )


class TestTradeOffCurve:
    def test_sweep_covers_all_bounds(self, curve):
        assert len(curve.points) == 7

    def test_infeasible_region_detected(self, curve, example_optimizer_module):
        floor = min_achievable(example_optimizer_module, PENALTY)
        for point in curve.points:
            if point.bound < floor - 1e-9:
                assert not point.feasible
            else:
                assert point.feasible

    def test_theorem_41_convexity(self, curve):
        assert curve.is_convex()

    def test_non_increasing(self, curve):
        assert curve.is_non_increasing()

    def test_feasible_points_carry_policies(self, curve):
        for point in curve.feasible_points:
            assert point.policy is not None
            assert point.averages[PENALTY] <= point.bound + 1e-7

    def test_infeasible_points_have_no_objective(self, curve):
        for point in curve.points:
            if not point.feasible:
                assert point.objective is None
                assert point.policy is None

    def test_bounds_sorted(self, curve):
        bounds = [p.bound for p in curve.points]
        assert bounds == sorted(bounds)

    def test_extra_bounds_shift_curve_up(self, example_optimizer_module):
        free = trade_off_curve(
            example_optimizer_module, [0.4, 0.6], objective=POWER, constraint=PENALTY
        )
        constrained = trade_off_curve(
            example_optimizer_module,
            [0.4, 0.6],
            objective=POWER,
            constraint=PENALTY,
            extra_upper_bounds={LOSS: 0.18},
        )
        for p_free, p_tight in zip(free.points, constrained.points):
            if p_free.feasible and p_tight.feasible:
                assert p_tight.objective >= p_free.objective - 1e-9


class TestMinAchievable:
    def test_penalty_floor_positive(self, example_optimizer_module):
        floor = min_achievable(example_optimizer_module, PENALTY)
        # Paper Fig. 6: an infeasible region exists (~0.175 there; our
        # queue convention gives ~0.163).
        assert 0.1 < floor < 0.25

    def test_power_floor_is_switch_off_cost(self, example_optimizer_module):
        # Sleeping forever drives power to (almost) zero; the residual is
        # the discounted cost of the initial switch-off: 4 W for an
        # expected 1/0.8 slices, spread over the 1e5-slice horizon.
        floor = min_achievable(example_optimizer_module, POWER)
        assert floor == pytest.approx(4.0 * 1.25 * 1e-5, rel=1e-3)

    def test_floor_matches_curve_feasibility_edge(self, example_optimizer_module):
        floor = min_achievable(example_optimizer_module, PENALTY)
        just_below = example_optimizer_module.minimize_power(
            penalty_bound=floor * 0.98
        )
        just_above = example_optimizer_module.minimize_power(
            penalty_bound=floor * 1.02
        )
        assert not just_below.feasible
        assert just_above.feasible


class TestCurvePredicates:
    def test_convexity_detects_violation(self):
        from repro.core.pareto import ParetoCurve, ParetoPoint

        curve = ParetoCurve("power", "penalty")
        for bound, objective in [(1.0, 3.0), (2.0, 2.9), (3.0, 1.0)]:
            curve.points.append(
                ParetoPoint(bound=bound, feasible=True, objective=objective)
            )
        assert not curve.is_convex()

    def test_non_increasing_detects_violation(self):
        from repro.core.pareto import ParetoCurve, ParetoPoint

        curve = ParetoCurve("power", "penalty")
        for bound, objective in [(1.0, 1.0), (2.0, 2.0)]:
            curve.points.append(
                ParetoPoint(bound=bound, feasible=True, objective=objective)
            )
        assert not curve.is_non_increasing()

    def test_short_curves_trivially_convex(self):
        from repro.core.pareto import ParetoCurve, ParetoPoint

        curve = ParetoCurve("power", "penalty")
        curve.points.append(ParetoPoint(bound=1.0, feasible=True, objective=1.0))
        assert curve.is_convex()
        assert curve.is_non_increasing()

    def test_predicates_sort_points_by_bound(self):
        # A well-shaped curve appended out of order: judged on geometry,
        # not append order, both predicates must hold.
        from repro.core.pareto import ParetoCurve, ParetoPoint

        curve = ParetoCurve("power", "penalty")
        for bound, objective in [(3.0, 1.0), (1.0, 3.0), (2.0, 1.8)]:
            curve.points.append(
                ParetoPoint(bound=bound, feasible=True, objective=objective)
            )
        assert curve.is_non_increasing()
        assert curve.is_convex()

    def test_out_of_order_violation_still_detected(self):
        # An objective that *increases* with the bound must fail the
        # monotonicity predicate even when appended in an order whose
        # raw sequence happens to be non-increasing.
        from repro.core.pareto import ParetoCurve, ParetoPoint

        curve = ParetoCurve("power", "penalty")
        for bound, objective in [(2.0, 2.0), (1.0, 1.0)]:
            curve.points.append(
                ParetoPoint(bound=bound, feasible=True, objective=objective)
            )
        assert not curve.is_non_increasing()

    def test_out_of_order_concavity_detected(self):
        from repro.core.pareto import ParetoCurve, ParetoPoint

        curve = ParetoCurve("power", "penalty")
        # Concave (above the chord) at bound 2 — appended shuffled.
        for bound, objective in [(2.0, 2.9), (3.0, 1.0), (1.0, 3.0)]:
            curve.points.append(
                ParetoPoint(bound=bound, feasible=True, objective=objective)
            )
        assert not curve.is_convex()
