"""The fault-injection framework itself: plans, ledger, crash-safe I/O.

What must hold before chaos tests can mean anything:

* a :class:`FaultPlan` is JSON round-trippable and seeded-randomizable
  (same seed → same plan, byte for byte);
* the one-shot ledger makes every fault fire exactly once **across
  injector instances** — the property that keeps a killed-and-replayed
  tick from being killed again forever;
* spool generations detect corruption (CRC) and fall back to the
  previous valid generation;
* checkpoint writes are atomic (torn writers leave the previous file)
  and fsync failures are retried;
* the telemetry sink repairs a torn tail on append and tolerates
  fsync failure as degraded durability, not a crash.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro import faults
from repro.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedDisconnect,
    InjectedFault,
)
from repro.runtime.checkpoint import write_checkpoint
from repro.runtime.telemetry import JsonLinesTelemetry
from repro.service.spool import (
    SpoolSlot,
    load_spool,
    read_spool_generation,
    spool_generation_paths,
    write_spool_generation,
)
from repro.util.validation import ValidationError


@pytest.fixture(autouse=True)
def _no_ambient_injector():
    """Every test starts and ends with injection off."""
    faults.uninstall()
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        faults=(
            Fault(site="worker.command", kind="kill", tick=3, shard=1,
                  command="step"),
            Fault(site="spool.written", kind="bitflip", tick=2, shard=0,
                  offset=11),
            Fault(site="client.recv", kind="drop", after=2),
        ),
        seed=7,
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    path = tmp_path / "plan.json"
    plan.save(path)
    assert FaultPlan.load(path) == plan
    # canonical text: a reload re-serializes to identical bytes
    assert FaultPlan.load(path).to_json() == plan.to_json()


@pytest.mark.parametrize(
    "fault, match",
    [
        ({"site": "nope", "kind": "kill"}, "unknown fault site"),
        ({"site": "worker.command", "kind": "nope"}, "unknown fault kind"),
        ({"site": "telemetry.fsync", "kind": "kill"}, "cannot fire at site"),
        ({"site": "worker.command", "kind": "kill", "after": -1}, "after"),
        ({"site": "worker.command", "kind": "hang", "seconds": -1}, "seconds"),
        ({"site": "worker.command", "kind": "kill", "bogus": 1}, "unknown fault field"),
        ({"site": "worker.command"}, "missing"),
    ],
)
def test_fault_validation(fault, match):
    with pytest.raises(ValidationError, match=match):
        Fault.from_dict(fault)


def test_plan_parse_rejects_malformed():
    with pytest.raises(ValidationError, match="not valid JSON"):
        FaultPlan.from_json("{nope")
    with pytest.raises(ValidationError, match="must be a mapping"):
        FaultPlan.from_dict([])
    with pytest.raises(ValidationError, match="unknown fault-plan field"):
        FaultPlan.from_dict({"faults": [], "extra": 1})
    with pytest.raises(ValidationError, match="must be a list"):
        FaultPlan.from_dict({"faults": {}})
    with pytest.raises(ValidationError, match="does not exist"):
        FaultPlan.load("/nonexistent/plan.json")


def test_randomized_plan_is_a_pure_function_of_seed():
    plan = FaultPlan.randomized(42, ticks=8, shards=4)
    again = FaultPlan.randomized(42, ticks=8, shards=4)
    other = FaultPlan.randomized(43, ticks=8, shards=4)
    assert plan == again
    assert plan.to_json() == again.to_json()
    assert plan != other
    # one fault per requested class (spool corruption pairs with a kill)
    sites = [fault.site for fault in plan.faults]
    assert sites.count("worker.command") == 3  # kill + hang + paired kill
    assert "spool.written" in sites
    assert "client.recv" in sites
    # every targeted fault lands strictly mid-run
    for fault in plan.faults:
        if fault.tick is not None:
            assert 2 <= fault.tick <= 7


def test_randomized_plan_validation():
    with pytest.raises(ValidationError, match="ticks"):
        FaultPlan.randomized(1, ticks=3, shards=2)
    with pytest.raises(ValidationError, match="shards"):
        FaultPlan.randomized(1, ticks=6, shards=0)
    with pytest.raises(ValidationError, match="unknown fault class"):
        FaultPlan.randomized(1, ticks=6, shards=2, classes=("nope",))


def test_site_and_kind_vocabularies_are_closed():
    assert "worker.command" in FAULT_SITES
    assert {"kill", "hang", "truncate", "bitflip", "drop", "partial",
            "error", "delay"} == set(FAULT_KINDS)


# ----------------------------------------------------------------------
# the one-shot ledger
# ----------------------------------------------------------------------
def test_ledger_fires_exactly_once_across_injectors(tmp_path):
    plan = FaultPlan((Fault(site="spool.fsync", kind="error"),))
    first = FaultInjector(plan, tmp_path / "ledger")
    with pytest.raises(InjectedFault):
        first.fire("spool.fsync", path="x")
    assert first.fire("spool.fsync", path="x") == ()
    # a second injector (a restarted process) sees the claim and
    # never re-fires — the property deterministic replay leans on
    second = FaultInjector(plan, tmp_path / "ledger")
    assert second.fire("spool.fsync", path="x") == ()
    assert second.fired(0)


def test_after_skips_eligible_firings(tmp_path):
    plan = FaultPlan((Fault(site="client.recv", kind="drop", after=2),))
    injector = FaultInjector(plan, tmp_path / "ledger")
    assert injector.fire("client.recv") == ()
    assert injector.fire("client.recv") == ()
    with pytest.raises(InjectedDisconnect):
        injector.fire("client.recv")


def test_selectors_match_conjunctively(tmp_path):
    plan = FaultPlan(
        (Fault(site="worker.command", kind="error", tick=3, shard=1,
               command="step"),)
    )
    injector = FaultInjector(plan, tmp_path / "ledger")
    # wrong tick, wrong shard, wrong command: no match
    assert injector.fire("worker.command", shard=1, command="step", tick=2) == ()
    assert injector.fire("worker.command", shard=0, command="step", tick=3) == ()
    assert injector.fire("worker.command", shard=1, command="records", tick=3) == ()
    with pytest.raises(InjectedFault):
        injector.fire("worker.command", shard=1, command="step", tick=3)


def test_file_corruption_kinds(tmp_path):
    victim = tmp_path / "blob"
    victim.write_bytes(bytes(range(64)))
    plan = FaultPlan(
        (
            Fault(site="spool.written", kind="bitflip", offset=5,
                  fault_id="flip"),
            Fault(site="spool.written", kind="truncate", nbytes=8,
                  fault_id="cut"),
        )
    )
    injector = FaultInjector(plan, tmp_path / "ledger")
    injector.fire("spool.written", path=str(victim))
    data = victim.read_bytes()
    assert len(data) == 56  # truncated by 8
    assert data[5] == 5 ^ 0xFF  # and bit-flipped at offset 5
    # one-shot: untouched on later firings
    injector.fire("spool.written", path=str(victim))
    assert victim.read_bytes() == data


def test_partial_is_advisory(tmp_path):
    plan = FaultPlan(
        (Fault(site="channel.send", kind="partial", nbytes=3, seconds=0.0),)
    )
    injector = FaultInjector(plan, tmp_path / "ledger")
    actions = injector.fire("channel.send", role="client")
    assert len(actions) == 1
    assert actions[0].kind == "partial"
    assert actions[0].nbytes == 3


def test_module_install_and_noop_fast_path(tmp_path):
    assert faults.fire("worker.command", shard=0) == ()
    assert faults.installed_plan() is None
    plan = FaultPlan((Fault(site="telemetry.fsync", kind="error"),))
    faults.install(plan, tmp_path / "ledger")
    assert faults.installed_plan() == plan
    with pytest.raises(InjectedFault):
        faults.TELEMETRY_FSYNC.fire(path="x")
    faults.uninstall()
    assert faults.fire("telemetry.fsync") == ()


# ----------------------------------------------------------------------
# spool generations
# ----------------------------------------------------------------------
def test_spool_generation_round_trip_and_corruption(tmp_path):
    path = tmp_path / "shard-0.g0.ckpt"
    payload = {"tick": 4, "fleet": [1, 2, 3]}
    write_spool_generation(path, payload)
    assert read_spool_generation(path) == payload
    # bit rot is detected by the CRC, not unpickled
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))
    assert read_spool_generation(path) is None
    # truncation too
    write_spool_generation(path, payload)
    path.write_bytes(path.read_bytes()[:-5])
    assert read_spool_generation(path) is None
    # and garbage that was never a spool
    path.write_bytes(b"not a spool at all")
    assert read_spool_generation(path) is None


def test_spool_slot_alternates_and_falls_back(tmp_path):
    slot = SpoolSlot(tmp_path, 2)
    first = slot.write({"tick": 1, "fleet": []})
    second = slot.write({"tick": 2, "fleet": []})
    assert {first, second} == set(spool_generation_paths(tmp_path, 2))
    assert load_spool(tmp_path, 2)["tick"] == 2
    # corrupting the newest generation falls back one tick
    second.write_bytes(second.read_bytes()[:-4])
    assert load_spool(tmp_path, 2)["tick"] == 1
    # a fresh slot (restarted worker) resumes without clobbering the
    # only remaining valid generation
    resumed = SpoolSlot(tmp_path, 2)
    third = resumed.write({"tick": 3, "fleet": []})
    assert third != first
    assert load_spool(tmp_path, 2)["tick"] == 3
    # unknown shard: nothing to restore
    assert load_spool(tmp_path, 9) is None


def test_spool_write_is_atomic_under_fsync_failure(tmp_path):
    slot = SpoolSlot(tmp_path, 0)
    slot.write({"tick": 1, "fleet": []})
    faults.install(
        FaultPlan((Fault(site="spool.fsync", kind="error"),)),
        tmp_path / "ledger",
    )
    with pytest.raises(OSError):
        slot.write({"tick": 2, "fleet": []})
    # the failed generation never landed — no temp litter, previous
    # generation intact
    assert [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")] == []
    assert load_spool(tmp_path, 0)["tick"] == 1
    # the fault is spent: the next write goes through
    slot.write({"tick": 2, "fleet": []})
    assert load_spool(tmp_path, 0)["tick"] == 2


def test_spool_rejects_unserializable_payload(tmp_path):
    with pytest.raises(ValidationError, match="not serializable"):
        write_spool_generation(tmp_path / "x", {"tick": 0, "bad": lambda: 0})


# ----------------------------------------------------------------------
# atomic checkpoints
# ----------------------------------------------------------------------
def test_checkpoint_bytes_unchanged_and_atomic(tmp_path):
    path = tmp_path / "c.ckpt"
    payload = {"format": "repro-fleet-checkpoint", "version": 1, "tick": 3}
    write_checkpoint(path, payload, fsync=True)
    # still a plain protocol-4 pickle — resume tooling and the service
    # byte-identity tests read these raw
    assert path.read_bytes() == pickle.dumps(payload, protocol=4)
    assert not (tmp_path / "c.ckpt.tmp").exists()


def test_checkpoint_fsync_failure_is_retried(tmp_path):
    path = tmp_path / "c.ckpt"
    payload = {"tick": 1}
    # two scripted failures: attempts 1 and 2 fail, attempt 3 lands
    faults.install(
        FaultPlan(
            (
                Fault(site="checkpoint.fsync", kind="error", fault_id="a"),
                Fault(site="checkpoint.fsync", kind="error", fault_id="b"),
            )
        ),
        tmp_path / "ledger",
    )
    write_checkpoint(path, payload, fsync=True)
    assert pickle.loads(path.read_bytes()) == payload


def test_checkpoint_fsync_exhaustion_raises_and_leaves_no_torn_file(tmp_path):
    path = tmp_path / "c.ckpt"
    write_checkpoint(path, {"tick": 0}, fsync=False)
    before = path.read_bytes()
    faults.install(
        FaultPlan(
            tuple(
                Fault(site="checkpoint.fsync", kind="error", fault_id=f"f{i}")
                for i in range(3)
            )
        ),
        tmp_path / "ledger",
    )
    with pytest.raises(OSError):
        write_checkpoint(path, {"tick": 1}, fsync=True)
    # atomicity: the previous checkpoint is untouched, no temp litter
    assert path.read_bytes() == before
    assert not (tmp_path / "c.ckpt.tmp").exists()


# ----------------------------------------------------------------------
# hardened telemetry sink
# ----------------------------------------------------------------------
def test_telemetry_repairs_torn_tail_on_append(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonLinesTelemetry(path) as sink:
        sink.record({"tick": 1})
        sink.record({"tick": 2})
    # a crash mid-write leaves a torn final line...
    with open(path, "a") as fh:
        fh.write('{"tick": 3, "partial')
    # ...which an appending resume truncates before continuing
    with JsonLinesTelemetry(path, append=True) as sink:
        sink.record({"tick": 3})
    ticks = [json.loads(line)["tick"] for line in path.read_text().splitlines()]
    assert ticks == [1, 2, 3]


def test_telemetry_single_write_per_record(tmp_path):
    class _Recorder:
        def __init__(self, fh):
            self._fh = fh
            self.writes = []

        def write(self, data):
            self.writes.append(data)
            return self._fh.write(data)

        def __getattr__(self, name):
            return getattr(self._fh, name)

    path = tmp_path / "t.jsonl"
    sink = JsonLinesTelemetry(path)
    sink.record({"tick": 0})  # open the file
    recorder = _Recorder(sink._file)
    sink._file = recorder
    sink.record({"tick": 1})
    sink.close()
    assert len(recorder.writes) == 1
    assert recorder.writes[0].endswith("\n")


def test_telemetry_tolerates_fsync_failure(tmp_path):
    path = tmp_path / "t.jsonl"
    faults.install(
        FaultPlan((Fault(site="telemetry.fsync", kind="error"),)),
        tmp_path / "ledger",
    )
    sink = JsonLinesTelemetry(path, fsync=True)
    sink.record({"tick": 1})  # fsync fails, record still written
    assert sink.fsync_failures == 1
    sink.record({"tick": 2})  # fault spent: durability restored
    assert sink.fsync_failures == 1
    sink.close()
    ticks = [json.loads(line)["tick"] for line in path.read_text().splitlines()]
    assert ticks == [1, 2]


def test_telemetry_close_retries_pending_fsync(tmp_path):
    path = tmp_path / "t.jsonl"
    faults.install(
        FaultPlan((Fault(site="telemetry.fsync", kind="error"),)),
        tmp_path / "ledger",
    )
    sink = JsonLinesTelemetry(path, fsync=True, flush_every=1)
    sink.record({"tick": 1})
    assert sink._fsync_pending
    sink.close()  # final flush retries the sync (fault is spent)
    assert not sink._fsync_pending
    assert json.loads(path.read_text()) == {"tick": 1}


def test_fault_ledger_claim_file_is_os_excl(tmp_path):
    # the claim primitive itself: two raw attempts, one winner
    plan = FaultPlan((Fault(site="spool.fsync", kind="error"),))
    injector = FaultInjector(plan, tmp_path / "ledger")
    assert injector._claim(0) is True
    assert injector._claim(0) is False
    assert os.path.exists(tmp_path / "ledger" / "f0")
