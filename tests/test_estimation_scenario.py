"""Tests for scenario generation: fitted models -> systems/specs/fleets."""

import numpy as np
import pytest

from repro.core.optimizer import PolicyOptimizer
from repro.estimation.scenario import (
    assemble_system,
    fleet_group_from_fit,
    fleet_spec_from_fit,
    provider_spec,
    requester_spec_from_model,
    system_spec_from_fit,
)
from repro.estimation.workload import fit_workload
from repro.runtime.fleet import build_fleet, parse_fleet_spec
from repro.sim import make_rng
from repro.systems.example_system import build_provider
from repro.tool.spec import parse_spec
from repro.traces.extractor import SRExtractor
from repro.traces.synthetic import mmpp2_trace
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def workload_fit():
    trace = mmpp2_trace(0.95, 0.85, 6000, 1.0, make_rng(0))
    return fit_workload(trace, resolution=1.0, memories=(1, 2))


class TestAssembleSystem:
    def test_composes_fit(self, workload_fit):
        system, costs = assemble_system(build_provider(), workload_fit)
        assert system.n_states == 2 * workload_fit.model.n_states * 2
        assert "power" in costs.metric_names

    def test_composes_raw_model(self):
        model = SRExtractor(memory=1).fit([0, 1, 1, 0, 0, 1, 0])
        system, _ = assemble_system(build_provider(), model, queue_capacity=2)
        assert system.queue.capacity == 2

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValidationError):
            assemble_system(build_provider(), object())


class TestSpecBlocks:
    def test_requester_block_round_trips(self, workload_fit):
        block = requester_spec_from_model(workload_fit.model)
        assert block["arrivals"] == [0, 1]
        assert len(block["transitions"]) == workload_fit.model.n_states

    def test_provider_block_round_trips(self):
        true = build_provider()
        block = provider_spec(true)
        raw = {
            "name": "round-trip",
            "provider": block,
            "requester": {
                "transitions": [[0.9, 0.1], [0.2, 0.8]],
                "arrivals": [0, 1],
            },
        }
        spec = parse_spec(raw)
        assert spec.provider.state_names == true.state_names
        assert np.array_equal(
            spec.provider.power_matrix, true.power_matrix
        )


class TestSystemSpecFromFit:
    def test_parses_and_composes(self, workload_fit):
        raw = system_spec_from_fit(
            "fitted",
            build_provider(),
            workload_fit,
            queue_capacity=1,
            constraints={"penalty": 0.5, "loss": 0.2},
        )
        spec = parse_spec(raw)
        system, costs, p0 = spec.compose()
        assert spec.name == "fitted"
        assert spec.time_resolution == 1.0  # inherited from the fit
        assert system.n_states == 8

    def test_optimizes_identically_to_direct_construction(self, workload_fit):
        """The emitted spec reproduces the direct system's optimum."""
        raw = system_spec_from_fit(
            "fitted",
            build_provider(),
            workload_fit,
            queue_capacity=1,
            gamma=0.999,
            constraints={"penalty": 0.5, "loss": 0.2},
        )
        spec = parse_spec(raw)
        system, costs, p0 = spec.compose()
        via_spec = PolicyOptimizer(
            system, costs, gamma=spec.gamma, initial_distribution=p0
        ).optimize("power", "min", upper_bounds=spec.constraints)

        direct_system, direct_costs = assemble_system(
            build_provider(), workload_fit, queue_capacity=1
        )
        direct = PolicyOptimizer(
            direct_system,
            direct_costs,
            gamma=0.999,
            initial_distribution=direct_system.uniform_distribution(),
        ).optimize(
            "power", "min", upper_bounds={"penalty": 0.5, "loss": 0.2}
        )
        assert via_spec.feasible and direct.feasible
        assert via_spec.evaluation.averages["power"] == pytest.approx(
            direct.evaluation.averages["power"], abs=1e-6
        )

    def test_accepts_raw_model(self):
        model = SRExtractor(memory=1).fit([0, 1, 0, 0, 1, 1, 0])
        raw = system_spec_from_fit("m", build_provider(), model)
        assert parse_spec(raw).requester is not None

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValidationError):
            system_spec_from_fit("x", build_provider(), 3.14)


class TestFleetSpecs:
    def test_group_spec_shape(self, workload_fit):
        group = fleet_group_from_fit(
            workload_fit,
            "example",
            group_id="edge",
            count=4,
            agent={"type": "eager", "active": "s_on", "sleep": "s_off"},
            seed=7,
        )
        assert group["workload"]["type"] in ("mmpp2", "poisson")
        assert group["count"] == 4 and group["seed"] == 7

    def test_rejects_nonpositive_count(self, workload_fit):
        with pytest.raises(ValidationError):
            fleet_group_from_fit(workload_fit, "example", count=0)

    def test_full_fleet_spec_builds(self, workload_fit):
        spec = fleet_spec_from_fit(
            workload_fit,
            "example",
            count=3,
            agent={"type": "eager", "active": "s_on", "sleep": "s_off"},
            seed=1,
        )
        parse_fleet_spec(spec)
        fleet, _ = build_fleet(spec)
        assert len(fleet) == 3
        device = fleet.device("fitted-0000")
        assert device.stream is not None

    def test_fleet_spec_with_inline_fitted_system(self, workload_fit):
        inline = system_spec_from_fit(
            "fitted",
            build_provider(),
            workload_fit,
            constraints={"penalty": 0.5, "loss": 0.2},
        )
        spec = fleet_spec_from_fit(
            workload_fit,
            inline,
            count=2,
            agent={"type": "optimal", "formulation": "average",
                   "penalty_bound": 0.5},
        )
        fleet, cache = build_fleet(spec)
        assert len(fleet) == 2
        assert cache.stats.misses == 1  # one LP solve for the group
