"""Chaos tests: the hardened service under scripted fault plans.

The contract here is the hard one from the fault-injection work: after
**any** fault plan that does not exhaust retries, the sharded service's
telemetry records and checkpoint bytes are identical to a fault-free
single-process :class:`~repro.runtime.controller.FleetController` run.
Each failure class gets a targeted test (kill, hang, slow-but-alive,
spool corruption, fsync refusal, dropped client sockets), then a
randomized soak replays seeded :meth:`FaultPlan.randomized` scripts
end to end.  The crash-loop breaker's quarantine path — the one mode
that *is* allowed to diverge — is tested for what it promises instead:
a degraded-but-serving daemon.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import signal
import threading
import time

import pytest

from repro import faults
from repro.faults import Fault, FaultPlan
from repro.runtime import (
    FleetController,
    MemoryTelemetry,
    build_agent_from_spec,
    build_fleet,
    checkpoint_payload,
)
from repro.runtime.telemetry import snapshot_from_records
from repro.service import (
    FleetDaemon,
    ServiceClient,
    ServiceError,
    ShardSupervisor,
)
from repro.service.daemon import reap_process
from repro.util.validation import ValidationError

SEED = 11
SLICES = 50

SPEC = {
    "name": "chaos-test",
    "groups": [
        {
            "id": "disks",
            "count": 12,
            "system": "disk_drive",
            "agent": {"type": "optimal", "penalty_bound": 0.05},
        },
        {
            "id": "tmo",
            "count": 6,
            "system": "disk_drive",
            "agent": {
                "type": "timeout",
                "active": "go_active",
                "sleep": "go_sleep",
                "timeout": 40,
            },
            "workload": {"type": "mmpp2", "p_stay_idle": 0.95},
        },
    ],
}

NEW_AGENT = {
    "type": "timeout",
    "active": "go_active",
    "sleep": "go_sleep",
    "timeout": 10,
}


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Chaos tests must never leak an injector into the next test."""
    faults.uninstall()
    yield
    faults.uninstall()


def _dump(records):
    return [json.dumps(record, sort_keys=True) for record in records]


@pytest.fixture(scope="module")
def reference():
    """Six fault-free single-process ticks plus the final fleet."""
    fleet, _ = build_fleet(SPEC, base_seed=SEED)
    sink = MemoryTelemetry()
    controller = FleetController(
        fleet,
        slices_per_tick=SLICES,
        telemetry=sink,
        telemetry_per_device=True,
    )
    controller.run(6)
    return {
        "records": _dump(sink.records),
        "checkpoint": pickle.dumps(
            checkpoint_payload(
                controller.fleet, 6, SLICES, "auto", 256, 1, True
            ),
            protocol=4,
        ),
    }


def _supervisor_records(supervisor, n_ticks):
    out = []
    for _ in range(n_ticks):
        supervisor.step_tick()
        record = snapshot_from_records(
            supervisor.tick, supervisor.collect_records(), per_device=True
        )
        record["backend"] = supervisor.resolved_backend
        record["uniform_source"] = supervisor.uniform_source
        out.append(record)
    return out


def _chaos_supervisor(tmp_path, plan, n_shards=3, **kwargs):
    kwargs.setdefault("worker_deadline", 2.0)
    kwargs.setdefault("restart_backoff", 0.01)
    supervisor = ShardSupervisor(
        n_shards,
        slices_per_tick=SLICES,
        spool_dir=tmp_path / "spool",
        fault_plan=plan,
        **kwargs,
    )
    fleet, _ = build_fleet(SPEC, base_seed=SEED)
    supervisor.start(fleet)
    return supervisor


def _assert_chaos_identical(reference, supervisor, tmp_path):
    """Run 6 ticks under faults; telemetry AND checkpoint must match."""
    try:
        records = _supervisor_records(supervisor, 6)
        assert supervisor.quarantined == []
        path = tmp_path / "after-chaos.ckpt"
        supervisor.save_checkpoint(
            path, telemetry_every=1, telemetry_per_device=True
        )
    finally:
        supervisor.stop()
    assert _dump(records) == reference["records"]
    assert path.read_bytes() == reference["checkpoint"]


# ----------------------------------------------------------------------
# one failure class at a time
# ----------------------------------------------------------------------
def test_injected_kill_recovers_byte_identical(reference, tmp_path):
    plan = FaultPlan(
        (
            Fault(site="worker.command", kind="kill", command="step",
                  tick=3, shard=1),
        )
    )
    supervisor = _chaos_supervisor(tmp_path, plan)
    _assert_chaos_identical(reference, supervisor, tmp_path)
    # (supervisor is stopped; restart was counted before that)


def test_injected_hang_is_killed_and_recovered(reference, tmp_path):
    # the worker sleeps far past the deadline: only the supervisor's
    # poll timeout + SIGKILL can unwedge the tick
    plan = FaultPlan(
        (
            Fault(site="worker.command", kind="hang", command="step",
                  tick=2, shard=0, seconds=30.0),
        )
    )
    supervisor = _chaos_supervisor(tmp_path, plan, worker_deadline=1.0)
    start = time.monotonic()
    _assert_chaos_identical(reference, supervisor, tmp_path)
    # the run waited out one deadline, not the full 30s hang
    assert time.monotonic() - start < 25.0


def test_injected_delay_under_deadline_is_left_alone(reference, tmp_path):
    # slow-but-alive: the deadline must NOT fire on a worker that is
    # merely behind
    plan = FaultPlan(
        (
            Fault(site="worker.command", kind="delay", command="step",
                  tick=2, shard=2, seconds=0.3),
        )
    )
    supervisor = _chaos_supervisor(tmp_path, plan, worker_deadline=10.0)
    restarts = []
    try:
        records = _supervisor_records(supervisor, 6)
        restarts.append(supervisor.restarts)
    finally:
        supervisor.stop()
    assert _dump(records) == reference["records"]
    assert restarts == [0]


@pytest.mark.parametrize("corruption", ["truncate", "bitflip"])
def test_corrupt_spool_falls_back_a_generation(
    reference, tmp_path, corruption
):
    # corrupt the spool generation written at tick 2, then kill the
    # same shard at tick 3: the restore must reject the corrupt
    # generation (CRC) and replay from the tick-1 generation instead
    plan = FaultPlan(
        (
            Fault(site="spool.written", kind=corruption, tick=2, shard=1),
            Fault(site="worker.command", kind="kill", command="step",
                  tick=3, shard=1),
        )
    )
    supervisor = _chaos_supervisor(tmp_path, plan)
    _assert_chaos_identical(reference, supervisor, tmp_path)


def test_spool_fsync_failure_degrades_without_divergence(reference, tmp_path):
    # a refused spool fsync skips that generation (counted, non-fatal);
    # a later kill still recovers from the surviving generation
    plan = FaultPlan(
        (
            Fault(site="spool.fsync", kind="error"),
            Fault(site="worker.command", kind="kill", command="step",
                  tick=4, shard=0),
        )
    )
    supervisor = _chaos_supervisor(tmp_path, plan)
    _assert_chaos_identical(reference, supervisor, tmp_path)


def test_injected_worker_error_crashes_and_recovers(reference, tmp_path):
    # an InjectedFault raised inside the worker's serve loop kills the
    # worker process (a crash distinct from SIGKILL: the pipe EOFs)
    plan = FaultPlan(
        (
            Fault(site="worker.command", kind="error", command="step",
                  tick=3, shard=2),
        )
    )
    supervisor = _chaos_supervisor(tmp_path, plan)
    _assert_chaos_identical(reference, supervisor, tmp_path)


# ----------------------------------------------------------------------
# randomized chaos soak
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_randomized_chaos_soak_converges(reference, tmp_path, seed):
    plan = FaultPlan.randomized(
        seed,
        ticks=6,
        shards=3,
        classes=("kill", "hang", "spool_corruption", "fsync_error"),
        hang_seconds=10.0,
    )
    supervisor = _chaos_supervisor(tmp_path, plan, worker_deadline=1.0)
    _assert_chaos_identical(reference, supervisor, tmp_path)


# ----------------------------------------------------------------------
# quarantine: the sanctioned divergence
# ----------------------------------------------------------------------
def _socket_path(tmp_path):
    path = tmp_path / "s"
    assert len(str(path)) < 100
    return str(path)


def _run_daemon(tmp_path, supervisor, **kwargs):
    socket_path = _socket_path(tmp_path)
    daemon = FleetDaemon(socket_path, supervisor, **kwargs)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30
    while not os.path.exists(socket_path):
        assert time.monotonic() < deadline, "daemon never bound its socket"
        time.sleep(0.01)
    return socket_path, thread


def test_crash_loop_quarantines_shard_daemon_keeps_serving(tmp_path):
    # four scripted kills at the same (tick, shard): the initial death
    # plus every recovery attempt dies, tripping the breaker after
    # quarantine_after failed recoveries
    plan = FaultPlan(
        tuple(
            Fault(site="worker.command", kind="kill", command="step",
                  tick=2, shard=1, fault_id=f"kill-{i}")
            for i in range(4)
        )
    )
    supervisor = ShardSupervisor(
        3,
        slices_per_tick=SLICES,
        spool_dir=tmp_path / "spool",
        fault_plan=plan,
        restart_backoff=0.01,
        quarantine_after=2,
        worker_deadline=30.0,
    )
    sink = MemoryTelemetry()
    socket_path, thread = _run_daemon(
        tmp_path, supervisor, telemetry=sink, telemetry_per_device=True
    )
    with ServiceClient(socket_path, timeout=120) as client:
        for group in SPEC["groups"]:
            client.register_group(group, base_seed=SEED)
        # the quarantine trips inside this step; the step still lands
        assert client.step(4) == {"tick": 4, "ticks_run": 4}
        info = client.info()
        assert info["quarantined"] == [1]
        assert info["worker_pids"][1] is None
        # the daemon keeps answering: ping, further steps, snapshots
        assert client.ping() == {"pong": True, "tick": 4}
        assert client.step(1) == {"tick": 5, "ticks_run": 1}
        snap = client.snapshot(per_device=True)
        assert snap["quarantined"] == [1]
        # full device census survives: parked shards serve stale records
        assert len(snap["devices"]) == 18
        assert {record["id"] for record in snap["devices"]} == set(
            supervisor._owner
        )
        # mutations touching the parked shard are refused, clearly
        parked_id = next(
            device_id
            for device_id, shard in supervisor._owner.items()
            if shard == 1
        )
        with pytest.raises(ServiceError, match="quarantined"):
            client.remove_device(parked_id)
        # mutations on healthy shards still work
        healthy_id = next(
            device_id
            for device_id, shard in supervisor._owner.items()
            if shard == 0
        )
        assert client.update_policy(healthy_id, NEW_AGENT)["device_id"] == (
            healthy_id
        )
        client.shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()
    # telemetry kept flowing while degraded (one record per tick)
    assert [record["tick"] for record in sink.records] == [1, 2, 3, 4, 5]
    assert sink.records[-1]["quarantined"] == [1]


def test_quarantined_mutation_refused_at_supervisor_level(tmp_path):
    plan = FaultPlan(
        tuple(
            Fault(site="worker.command", kind="kill", command="step",
                  tick=2, shard=0, fault_id=f"kill-{i}")
            for i in range(4)
        )
    )
    supervisor = _chaos_supervisor(
        tmp_path, plan, quarantine_after=2, worker_deadline=30.0
    )
    try:
        supervisor.run(3)
        assert supervisor.quarantined == [0]
        assert supervisor.restarts >= 2
        parked_id = next(
            device_id
            for device_id, shard in supervisor._owner.items()
            if shard == 0
        )
        system, costs = supervisor.canonical_model(parked_id)
        with pytest.raises(ValidationError, match="quarantined"):
            supervisor.replace_agents(
                [(parked_id, build_agent_from_spec(NEW_AGENT, system, costs))]
            )
        # records still cover every device, stale ones included
        records = supervisor.collect_records()
        assert len(records) == 18
    finally:
        supervisor.stop()


# ----------------------------------------------------------------------
# client drops: reconnect, idempotent retry, daemon serviceability
# ----------------------------------------------------------------------
def test_client_drop_mid_step_is_not_double_applied(reference, tmp_path):
    supervisor = ShardSupervisor(
        2, slices_per_tick=SLICES, spool_dir=tmp_path / "spool"
    )
    sink = MemoryTelemetry()
    socket_path, thread = _run_daemon(
        tmp_path, supervisor, telemetry=sink, telemetry_per_device=True
    )
    streamed: list = []
    client = ServiceClient(
        socket_path, timeout=120, retries=5, retry_backoff=0.01
    )
    try:
        with client:
            for group in SPEC["groups"]:
                client.register_group(group, base_seed=SEED)
            # sever the client's socket after it has received two
            # frames of the step's reply stream; the daemon must finish
            # all four ticks, and the client's retry must land on the
            # replay cache instead of re-stepping
            faults.install(
                FaultPlan(
                    (Fault(site="client.recv", kind="drop", after=2),)
                ),
                tmp_path / "ledger",
            )
            result = client.step(4, on_telemetry=streamed.append)
            assert result == {"tick": 4, "ticks_run": 4}
            # the daemon's sink is authoritative and complete...
            assert _dump(sink.records) == reference["records"][:4]
            # ...while the client saw only the pre-drop stream
            assert _dump(streamed) == reference["records"][:2]
            # the reconnected session keeps working
            assert client.ping() == {"pong": True, "tick": 4}
            assert client.step(2) == {"tick": 6, "ticks_run": 2}
            assert _dump(sink.records) == reference["records"]
            client.shutdown()
    finally:
        faults.uninstall()
    thread.join(timeout=30)
    assert not thread.is_alive()


def test_client_retries_are_bounded(tmp_path):
    # with nothing listening, a retrying client still fails promptly
    # and with a ServiceError, not an infinite loop
    client = ServiceClient(
        _socket_path(tmp_path), timeout=5, retries=2, retry_backoff=0.01
    )
    with pytest.raises(ServiceError, match="cannot connect"):
        client.connect()


def test_client_rejects_negative_retries(tmp_path):
    with pytest.raises(ServiceError, match="retries"):
        ServiceClient(_socket_path(tmp_path), retries=-1)


# ----------------------------------------------------------------------
# reap_process: the shutdown safety net
# ----------------------------------------------------------------------
def _ignore_sigterm_forever(started):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    started.set()
    while True:
        time.sleep(0.5)


def test_reap_process_escalates_to_sigkill():
    ctx = multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    started = ctx.Event()
    process = ctx.Process(target=_ignore_sigterm_forever, args=(started,))
    process.start()
    assert started.wait(timeout=30)
    # join times out, SIGTERM is ignored, SIGKILL must finish the job
    reap_process(process, join_timeout=0.2, term_timeout=0.2)
    assert not process.is_alive()
    assert process.exitcode == -signal.SIGKILL
