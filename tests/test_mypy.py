"""Type-check the ``repro.lint`` package and the core/lp public
surfaces with mypy, when mypy is available.

CI installs mypy (pinned in the ``dev`` extra) so the check always
runs there; locally the test skips rather than demanding the tool.
Configuration lives in ``pyproject.toml`` — ``repro.lint`` is held to
basic strictness (untyped defs are errors), the rest to default
leniency with third-party imports ignored.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parent.parent

CHECKED = [
    "src/repro/lint",
    "src/repro/core/__init__.py",
    "src/repro/lp/__init__.py",
]


def test_mypy_clean():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", *CHECKED],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
