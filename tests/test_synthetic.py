"""Tests for the synthetic workload generators."""

import pytest

from repro.sim import make_rng
from repro.traces import (
    merge_traces,
    mmpp2_trace,
    on_off_trace,
    periodic_burst_trace,
    poisson_trace,
)
from repro.util.validation import ValidationError


class TestPoisson:
    def test_rate_recovered(self):
        trace = poisson_trace(5.0, 2000.0, make_rng(0))
        assert trace.mean_rate() == pytest.approx(5.0, rel=0.05)

    def test_burstiness_near_one(self):
        trace = poisson_trace(2.0, 5000.0, make_rng(1))
        assert trace.burstiness() == pytest.approx(1.0, abs=0.08)

    def test_zero_rate(self):
        trace = poisson_trace(0.0, 10.0, make_rng(2))
        assert trace.n_requests == 0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValidationError):
            poisson_trace(-1.0, 10.0, make_rng(0))


class TestMMPP2:
    def test_statistics_recovered(self):
        """SR extraction from an MMPP2 trace recovers the generator."""
        from repro.traces import SRExtractor

        trace = mmpp2_trace(0.95, 0.85, 200_000, 1.0, make_rng(3))
        model = SRExtractor(memory=1).fit(trace.discretize(1.0))
        assert model.matrix[0, 0] == pytest.approx(0.95, abs=0.01)
        assert model.matrix[1, 1] == pytest.approx(0.85, abs=0.01)

    def test_burstier_than_poisson(self):
        bursty = mmpp2_trace(0.995, 0.95, 100_000, 1.0, make_rng(4))
        assert bursty.burstiness() > 1.5

    def test_duration(self):
        trace = mmpp2_trace(0.9, 0.9, 1000, 0.5, make_rng(5))
        assert trace.duration == pytest.approx(500.0)

    def test_emission_probability(self):
        sparse = mmpp2_trace(
            0.5, 0.5, 50_000, 1.0, make_rng(6), busy_arrival_probability=0.3
        )
        dense = mmpp2_trace(
            0.5, 0.5, 50_000, 1.0, make_rng(6), busy_arrival_probability=1.0
        )
        assert sparse.n_requests < dense.n_requests

    def test_rejects_bad_slices(self):
        with pytest.raises(ValidationError):
            mmpp2_trace(0.9, 0.9, 0, 1.0, make_rng(0))


class TestOnOff:
    def test_fixed_lengths(self):
        trace = on_off_trace(lambda r: 3, lambda r: 7, 100, 1.0, make_rng(7))
        counts = trace.discretize(1.0)
        # Starts off (7 silent), then 3 on, repeating.
        assert counts[:7].sum() == 0
        assert counts[7:10].sum() == 3

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValidationError, match="positive"):
            on_off_trace(lambda r: 0, lambda r: 1, 10, 1.0, make_rng(0))


class TestPeriodicBurst:
    def test_pattern(self):
        trace = periodic_burst_trace(2, 3, 10, 1.0)
        assert trace.discretize(1.0).tolist() == [1, 1, 0, 0, 0, 1, 1, 0, 0, 0]

    def test_no_gap(self):
        trace = periodic_burst_trace(1, 0, 5, 1.0)
        assert trace.discretize(1.0).tolist() == [1, 1, 1, 1, 1]

    def test_rejects_bad_burst(self):
        with pytest.raises(ValidationError):
            periodic_burst_trace(0, 1, 10, 1.0)


class TestMerge:
    def test_two_segment_statistics(self):
        sparse = mmpp2_trace(0.999, 0.5, 20_000, 1.0, make_rng(8))
        dense = periodic_burst_trace(50, 5, 20_000, 1.0)
        merged = merge_traces([sparse, dense])
        counts = merged.discretize(1.0)
        first, second = counts[:20_000], counts[20_000:]
        assert second.mean() > 4 * max(first.mean(), 1e-9)

    def test_single_trace_identity(self):
        trace = periodic_burst_trace(1, 1, 10, 1.0)
        merged = merge_traces([trace])
        assert merged.timestamps.tolist() == trace.timestamps.tolist()

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            merge_traces([])
