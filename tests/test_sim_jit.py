"""Equivalence and dispatch suite for the compiled jit backend.

The jit tier's contract is **byte-identity with the vector backend**,
and the kernels run as plain Python when numba is absent (``@njit``
degrades to identity), so the whole equivalence suite executes on
every environment: it validates the *algorithm* without numba and the
compiled artifact on the CI numba legs.  Three layers:

1. **Golden byte-for-byte**: one seeded CRN batch (and one session
   run) is pinned to hex-encoded floats captured from the vector
   backend — asserted against *both* tiers, so neither can drift.
2. **Pairwise identity**: randomized/deterministic/mixed batches,
   pinned chunk lengths, ragged session-style lane compaction and the
   fleet's grouped fan-in stepping all compare jit against vector
   field by field.
3. **Dispatch**: registry introspection, ``auto`` preference order,
   actionable unavailability errors, and the fleet controller's
   backend stamp / checkpoint round-trip under the jit tier.
"""

from typing import ClassVar

import numpy as np
import pytest

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import CostModel
from repro.core.policy import MarkovPolicy
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.policies import StationaryPolicyAgent, TimeoutAgent
from repro.policies.markov_conversion import eager_markov_policy
from repro.sim import (
    BACKEND_CHOICES,
    available_backends,
    get_backend,
    jit_available,
    make_rng,
    preferred_batch_backend,
    resolve_backend,
    simulate_many,
    simulate_sessions,
)
from repro.sim.backends import jit as jit_module
from repro.sim.backends.jit import NUMBA_AVAILABLE, JitBackend
from repro.sim.backends.vector import VectorBackend
from repro.systems import disk_drive, example_system
from repro.util.validation import ValidationError


def _hex(values: dict) -> dict:
    return {name: float.fromhex(h) for name, h in values.items()}


def _jit() -> JitBackend:
    """The backend under test: compiled when numba imports, else the
    interpreted rendition of the same kernel source."""
    return JitBackend(interpreted_ok=True)


def _crn_system():
    """Always-issuing workload (mirrors test_sim_backends._crn_system)."""
    provider = ServiceProvider.from_tables(
        states=["on", "off"],
        commands=["s_on", "s_off"],
        transitions={
            "s_on": [[1.0, 0.0], [0.4, 0.6]],
            "s_off": [[0.3, 0.7], [0.0, 1.0]],
        },
        service_rates=[[0.7, 0.1], [0.05, 0.0]],
        power=[[3.0, 4.0], [4.0, 0.5]],
    )
    requester = ServiceRequester(
        MarkovChain([[0.8, 0.2], [0.3, 0.7]], ["lo", "hi"]), arrivals=[1, 2]
    )
    system = PowerManagedSystem(provider, requester, ServiceQueue(3))
    return system, CostModel.standard(system)


def _randomized_policy(system, seed=0):
    rows = np.random.default_rng(seed).uniform(
        0.1, 0.9, size=(system.n_states, system.n_commands)
    )
    rows /= rows.sum(axis=1, keepdims=True)
    return MarkovPolicy(rows)


def _randomized_policies(system, n, seed=0):
    return [_randomized_policy(system, seed + i) for i in range(n)]


def _assert_identical(a, b):
    """Field-by-field byte identity of two SimulationResults."""
    assert a.totals == b.totals
    assert a.averages == b.averages
    assert (
        a.arrivals,
        a.serviced,
        a.lost,
        a.loss_event_slices,
        a.final_state,
        a.n_slices,
    ) == (
        b.arrivals,
        b.serviced,
        b.lost,
        b.loss_event_slices,
        b.final_state,
        b.n_slices,
    )
    assert a.command_counts.tolist() == b.command_counts.tolist()
    assert a.provider_occupancy.tolist() == b.provider_occupancy.tolist()


def _assert_batches_identical(batch_a, batch_b):
    assert len(batch_a) == len(batch_b)
    for reps_a, reps_b in zip(batch_a, batch_b):
        assert len(reps_a) == len(reps_b)
        for a, b in zip(reps_a, reps_b):
            _assert_identical(a, b)


class TestRegistry:
    def test_backend_choices_include_jit(self):
        assert BACKEND_CHOICES == ("auto", "loop", "vector", "jit")

    def test_available_backends_report(self):
        report = available_backends()
        assert report["loop"] is None
        assert report["vector"] is None
        if NUMBA_AVAILABLE:
            assert report["jit"] is None
        else:
            assert "numba" in report["jit"]
            assert "[jit]" in report["jit"]

    def test_jit_available_matches_module_flag(self):
        assert jit_available() is NUMBA_AVAILABLE

    def test_unknown_backend_error_lists_choices(self):
        with pytest.raises(ValidationError, match="jit.*loop.*vector"):
            get_backend("warp")

    def test_preferred_batch_backend(self):
        expected = "jit" if NUMBA_AVAILABLE else "vector"
        assert preferred_batch_backend().name == expected

    def test_auto_resolution_prefers_batch_tier(self):
        system, _ = _crn_system()
        agent = StationaryPolicyAgent(system, _randomized_policy(system))
        expected = "jit" if NUMBA_AVAILABLE else "vector"
        assert resolve_backend("auto", agent, batch_size=16).name == expected
        # Single runs stay on the reference loop either way.
        assert resolve_backend("auto", agent, batch_size=1).name == "loop"

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs a numba-less env")
    def test_get_backend_unavailable_is_actionable(self):
        with pytest.raises(ValidationError) as excinfo:
            get_backend("jit")
        message = str(excinfo.value)
        assert "numba" in message
        assert "loop" in message and "vector" in message
        assert "byte-identical" in message

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs a numba-less env")
    def test_default_jit_backend_refuses_interpreted(self):
        system, costs = _crn_system()
        with pytest.raises(ValidationError, match="vector"):
            JitBackend().simulate_batch(
                system,
                costs,
                [_randomized_policy(system)],
                100,
                make_rng(0),
                n_replications=2,
            )

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs a numba-less env")
    def test_engine_jit_request_raises_without_numba(self):
        system, costs = _crn_system()
        with pytest.raises(ValidationError, match="numba"):
            simulate_many(
                system,
                costs,
                [_randomized_policy(system)],
                100,
                make_rng(0),
                n_replications=2,
                backend="jit",
            )

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="needs numba")
    def test_get_backend_returns_compiled_singleton(self):
        backend = get_backend("jit")
        assert backend.name == "jit"
        assert backend.compiled
        assert get_backend("jit") is backend

    def test_jit_rejects_heuristic_agents(self):
        agent = TimeoutAgent(5, 0, 1)
        assert not _jit().supports(agent)


class TestGoldenHex:
    """Seeded CRN values pinned from the vector backend, asserted on
    both tiers — the jit==vector==seed chain in one place."""

    GOLDEN: ClassVar[list[dict]] = [
        {
            "totals": {
                "power": "0x1.67a8000000000p+13",
                "penalty": "0x1.76d8000000000p+13",
                "loss": "0x1.f3c0000000000p+11",
                "overflow": "0x1.282733333334cp+12",
            },
            "counters": (5582, 885, 4694, 3998),
            "commands": [2267, 1733],
            "occupancy": [1760, 2240],
            "final": (1, 1, 3),
        },
        {
            "totals": {
                "power": "0x1.61d0000000000p+13",
                "penalty": "0x1.76e0000000000p+13",
                "loss": "0x1.f3c0000000000p+11",
                "overflow": "0x1.29ce66666667cp+12",
            },
            "counters": (5601, 858, 4740, 3998),
            "commands": [2269, 1731],
            "occupancy": [1684, 2316],
            "final": (1, 0, 3),
        },
        {
            "totals": {
                "power": "0x1.4e84000000000p+13",
                "penalty": "0x1.76e0000000000p+13",
                "loss": "0x1.f3c0000000000p+11",
                "overflow": "0x1.3104cccccccedp+12",
            },
            "counters": (5591, 687, 4901, 3998),
            "commands": [2017, 1983],
            "occupancy": [1541, 2459],
            "final": (1, 0, 3),
        },
        {
            "totals": {
                "power": "0x1.4d38000000000p+13",
                "penalty": "0x1.76d0000000000p+13",
                "loss": "0x1.f3a0000000000p+11",
                "overflow": "0x1.336a66666668fp+12",
            },
            "counters": (5557, 662, 4892, 3997),
            "commands": [2033, 1967],
            "occupancy": [1409, 2591],
            "final": (1, 1, 3),
        },
    ]

    @pytest.mark.parametrize("backend_factory", [VectorBackend, _jit])
    def test_seeded_batch_matches_golden(self, backend_factory):
        system, costs = _crn_system()
        results = backend_factory().simulate_batch(
            system,
            costs,
            _randomized_policies(system, 2),
            4_000,
            make_rng(321),
            n_replications=2,
        )
        flat = [r for reps in results for r in reps]
        assert len(flat) == len(self.GOLDEN)
        for result, golden in zip(flat, self.GOLDEN):
            assert result.totals == _hex(golden["totals"])
            assert (
                result.arrivals,
                result.serviced,
                result.lost,
                result.loss_event_slices,
            ) == golden["counters"]
            assert result.command_counts.tolist() == golden["commands"]
            assert result.provider_occupancy.tolist() == golden["occupancy"]
            assert result.final_state == golden["final"]

    @pytest.mark.parametrize("backend_factory", [VectorBackend, _jit])
    def test_seeded_sessions_match_golden(self, backend_factory):
        system, costs = _crn_system()
        agent = StationaryPolicyAgent(system, _randomized_policy(system))
        stats = backend_factory().simulate_sessions(
            system, costs, agent, 0.95, 48, make_rng(77)
        )
        golden = {
            "loss": ("0x1.1aaaaaaaaaaabp+4", "0x1.6621f830066aap+1"),
            "overflow": ("0x1.51ad3a06d3a08p+4", "0x1.acf209521e31bp+1"),
            "penalty": ("0x1.bd80000000000p+5", "0x1.0d32849b953a8p+3"),
            "power": ("0x1.d3eaaaaaaaaabp+5", "0x1.ec8ec6084c7e3p+2"),
        }
        assert set(stats) == set(golden)
        for name, (mean_hex, stderr_hex) in golden.items():
            assert stats[name].mean == float.fromhex(mean_hex)
            assert stats[name].stderr == float.fromhex(stderr_hex)


class TestByteIdentity:
    """jit == vector, field by field, under common random numbers."""

    @pytest.mark.parametrize(
        "build", [disk_drive.build, example_system.build], ids=["disk", "example"]
    )
    def test_randomized_batch(self, build):
        bundle = build()
        policies = _randomized_policies(bundle.system, 3, seed=1)
        expected = VectorBackend().simulate_batch(
            bundle.system, bundle.costs, policies, 5_000, make_rng(42),
            n_replications=3,
        )
        actual = _jit().simulate_batch(
            bundle.system, bundle.costs, policies, 5_000, make_rng(42),
            n_replications=3,
        )
        _assert_batches_identical(expected, actual)

    @pytest.mark.parametrize("chunk_slices", [1, 17, 256, 4_096])
    def test_pinned_chunk_slices(self, chunk_slices):
        system, costs = _crn_system()
        policies = _randomized_policies(system, 2)
        expected = VectorBackend().simulate_batch(
            system, costs, policies, 2_000, make_rng(5),
            n_replications=2, chunk_slices=chunk_slices,
        )
        actual = _jit().simulate_batch(
            system, costs, policies, 2_000, make_rng(5),
            n_replications=2, chunk_slices=chunk_slices,
        )
        _assert_batches_identical(expected, actual)

    def test_deterministic_batch_three_uniform_kinds(self):
        bundle = disk_drive.build()
        policy = eager_markov_policy(bundle.system, "go_active", "go_idle")
        expected = VectorBackend().simulate_batch(
            bundle.system, bundle.costs, [policy], 5_000, make_rng(3),
            n_replications=4,
        )
        actual = _jit().simulate_batch(
            bundle.system, bundle.costs, [policy], 5_000, make_rng(3),
            n_replications=4,
        )
        _assert_batches_identical(expected, actual)

    def test_mixed_deterministic_and_randomized_rows(self):
        bundle = disk_drive.build()
        policies = [
            eager_markov_policy(bundle.system, "go_active", "go_idle"),
            _randomized_policy(bundle.system, seed=1),
        ]
        expected = VectorBackend().simulate_batch(
            bundle.system, bundle.costs, policies, 4_000, make_rng(11),
            n_replications=2,
        )
        actual = _jit().simulate_batch(
            bundle.system, bundle.costs, policies, 4_000, make_rng(11),
            n_replications=2,
        )
        _assert_batches_identical(expected, actual)

    def test_ragged_lengths_lane_compaction(self):
        """Session-style ragged lanes exercise mid-chunk finishes and
        the compaction path directly through step_lanes."""
        system, costs = _crn_system()
        from repro.sim.backends.base import SimulationTables
        from repro.sim.backends.vector import CompiledPolicyBatch

        tables = SimulationTables.compile(system, costs)
        compiled = CompiledPolicyBatch.compile(
            system, _randomized_policies(system, 2)
        )
        policy_of_lane = np.array([0, 1, 0, 1, 0], dtype=np.int64)
        lengths = np.array([3, 700, 64, 1, 129], dtype=np.int64)
        zeros = np.zeros(5, dtype=np.int64)
        start = (zeros, zeros, zeros)
        expected = VectorBackend().step_lanes(
            tables, compiled, policy_of_lane, lengths, start, make_rng(8),
            chunk_slices=50,
        )
        actual = _jit().step_lanes(
            tables, compiled, policy_of_lane, lengths, start, make_rng(8),
            chunk_slices=50,
        )
        assert expected.totals.tolist() == actual.totals.tolist()
        assert expected.command_counts.tolist() == actual.command_counts.tolist()
        assert (
            expected.provider_occupancy.tolist()
            == actual.provider_occupancy.tolist()
        )
        for field in ("arrivals", "serviced", "lost", "loss_events"):
            assert getattr(expected, field).tolist() == getattr(actual, field).tolist()
        assert expected.final_state.tolist() == actual.final_state.tolist()

    def test_sessions_identical(self):
        bundle = disk_drive.build()
        agent = StationaryPolicyAgent(
            bundle.system, _randomized_policy(bundle.system, seed=2)
        )
        expected = VectorBackend().simulate_sessions(
            bundle.system, bundle.costs, agent, 0.97, 64, make_rng(7)
        )
        actual = _jit().simulate_sessions(
            bundle.system, bundle.costs, agent, 0.97, 64, make_rng(7)
        )
        assert set(expected) == set(actual)
        for name in expected:
            assert expected[name].mean == actual[name].mean
            assert expected[name].stderr == actual[name].stderr
            assert expected[name].count == actual[name].count


class TestChunkKnob:
    """The documented chunk_slices reproducibility contract."""

    def test_integer_trajectories_chunk_invariant(self):
        system, costs = _crn_system()
        policies = _randomized_policies(system, 2)
        runs = [
            _jit().simulate_batch(
                system, costs, policies, 1_500, make_rng(13),
                n_replications=2, chunk_slices=pin,
            )
            for pin in (16, 250, None)
        ]
        reference = runs[0]
        for other in runs[1:]:
            for reps_a, reps_b in zip(reference, other):
                for a, b in zip(reps_a, reps_b):
                    # Uniform consumption is (slice, kind, lane)-ordered
                    # regardless of chunking: every integer observable
                    # is identical...
                    assert (
                        a.arrivals,
                        a.serviced,
                        a.lost,
                        a.loss_event_slices,
                        a.final_state,
                    ) == (
                        b.arrivals,
                        b.serviced,
                        b.lost,
                        b.loss_event_slices,
                        b.final_state,
                    )
                    assert a.command_counts.tolist() == b.command_counts.tolist()
                    # ...while float totals only agree to summation-order
                    # precision across *different* pins.
                    for name in a.totals:
                        assert a.totals[name] == pytest.approx(
                            b.totals[name], rel=1e-9
                        )

    def test_chunk_slices_must_be_positive(self):
        system, costs = _crn_system()
        with pytest.raises(ValidationError, match="chunk_slices"):
            _jit().simulate_batch(
                system,
                costs,
                [_randomized_policy(system)],
                100,
                make_rng(0),
                n_replications=2,
                chunk_slices=0,
            )

    def test_engine_threads_chunk_slices(self):
        system, costs = _crn_system()
        policies = _randomized_policies(system, 2)
        direct = VectorBackend().simulate_batch(
            system, costs, policies, 1_000, make_rng(9),
            n_replications=2, chunk_slices=33,
        )
        threaded = simulate_many(
            system, costs, policies, 1_000, make_rng(9),
            n_replications=2, backend="vector", chunk_slices=33,
        )
        # simulate_many consumes one child stream for the batch; feed
        # the direct run the same child to compare bitwise.
        from repro.sim.rng import child_rngs

        direct = VectorBackend().simulate_batch(
            system, costs, policies, 1_000, child_rngs(make_rng(9), 1)[0],
            n_replications=2, chunk_slices=33,
        )
        _assert_batches_identical(direct, threaded)

    def test_engine_sessions_thread_chunk_slices(self):
        system, costs = _crn_system()
        agent = StationaryPolicyAgent(system, _randomized_policy(system))
        pinned = simulate_sessions(
            system, costs, agent, 0.9, 32, make_rng(4), chunk_slices=21
        )
        direct = VectorBackend().simulate_sessions(
            system, costs, agent, 0.9, 32, make_rng(4), chunk_slices=21
        )
        for name in direct:
            assert pinned[name].mean == direct[name].mean
            assert pinned[name].stderr == direct[name].stderr


class TestEngineDispatchWithJit:
    """auto/jit routing through the engine with the jit tier forced on
    (monkeypatched availability; kernels run interpreted)."""

    @pytest.fixture
    def jit_on(self, monkeypatch):
        import repro.sim.backends as backends_pkg

        monkeypatch.setattr(jit_module, "NUMBA_AVAILABLE", True)
        monkeypatch.setattr(backends_pkg, "_JIT_BACKEND", None)
        return backends_pkg

    def test_auto_routes_batches_through_jit(self, jit_on):
        assert jit_available()
        assert preferred_batch_backend().name == "jit"
        system, costs = _crn_system()
        policies = _randomized_policies(system, 2)
        via_auto = simulate_many(
            system, costs, policies, 1_000, make_rng(6),
            n_replications=2, backend="auto",
        )
        via_vector = simulate_many(
            system, costs, policies, 1_000, make_rng(6),
            n_replications=2, backend="vector",
        )
        _assert_batches_identical(via_auto, via_vector)

    def test_explicit_jit_backend_matches_vector(self, jit_on):
        system, costs = _crn_system()
        policies = _randomized_policies(system, 2)
        via_jit = simulate_many(
            system, costs, policies, 1_000, make_rng(6),
            n_replications=2, backend="jit",
        )
        via_vector = simulate_many(
            system, costs, policies, 1_000, make_rng(6),
            n_replications=2, backend="vector",
        )
        _assert_batches_identical(via_jit, via_vector)


class TestFleetJit:
    """The grouped fleet hot path on the jit tier: per-device fan-in,
    lane blocking, telemetry stamping and checkpoint/resume."""

    @pytest.fixture
    def jit_on(self, monkeypatch):
        import repro.sim.backends as backends_pkg

        monkeypatch.setattr(jit_module, "NUMBA_AVAILABLE", True)
        monkeypatch.setattr(backends_pkg, "_JIT_BACKEND", None)

    def _build_fleet(self, n=6):
        from repro.runtime import Fleet, device_rng

        bundle = example_system.build()
        policy = eager_markov_policy(bundle.system, "s_on", "s_off")
        fleet = Fleet()
        for i in range(n):
            fleet.add_device(
                f"dev-{i}",
                bundle.system,
                bundle.costs,
                StationaryPolicyAgent(bundle.system, policy),
                rng=device_rng(0, i),
            )
        return fleet

    def test_jit_fleet_matches_vector_fleet(self, jit_on):
        from repro.runtime import FleetController

        a = FleetController(
            self._build_fleet(), slices_per_tick=300, backend="vector"
        )
        b = FleetController(
            self._build_fleet(), slices_per_tick=300, backend="jit"
        )
        assert b.resolved_backend == "jit"
        a.run(3)
        b.run(3)
        for da, db in zip(a.fleet, b.fleet):
            assert da.totals.tolist() == db.totals.tolist()
            assert da.state == db.state
            assert da.command_counts.tolist() == db.command_counts.tolist()
            assert (da.arrivals, da.serviced, da.lost, da.loss_event_slices) == (
                db.arrivals,
                db.serviced,
                db.lost,
                db.loss_event_slices,
            )
        # Snapshots agree except for the backend attribution stamp.
        snap_a, snap_b = a.snapshot(), b.snapshot()
        assert snap_a.pop("backend") == "vector"
        assert snap_b.pop("backend") == "jit"
        assert snap_a == snap_b

    def test_lane_block_sharding_is_bitwise_neutral(self, jit_on, monkeypatch):
        import repro.runtime.controller as controller_module
        from repro.runtime import FleetController

        a = FleetController(
            self._build_fleet(), slices_per_tick=200, backend="jit"
        )
        a.run(2)
        monkeypatch.setattr(controller_module, "FLEET_LANE_BLOCK", 2)
        b = FleetController(
            self._build_fleet(), slices_per_tick=200, backend="jit"
        )
        b.run(2)
        for da, db in zip(a.fleet, b.fleet):
            assert da.totals.tolist() == db.totals.tolist()
            assert da.state == db.state

    def test_checkpoint_resume_round_trip_on_jit(self, jit_on, tmp_path):
        from repro.runtime import FleetController, MemoryTelemetry

        straight_sink = MemoryTelemetry()
        straight = FleetController(
            self._build_fleet(),
            slices_per_tick=250,
            backend="jit",
            telemetry=straight_sink,
        )
        straight.run(4)

        resumed_sink = MemoryTelemetry()
        first = FleetController(
            self._build_fleet(),
            slices_per_tick=250,
            backend="jit",
            telemetry=resumed_sink,
        )
        first.run(2)
        path = tmp_path / "fleet.ckpt"
        first.save_checkpoint(path)
        second = FleetController.resume(path, telemetry=resumed_sink)
        assert second.backend == "jit"
        assert second.chunk_slices == straight.chunk_slices
        second.run(2)
        assert resumed_sink.records == straight_sink.records


class TestTimingTelemetry:
    """The opt-in wall-clock stamp (observability satellite)."""

    def _controller(self, **kwargs):
        from repro.runtime import Fleet, FleetController, device_rng

        bundle = example_system.build()
        policy = eager_markov_policy(bundle.system, "s_on", "s_off")
        fleet = Fleet()
        for i in range(3):
            fleet.add_device(
                f"dev-{i}",
                bundle.system,
                bundle.costs,
                StationaryPolicyAgent(bundle.system, policy),
                rng=device_rng(0, i),
            )
        return FleetController(fleet, slices_per_tick=100, **kwargs)

    def test_timing_off_by_default(self):
        controller = self._controller()
        record = controller.step_tick()
        assert "timing" not in record
        assert controller.last_timing is None

    def test_timing_opt_in(self):
        controller = self._controller(record_timing=True)
        record = controller.step_tick()
        timing = record["timing"]
        assert set(timing) == {"tick_seconds", "step_seconds", "solve_seconds"}
        assert timing["tick_seconds"] >= timing["step_seconds"] >= 0.0
        assert timing["solve_seconds"] == 0.0  # no policy cache attached
        assert controller.last_timing == timing

    def test_snapshot_always_stamps_backend(self):
        controller = self._controller()
        assert controller.snapshot()["backend"] == controller.resolved_backend


class TestCliBackends:
    def test_backends_subcommand_lists_availability(self, capsys):
        from repro.tool.cli import main as cli_main

        assert cli_main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "loop" in out and "vector" in out and "jit" in out
        if not NUMBA_AVAILABLE:
            assert "unavailable" in out and "numba" in out

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="needs a numba-less env")
    def test_fleet_jit_without_numba_is_actionable(self, capsys, tmp_path):
        import json

        from repro.tool.cli import main as cli_main

        spec = {
            "name": "t",
            "groups": [
                {
                    "count": 2,
                    "system": "example",
                    "agent": {"type": "eager", "active": "s_on", "sleep": "s_off"},
                }
            ],
        }
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(spec))
        code = cli_main(["fleet", str(path), "--ticks", "1", "--backend", "jit"])
        err = capsys.readouterr().err
        assert code == 2
        assert "numba" in err
        assert "vector" in err
