"""The UniformSource API: byte-identical uniform producers.

The contract under test is the tentpole of the vectorized fan-in: a
:class:`~repro.sim.rng_batched.BatchedPCG64Source` serves every lane
the *same bytes* its device's private ``Generator.random`` would — for
any chunk size, across consecutive variable-shape requests, across
lane-block boundaries, through the process pool, and through
checkpoint/resume and shard re-partitioning — with the backing
generator objects landing in the exact states a serial fan-in leaves.
When the guarantee cannot be given (non-PCG64 streams, a buffered
half-draw, a numpy build that fails the self-check), ``"auto"`` falls
back to the serial :class:`~repro.sim.rng.FanInSource` and
``"batched"`` fails loudly.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.runtime import (
    Fleet,
    FleetController,
    MemoryTelemetry,
    device_rng,
)
from repro.runtime.controller import (
    UNIFORM_SOURCES,
    _FanInUniforms,
)
from repro.sim import rng_batched
from repro.sim.rng import (
    FanInSource,
    GeneratorSource,
    UniformSource,
)
from repro.sim.rng_batched import (
    BatchedDeviceStreams,
    BatchedPCG64Source,
    batched_available,
    derive_pcg64_multiplier,
    supports_generator,
)
from repro.util.validation import ValidationError


def _generators(n, seed=7):
    return [
        np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(i,)))
        for i in range(n)
    ]


def _reference_block(generators, chunk, n_kinds):
    out = np.empty((chunk, n_kinds, len(generators)))
    for lane, generator in enumerate(generators):
        out[:, :, lane] = generator.random((chunk, n_kinds))
    return out


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_sources_satisfy_protocol(self):
        generators = _generators(3)
        assert isinstance(GeneratorSource(generators[0]), UniformSource)
        assert isinstance(FanInSource(generators), UniformSource)
        assert isinstance(BatchedPCG64Source(generators), UniformSource)

    def test_plain_generator_satisfies_protocol(self):
        # Structural typing: the single-run simulate() path keeps
        # passing bare generators with no adapter.
        assert isinstance(np.random.default_rng(0), UniformSource)

    def test_generator_source_is_passthrough(self):
        a = np.random.default_rng(3)
        b = np.random.default_rng(3)
        source = GeneratorSource(a)
        assert source.generator is a
        assert (source.random((4, 2, 5)) == b.random((4, 2, 5))).all()


# ----------------------------------------------------------------------
# FanInSource: the serial reference producer + request validation
# ----------------------------------------------------------------------
class TestFanInSource:
    def test_per_lane_byte_identity(self):
        generators = _generators(9)
        reference = _generators(9)
        source = FanInSource(generators)
        block = source.random((13, 4, 9))
        assert (block == _reference_block(reference, 13, 4)).all()

    def test_lane_count_mismatch_raises(self):
        source = FanInSource(_generators(4))
        with pytest.raises(ValidationError, match="4 lanes"):
            source.random((8, 4, 5))

    def test_declared_kinds_mismatch_raises(self):
        # Satellite contract: a mismatched (chunk, kinds) request must
        # raise instead of silently desynchronizing every lane's stream.
        source = FanInSource(_generators(4), n_kinds=4)
        with pytest.raises(ValidationError, match="desynchronize"):
            source.random((8, 3, 4))

    def test_chunk_cap_exceeded_raises(self):
        source = FanInSource(_generators(4), n_kinds=4, max_chunk=16)
        with pytest.raises(ValidationError, match="chunk cap"):
            source.random((17, 4, 4))

    def test_non_block_request_raises(self):
        source = FanInSource(_generators(4))
        with pytest.raises(ValidationError, match="chunk, kinds, lanes"):
            source.random((8, 4))
        with pytest.raises(ValidationError, match="> 0"):
            source.random((0, 4, 4))

    def test_pooled_matches_serial_and_advances_parents(self):
        generators = _generators(10, seed=3)
        reference = _generators(10, seed=3)
        with FanInSource(generators, n_kinds=4, processes=2) as source:
            block = source.random((7, 4, 10))
        assert (block == _reference_block(reference, 7, 4)).all()
        # Worker-side draws must advance the parent's generator objects.
        for mine, theirs in zip(generators, reference):
            assert mine.bit_generator.state == theirs.bit_generator.state


# ----------------------------------------------------------------------
# the vectorized kernel
# ----------------------------------------------------------------------
class TestBatchedKernel:
    def test_multiplier_derivation_is_consistent(self):
        mult = derive_pcg64_multiplier()
        assert mult is not None
        # It must actually reproduce an observed transition.
        bit_generator = np.random.PCG64(99)
        inc = bit_generator.state["state"]["inc"]
        before = bit_generator.state["state"]["state"]
        bit_generator.random_raw(1)
        after = bit_generator.state["state"]["state"]
        assert (before * mult + inc) % (1 << 128) == after

    def test_available_on_this_build(self):
        assert batched_available()

    def test_supports_generator(self):
        assert supports_generator(np.random.default_rng(0))
        mt = np.random.Generator(np.random.MT19937(0))
        assert not supports_generator(mt)
        assert not supports_generator(object())

    def test_buffered_half_draw_is_unsupported(self):
        generator = np.random.default_rng(0)
        generator.integers(0, 10, dtype=np.uint32)  # buffers a uint32
        assert generator.bit_generator.state["has_uint32"]
        assert not supports_generator(generator)

    def test_streams_roundtrip_state_dicts(self):
        generators = _generators(5)
        streams = BatchedDeviceStreams.from_generators(generators)
        assert streams.n_lanes == 5
        for lane, generator in enumerate(generators):
            assert (
                streams.export_state(lane)
                == generator.bit_generator.state["state"]
            )

    def test_streams_reject_bad_stack_shape(self):
        with pytest.raises(ValidationError, match=r"\(n_lanes, 4\)"):
            BatchedDeviceStreams(np.zeros((3, 3), dtype=np.uint64))

    def test_streams_reject_non_pcg64_naming_lane(self):
        generators = _generators(3)
        generators[2] = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(ValidationError, match="lane 2"):
            BatchedDeviceStreams.from_generators(generators)

    def test_uniform_block_rejects_empty_request(self):
        streams = BatchedDeviceStreams.from_generators(_generators(3))
        with pytest.raises(ValidationError, match="chunk > 0"):
            streams.uniform_block(0, 4)

    @pytest.mark.parametrize("chunk", [1, 2, 17, 64, 256])
    def test_byte_identity_across_chunk_sizes(self, chunk):
        generators = _generators(33)
        reference = _generators(33)
        streams = BatchedDeviceStreams.from_generators(generators)
        block = streams.uniform_block(chunk, 4)
        assert block.shape == (chunk, 4, 33)
        assert (block == _reference_block(reference, chunk, 4)).all()

    def test_consecutive_variable_shape_calls(self):
        generators = _generators(21)
        reference = _generators(21)
        streams = BatchedDeviceStreams.from_generators(generators)
        for chunk, kinds in ((17, 4), (5, 3), (1, 1), (30, 4)):
            block = streams.uniform_block(chunk, kinds)
            assert (
                block == _reference_block(reference, chunk, kinds)
            ).all()
        # After all draws the stacked state equals the generators'.
        for lane, generator in enumerate(reference):
            assert (
                streams.export_state(lane)
                == generator.bit_generator.state["state"]
            )


# ----------------------------------------------------------------------
# BatchedPCG64Source: the fleet-facing source
# ----------------------------------------------------------------------
class TestBatchedSource:
    def test_sync_advances_generators_exactly(self):
        generators = _generators(8)
        reference = _generators(8)
        source = BatchedPCG64Source(generators, n_kinds=4)
        source.random((11, 4, 8))
        assert source.pending_draws == 44
        source.random((5, 4, 8))
        assert source.pending_draws == 64
        source.sync()
        assert source.pending_draws == 0
        for generator in reference:
            generator.random((16, 4))
        for mine, theirs in zip(generators, reference):
            assert mine.bit_generator.state == theirs.bit_generator.state
        # Post-sync, the generators continue their streams directly.
        for mine, theirs in zip(generators, reference):
            assert (mine.random(3) == theirs.random(3)).all()

    def test_sync_without_draws_is_noop(self):
        generators = _generators(2)
        before = [g.bit_generator.state for g in generators]
        source = BatchedPCG64Source(generators)
        source.sync()
        for generator, state in zip(generators, before):
            assert generator.bit_generator.state == state

    def test_validates_declared_geometry(self):
        source = BatchedPCG64Source(_generators(6), n_kinds=4, max_chunk=32)
        with pytest.raises(ValidationError, match="desynchronize"):
            source.random((8, 3, 6))
        with pytest.raises(ValidationError, match="chunk cap"):
            source.random((33, 4, 6))
        with pytest.raises(ValidationError, match="6 lanes"):
            source.random((8, 4, 5))

    def test_rejects_ineligible_generator(self):
        generators = _generators(3)
        generators[1] = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(ValidationError, match="lane 1"):
            BatchedPCG64Source(generators)

    def test_pooled_blocks_are_byte_identical(self, monkeypatch):
        monkeypatch.setattr(rng_batched, "LANE_BAND", 8)
        generators = _generators(21, seed=9)
        reference = _generators(21, seed=9)
        with BatchedPCG64Source(generators, processes=2) as source:
            block = source.random((11, 3, 21))
            source.sync()
        assert (block == _reference_block(reference, 11, 3)).all()
        for mine, theirs in zip(generators, reference):
            assert mine.bit_generator.state == theirs.bit_generator.state

    def test_unavailable_build_raises_with_reason(self, monkeypatch):
        monkeypatch.setattr(
            rng_batched,
            "_DERIVED",
            {"mult": None, "reason": "simulated unsupported build"},
        )
        assert not batched_available()
        with pytest.raises(ValidationError, match="simulated unsupported"):
            BatchedPCG64Source(_generators(2))


# ----------------------------------------------------------------------
# the controller knob
# ----------------------------------------------------------------------
def _stationary_fleet(n, seed=0):
    from repro.policies import StationaryPolicyAgent, eager_markov_policy
    from repro.systems import disk_drive

    bundle = disk_drive.build()
    policy = eager_markov_policy(bundle.system, "go_active", "go_sleep")
    fleet = Fleet()
    for i in range(n):
        fleet.add_device(
            f"disk-{i:04d}",
            bundle.system,
            bundle.costs,
            StationaryPolicyAgent(bundle.system, policy),
            rng=device_rng(seed, i),
        )
    return fleet


def _run_records(fleet, uniform_source, ticks=3, slices=700, **kwargs):
    sink = MemoryTelemetry()
    controller = FleetController(
        fleet,
        slices_per_tick=slices,
        uniform_source=uniform_source,
        telemetry=sink,
        telemetry_per_device=True,
        **kwargs,
    )
    controller.run(ticks)
    return controller, sink.records


def _strip_stamp(records):
    return [
        json.dumps(
            {k: v for k, v in record.items() if k != "uniform_source"},
            sort_keys=True,
        )
        for record in records
    ]


class TestControllerKnob:
    def test_knob_is_validated(self):
        with pytest.raises(ValidationError, match="uniform_source"):
            FleetController(_stationary_fleet(2), uniform_source="turbo")
        assert UNIFORM_SOURCES == ("auto", "fanin", "batched")

    def test_snapshot_stamps_requested_knob(self):
        for knob in UNIFORM_SOURCES:
            controller, records = _run_records(
                _stationary_fleet(4), knob, ticks=1, slices=50
            )
            assert controller.uniform_source == knob
            assert records[0]["uniform_source"] == knob

    def test_fanin_batched_auto_byte_identical(self):
        reference = None
        states = None
        for knob in UNIFORM_SOURCES:
            fleet = _stationary_fleet(40)
            _, records = _run_records(fleet, knob)
            stripped = _strip_stamp(records)
            final = [
                device.rng.bit_generator.state for device in fleet
            ]
            if reference is None:
                reference, states = stripped, final
            else:
                assert stripped == reference
                assert final == states

    def test_block_boundaries_are_bitwise_neutral(self, monkeypatch):
        # Shrink the lane block so 11 devices split 4|4|3: per-lane
        # streams must not notice which block (or source) serves them.
        from repro.runtime import controller as controller_module

        fleet_small = _stationary_fleet(11)
        monkeypatch.setattr(controller_module, "FLEET_LANE_BLOCK", 4)
        _, split = _run_records(fleet_small, "batched", ticks=2)
        monkeypatch.undo()
        fleet_whole = _stationary_fleet(11)
        _, whole = _run_records(fleet_whole, "batched", ticks=2)
        assert _strip_stamp(split) == _strip_stamp(whole)

    def test_mixed_generator_fleet_auto_falls_back(self):
        fleet = _stationary_fleet(6)
        devices = list(fleet)
        devices[3].rng = np.random.Generator(np.random.MT19937(5))
        reference = _stationary_fleet(6)
        list(reference)[3].rng = np.random.Generator(np.random.MT19937(5))
        _, auto_records = _run_records(fleet, "auto", ticks=2)
        _, fanin_records = _run_records(reference, "fanin", ticks=2)
        assert _strip_stamp(auto_records) == _strip_stamp(fanin_records)

    def test_mixed_generator_fleet_batched_raises(self):
        fleet = _stationary_fleet(6)
        list(fleet)[3].rng = np.random.Generator(np.random.MT19937(5))
        controller = FleetController(
            fleet, slices_per_tick=50, uniform_source="batched"
        )
        with pytest.raises(ValidationError, match="lane 3"):
            controller.step_tick()

    def test_batched_unavailable_build_fails_at_construction(
        self, monkeypatch
    ):
        monkeypatch.setattr(
            rng_batched,
            "_DERIVED",
            {"mult": None, "reason": "simulated unsupported build"},
        )
        with pytest.raises(ValidationError, match="simulated unsupported"):
            FleetController(
                _stationary_fleet(2), uniform_source="batched"
            )
        # auto degrades to the serial fan-in instead of failing.
        controller, records = _run_records(
            _stationary_fleet(4), "auto", ticks=1, slices=50
        )
        assert records[0]["uniform_source"] == "auto"

    def test_fanin_uniforms_alias_warns_and_works(self):
        generators = _generators(3)
        reference = _generators(3)
        with pytest.deprecated_call():
            shim = _FanInUniforms(generators)
        block = shim.random((5, 4, 3))
        assert (block == _reference_block(reference, 5, 4)).all()


# ----------------------------------------------------------------------
# checkpoint/resume and shard transport with batched active
# ----------------------------------------------------------------------
class TestPersistence:
    def test_checkpoint_resume_byte_identity(self, tmp_path):
        # Uninterrupted batched run vs checkpoint-at-2 + resumed run.
        _, straight = _run_records(
            _stationary_fleet(24), "batched", ticks=4
        )
        fleet = _stationary_fleet(24)
        controller, records = _run_records(fleet, "batched", ticks=2)
        path = tmp_path / "fleet.ckpt"
        controller.save_checkpoint(path)
        resumed = FleetController.resume(path, telemetry=None)
        assert resumed.uniform_source == "batched"
        sink = MemoryTelemetry()
        resumed._telemetry = sink
        resumed._telemetry_per_device = True
        resumed.run(2)
        assert _strip_stamp(records + sink.records) == _strip_stamp(
            straight
        )

    def test_resume_override_is_byte_identical(self, tmp_path):
        fleet = _stationary_fleet(12)
        controller, _ = _run_records(fleet, "fanin", ticks=1)
        path = tmp_path / "fleet.ckpt"
        controller.save_checkpoint(path)
        a = FleetController.resume(path)
        b = FleetController.resume(path, uniform_source="batched")
        assert a.uniform_source == "fanin"
        assert b.uniform_source == "batched"
        a.run(1)
        b.run(1)
        assert _strip_stamp([a.snapshot(per_device=True)]) == _strip_stamp(
            [b.snapshot(per_device=True)]
        )

    def test_pre_knob_checkpoint_resumes_as_auto(self, tmp_path):
        from repro.runtime.checkpoint import (
            load_checkpoint,
            write_checkpoint,
        )

        fleet = _stationary_fleet(4)
        controller, _ = _run_records(fleet, "auto", ticks=1, slices=50)
        path = tmp_path / "fleet.ckpt"
        controller.save_checkpoint(path)
        payload = load_checkpoint(path)
        assert payload["uniform_source"] == "auto"
        del payload["uniform_source"]
        legacy = tmp_path / "legacy.ckpt"
        write_checkpoint(legacy, payload)
        resumed = FleetController.resume(legacy)
        assert resumed.uniform_source == "auto"

    def test_shard_repartition_identity_with_batched(self, tmp_path):
        # A 2-shard batched daemon's telemetry continues a 1-process
        # fanin run byte-for-byte after resuming its checkpoint with a
        # different partitioning.
        from repro.runtime.telemetry import snapshot_from_records
        from repro.service import ShardSupervisor

        _, straight = _run_records(
            _stationary_fleet(10), "fanin", ticks=4, slices=200
        )
        fleet = _stationary_fleet(10)
        controller, prefix = _run_records(
            fleet, "batched", ticks=2, slices=200
        )
        path = tmp_path / "fleet.ckpt"
        controller.save_checkpoint(path)
        payload_fleet = FleetController.resume(path).fleet
        supervisor = ShardSupervisor(
            2,
            slices_per_tick=200,
            uniform_source="batched",
            checkpoint_every=0,
        )
        supervisor.start(payload_fleet, tick=2)
        try:
            tail = []
            for _ in range(2):
                supervisor.step_tick()
                record = snapshot_from_records(
                    supervisor.tick,
                    supervisor.collect_records(),
                    per_device=True,
                )
                record["backend"] = supervisor.resolved_backend
                record["uniform_source"] = supervisor.uniform_source
                tail.append(record)
            info = supervisor.info()
            assert info["uniform_source"] == "batched"
        finally:
            supervisor.stop()
        assert _strip_stamp(prefix + tail) == _strip_stamp(straight)
