"""Unit tests for the SP / SR / SQ component models (Defs 3.1-3.3)."""

import numpy as np
import pytest

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.markov.chain import MarkovChain
from repro.markov.controlled import ControlledMarkovChain
from repro.systems import example_system
from repro.util.validation import ValidationError


class TestServiceProvider:
    def test_example_31_tables(self):
        sp = example_system.build_provider()
        assert sp.n_states == 2
        assert sp.n_commands == 2
        assert sp.service_rate("on", "s_on") == 0.8
        assert sp.service_rate("on", "s_off") == 0.0
        assert sp.service_rate("off", "s_on") == 0.0
        assert sp.power("on", "s_on") == 3.0
        assert sp.power("on", "s_off") == 4.0
        assert sp.power("off", "s_off") == 0.0

    def test_active_and_sleep_states(self):
        sp = example_system.build_provider()
        assert sp.active_states == ("on",)
        assert sp.sleep_states == ("off",)

    def test_expected_transition_time_eq2(self):
        # Example 3.1: off -> on under s_on averages 10 slices.
        sp = example_system.build_provider()
        assert sp.expected_transition_time("off", "on", "s_on") == pytest.approx(10.0)

    def test_impossible_transition_is_infinite(self):
        sp = example_system.build_provider()
        assert sp.expected_transition_time("off", "on", "s_off") == float("inf")

    def test_rejects_service_rate_above_one(self):
        chain = ControlledMarkovChain({"a": np.eye(2)}, state_names=["x", "y"])
        with pytest.raises(ValidationError, match="service_rates"):
            ServiceProvider(chain, [[1.5], [0.0]], [[1.0], [1.0]])

    def test_rejects_negative_power(self):
        chain = ControlledMarkovChain({"a": np.eye(2)}, state_names=["x", "y"])
        with pytest.raises(ValidationError, match="non-negative"):
            ServiceProvider(chain, [[0.5], [0.0]], [[-1.0], [1.0]])

    def test_rejects_incomplete_mapping_table(self):
        chain = ControlledMarkovChain({"a": np.eye(2)}, state_names=["x", "y"])
        with pytest.raises(ValidationError, match="missing"):
            ServiceProvider(chain, {"x": {"a": 0.5}}, [[1.0], [1.0]])

    def test_rejects_unknown_state_in_table(self):
        chain = ControlledMarkovChain({"a": np.eye(2)}, state_names=["x", "y"])
        with pytest.raises(ValidationError, match="unknown state"):
            ServiceProvider(
                chain, {"x": {"a": 0.5}, "z": {"a": 0.0}}, [[1.0], [1.0]]
            )

    def test_rejects_non_chain(self):
        with pytest.raises(ValidationError, match="ControlledMarkovChain"):
            ServiceProvider("not a chain", [[0.0]], [[0.0]])

    def test_matrix_copies_isolated(self):
        sp = example_system.build_provider()
        rates = sp.service_rate_matrix
        rates[0, 0] = 0.0
        assert sp.service_rate("on", "s_on") == 0.8


class TestServiceRequester:
    def test_example_32(self):
        sr = example_system.build_requester()
        assert sr.n_states == 2
        assert sr.arrivals("0") == 0
        assert sr.arrivals("1") == 1
        assert sr.max_arrivals == 1

    def test_mean_arrival_rate(self):
        sr = example_system.build_requester()
        # Stationary busy probability 0.25, one request per busy slice.
        assert sr.mean_arrival_rate() == pytest.approx(0.25, abs=1e-10)

    def test_arrivals_mapping_form(self):
        chain = MarkovChain(np.eye(2), ["quiet", "loud"])
        sr = ServiceRequester(chain, {"quiet": 0, "loud": 3})
        assert sr.arrivals("loud") == 3
        assert sr.arrival_counts.tolist() == [0, 3]

    def test_rejects_negative_arrivals(self):
        chain = MarkovChain(np.eye(2))
        with pytest.raises(ValidationError, match="non-negative"):
            ServiceRequester(chain, [0, -1])

    def test_rejects_missing_mapping_state(self):
        chain = MarkovChain(np.eye(2), ["a", "b"])
        with pytest.raises(ValidationError, match="missing"):
            ServiceRequester(chain, {"a": 1})

    def test_rejects_wrong_length(self):
        chain = MarkovChain(np.eye(2))
        with pytest.raises(ValidationError, match="entries"):
            ServiceRequester(chain, [0, 1, 2])


class TestServiceQueue:
    def test_example_33_matrix(self):
        # Paper Example 3.3: Q=1, sigma=0.8, one arrival.
        queue = ServiceQueue(1)
        matrix = queue.transition_matrix(0.8, 1)
        assert np.allclose(matrix, [[0.8, 0.2], [0.0, 1.0]])

    def test_no_arrivals_empty_queue_stays(self):
        queue = ServiceQueue(2)
        dist = queue.next_state_distribution(0, 0.8, 0)
        assert dist.tolist() == [1.0, 0.0, 0.0]

    def test_no_arrivals_full_queue_drains(self):
        # Paper corner case: full queue with z=0 drains with prob sigma.
        queue = ServiceQueue(2)
        dist = queue.next_state_distribution(2, 0.6, 0)
        assert dist.tolist() == pytest.approx([0.0, 0.6, 0.4])

    def test_full_queue_with_arrivals_stays_full(self):
        # Paper corner case: "it will remain Q with probability 1 if z > 0".
        queue = ServiceQueue(2)
        dist = queue.next_state_distribution(2, 0.6, 1)
        assert dist.tolist() == [0.0, 0.0, 1.0]

    def test_burst_overflows_to_full(self):
        # Arrivals exceeding capacity land at Q with probability 1.
        queue = ServiceQueue(2)
        dist = queue.next_state_distribution(1, 0.0, 5)
        assert dist.tolist() == [0.0, 0.0, 1.0]

    def test_service_of_incoming_request(self):
        # An arrival can be serviced in the same slice (Example 3.3).
        queue = ServiceQueue(1)
        dist = queue.next_state_distribution(0, 0.8, 1)
        assert dist.tolist() == pytest.approx([0.8, 0.2])

    def test_zero_capacity_queue(self):
        queue = ServiceQueue(0)
        assert queue.n_states == 1
        dist = queue.next_state_distribution(0, 0.5, 3)
        assert dist.tolist() == [1.0]

    def test_expected_loss_zero_when_no_overflow(self):
        queue = ServiceQueue(2)
        assert queue.expected_loss(0, 0.8, 1) == 0.0
        assert queue.expected_loss(1, 0.8, 1) == 0.0

    def test_expected_loss_full_queue(self):
        # q=Q=2, one arrival: lose it unless a service frees a slot.
        queue = ServiceQueue(2)
        assert queue.expected_loss(2, 0.6, 1) == pytest.approx(0.4)

    def test_expected_loss_massive_burst(self):
        queue = ServiceQueue(1)
        # q=1, z=4: pending 5; serve one w.p. 0.5 -> lose 3 or 4.
        assert queue.expected_loss(1, 0.5, 4) == pytest.approx(3.5)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValidationError):
            ServiceQueue(-1)

    def test_rejects_out_of_range_length(self):
        with pytest.raises(ValidationError, match="out of range"):
            ServiceQueue(2).next_state_distribution(3, 0.5, 0)

    def test_rejects_negative_arrivals(self):
        with pytest.raises(ValidationError):
            ServiceQueue(2).next_state_distribution(0, 0.5, -1)
