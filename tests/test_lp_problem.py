"""Unit tests for :mod:`repro.lp.problem`."""

import numpy as np
import pytest

from repro.lp.problem import LinearProgram
from repro.util.validation import ValidationError


def small_lp() -> LinearProgram:
    lp = LinearProgram([1.0, 2.0, 0.0])
    lp.add_equality([1.0, 1.0, 1.0], 1.0)
    lp.add_inequality([1.0, 0.0, 0.0], 0.75)
    return lp


class TestConstruction:
    def test_counts(self):
        lp = small_lp()
        assert lp.n_variables == 3
        assert lp.n_equalities == 1
        assert lp.n_inequalities == 1

    def test_rejects_empty_objective(self):
        with pytest.raises(ValidationError):
            LinearProgram([])

    def test_rejects_nan_objective(self):
        with pytest.raises(ValidationError):
            LinearProgram([1.0, float("nan")])

    def test_rejects_wrong_row_shape(self):
        lp = LinearProgram([1.0, 2.0])
        with pytest.raises(ValidationError, match="shape"):
            lp.add_equality([1.0], 0.0)

    def test_rejects_nan_rhs(self):
        lp = LinearProgram([1.0])
        with pytest.raises(ValidationError):
            lp.add_inequality([1.0], float("nan"))

    def test_lower_bound_stored_negated(self):
        lp = LinearProgram([1.0, 1.0])
        lp.add_lower_bound_inequality([1.0, 0.0], 2.0)
        assert np.allclose(lp.A_ub, [[-1.0, 0.0]])
        assert np.allclose(lp.b_ub, [-2.0])


class TestMatrices:
    def test_matrix_assembly(self):
        lp = small_lp()
        assert lp.A_eq.shape == (1, 3)
        assert lp.A_ub.shape == (1, 3)
        assert lp.b_eq.tolist() == [1.0]
        assert lp.b_ub.tolist() == [0.75]

    def test_empty_matrices(self):
        lp = LinearProgram([1.0])
        assert lp.A_eq.shape == (0, 1)
        assert lp.A_ub.shape == (0, 1)

    def test_objective_value(self):
        lp = small_lp()
        assert lp.objective_value([1.0, 1.0, 1.0]) == 3.0


class TestFeasibility:
    def test_feasible_point(self):
        lp = small_lp()
        assert lp.is_feasible([0.5, 0.25, 0.25])

    def test_equality_violation(self):
        lp = small_lp()
        res = lp.residuals([0.0, 0.0, 0.0])
        assert res["equality"] == pytest.approx(1.0)
        assert not lp.is_feasible([0.0, 0.0, 0.0])

    def test_inequality_violation(self):
        lp = small_lp()
        res = lp.residuals([1.0, 0.0, 0.0])
        assert res["inequality"] == pytest.approx(0.25)

    def test_bound_violation(self):
        lp = small_lp()
        res = lp.residuals([-0.5, 1.0, 0.5])
        assert res["bound"] == pytest.approx(0.5)


class TestStandardForm:
    def test_slack_variables_added(self):
        std = small_lp().to_standard_form()
        assert std.n_original == 3
        assert std.n_variables == 4  # one slack
        assert std.n_constraints == 2

    def test_slack_makes_inequality_tight(self):
        std = small_lp().to_standard_form()
        x = np.array([0.5, 0.25, 0.25, 0.25])  # slack = 0.75 - 0.5
        assert np.allclose(std.A @ x, std.b)

    def test_objective_extension_is_zero(self):
        std = small_lp().to_standard_form()
        assert std.c[3] == 0.0

    def test_extract_original(self):
        std = small_lp().to_standard_form()
        assert std.extract_original([1.0, 2.0, 3.0, 9.0]).tolist() == [1.0, 2.0, 3.0]

    def test_no_constraints(self):
        std = LinearProgram([1.0, 1.0]).to_standard_form()
        assert std.A.shape == (0, 2)
        assert std.b.shape == (0,)


class TestMutation:
    """Cheap RHS/row mutation for the sweep engine's shared LP."""

    def test_set_inequality_rhs(self):
        lp = small_lp()
        lp.set_inequality_rhs(0, 0.25)
        assert lp.b_ub[0] == 0.25
        assert lp.A_ub[0, 0] == 1.0  # row untouched

    def test_set_inequality_rhs_validates(self):
        lp = small_lp()
        with pytest.raises(ValidationError, match="out of range"):
            lp.set_inequality_rhs(5, 0.1)
        with pytest.raises(ValidationError, match="finite"):
            lp.set_inequality_rhs(0, float("inf"))

    def test_set_inequality_replaces_row(self):
        lp = small_lp()
        lp.set_inequality(0, [0.0, 1.0, 0.0], 0.5)
        assert lp.A_ub[0].tolist() == [0.0, 1.0, 0.0]
        assert lp.b_ub[0] == 0.5

    def test_matrix_cache_reused_and_invalidated(self):
        lp = small_lp()
        first = lp.A_eq
        assert lp.A_eq is first  # cached
        lp.add_equality([0.0, 1.0, 0.0], 0.5)
        assert lp.A_eq.shape == (2, 3)  # cache refreshed
        assert not lp.A_eq.flags.writeable

    def test_rhs_mutation_keeps_matrix_cache(self):
        lp = small_lp()
        cached = lp.A_ub
        lp.set_inequality_rhs(0, 0.1)
        assert lp.A_ub is cached

    def test_with_upper_bound_row_shares_equality_block(self):
        lp = small_lp()
        eq_cache = lp.A_eq
        clone = lp.with_upper_bound_row([0.0, 0.0, 1.0], 0.9)
        assert clone.n_inequalities == lp.n_inequalities + 1
        assert lp.n_inequalities == 1  # original untouched
        assert clone.A_eq is eq_cache  # shared assembly
        assert clone.b_ub[-1] == 0.9

    def test_with_upper_bound_row_isolated_after_clone(self):
        lp = small_lp()
        clone = lp.with_upper_bound_row([0.0, 0.0, 1.0], 0.9)
        clone.set_inequality_rhs(0, 0.1)
        assert lp.b_ub[0] == 0.75  # original rhs unchanged

    def test_copy_solves_identically(self):
        from repro.lp.solve import solve_lp

        lp = small_lp()
        clone = lp.copy()
        assert solve_lp(lp).objective == pytest.approx(
            solve_lp(clone).objective
        )
