"""Backend equivalence suite: loop vs vector vs the seed engine.

Three layers of guarantees:

1. **Golden byte-for-byte**: the loop path must reproduce the exact
   pre-refactor engine output for fixed seeds (hex-encoded floats
   captured from the seed revision) — heuristic agents, stationary
   agents, randomized policies, and session mode.
2. **Common random numbers**: on an always-issuing workload with a
   fully randomized policy, the loop and vector backends consume
   uniforms in the same order, so a single-lane vector run reproduces
   the loop trajectory *exactly* (counters, commands, occupancy, final
   state; averages to float-summation-order precision).
3. **Statistical**: batched vector replications agree with the
   closed-form policy evaluation and with loop replications within
   Monte-Carlo tolerance.
"""

import numpy as np
import pytest

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import PENALTY, POWER, CostModel
from repro.core.pareto import simulate_curve, trade_off_curve
from repro.core.policy import MarkovPolicy, evaluate_policy
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.policies import (
    ConstantAgent,
    StationaryAgent,
    StationaryPolicyAgent,
    TimeoutAgent,
)
from repro.policies.markov_conversion import eager_markov_policy
from repro.sim import (
    LoopBackend,
    VectorBackend,
    get_backend,
    make_rng,
    resolve_backend,
    simulate,
    simulate_many,
    simulate_replications,
    simulate_sessions,
)
from repro.systems import disk_drive, example_system
from repro.util.validation import ValidationError


def _hex(values: dict) -> dict:
    return {name: float.fromhex(h) for name, h in values.items()}


class TestGoldenLoopPath:
    """The default/loop path reproduces the seed engine bit for bit."""

    def test_disk_eager_stationary(self):
        bundle = disk_drive.build()
        policy = eager_markov_policy(bundle.system, "go_active", "go_idle")
        agent = StationaryPolicyAgent(bundle.system, policy)
        result = simulate(
            bundle.system,
            bundle.costs,
            agent,
            20_000,
            make_rng(0),
            initial_state=("active", "0", 0),
        )
        assert result.averages == _hex(
            {
                "loss": "0x1.0cb295e9e1b09p-9",
                "overflow": "0x1.82ee068351d96p-12",
                "penalty": "0x1.30be0ded288cep-8",
                "power": "0x1.00ff972474539p+0",
            }
        )
        assert (
            result.arrivals,
            result.serviced,
            result.lost,
            result.loss_event_slices,
        ) == (45, 35, 10, 41)
        assert result.command_counts.tolist() == [51, 19949, 0, 0, 0]
        assert result.final_state == (1, 0, 0)

    def test_example_randomized_policy(self):
        bundle = example_system.build()
        rows = np.tile([[0.3, 0.7]], (8, 1))
        rows[::2] = [0.6, 0.4]
        policy = MarkovPolicy(rows, ("s_on", "s_off"))
        agent = StationaryPolicyAgent(bundle.system, policy)
        result = simulate(
            bundle.system,
            bundle.costs,
            agent,
            5_000,
            make_rng(123),
            initial_state=("on", "0", 0),
        )
        assert result.averages == _hex(
            {
                "loss": "0x1.d77318fc50481p-3",
                "overflow": "0x1.c9c4da9003d79p-3",
                "penalty": "0x1.bd3c36113404fp-1",
                "power": "0x1.7e00d1b71758ep+0",
            }
        )
        assert (
            result.arrivals,
            result.serviced,
            result.lost,
            result.loss_event_slices,
        ) == (1159, 64, 1094, 1151)
        assert result.command_counts.tolist() == [1717, 3283]
        assert result.provider_occupancy.tolist() == [347, 4653]
        assert result.final_state == (1, 0, 1)

    def test_example_constant_agent(self):
        bundle = example_system.build()
        result = simulate(
            bundle.system, bundle.costs, ConstantAgent(0), 2_000, make_rng(9)
        )
        assert result.averages == _hex(
            {
                "loss": "0x1.46a7ef9db22d1p-3",
                "overflow": "0x1.bce8533b107aap-6",
                "penalty": "0x1.4ed916872b021p-3",
                "power": "0x1.8000000000000p+1",
            }
        )
        assert result.final_state == (0, 1, 1)

    def test_disk_timeout_heuristic(self):
        bundle = disk_drive.build()
        agent = TimeoutAgent(
            50,
            bundle.metadata["active_command"],
            bundle.metadata["sleep_commands"]["standby"],
        )
        result = simulate(
            bundle.system,
            bundle.costs,
            agent,
            5_000,
            make_rng(5),
            initial_state=("active", "0", 0),
        )
        assert result.averages == _hex(
            {
                "loss": "0x1.0624dd2f1a9fcp-7",
                "overflow": "0x1.de4a22b8e78b4p-8",
                "penalty": "0x1.a305532617c1cp-2",
                "power": "0x1.977d955714f12p-1",
            }
        )
        assert result.command_counts.tolist() == [1124, 0, 0, 3876, 0]
        assert result.final_state == (6, 0, 0)

    def test_sessions_loop_golden(self):
        bundle = example_system.build()
        stats = simulate_sessions(
            bundle.system,
            bundle.costs,
            ConstantAgent(0),
            0.99,
            50,
            make_rng(11),
            initial_state=("on", "0", 0),
            backend="loop",
        )
        assert stats[POWER].count == 50
        assert stats[POWER].mean == float.fromhex("0x1.edccccccccccdp+7")
        assert stats[POWER].std == float.fromhex("0x1.360a446386265p+8")
        assert stats[PENALTY].mean == float.fromhex("0x1.b851eb851eb85p+3")


def _crn_system():
    """Always-issuing workload: every slice has pending work, so the
    loop draws its service uniform every slice and the vector backend's
    fixed draw schedule (policy, SP, SR, service) aligns with it."""
    provider = ServiceProvider.from_tables(
        states=["on", "off"],
        commands=["s_on", "s_off"],
        transitions={
            "s_on": [[1.0, 0.0], [0.4, 0.6]],
            "s_off": [[0.3, 0.7], [0.0, 1.0]],
        },
        service_rates=[[0.7, 0.1], [0.05, 0.0]],
        power=[[3.0, 4.0], [4.0, 0.5]],
    )
    requester = ServiceRequester(
        MarkovChain([[0.8, 0.2], [0.3, 0.7]], ["lo", "hi"]), arrivals=[1, 2]
    )
    system = PowerManagedSystem(provider, requester, ServiceQueue(3))
    return system, CostModel.standard(system)


def _randomized_policy(system, seed=0):
    rows = np.random.default_rng(seed).uniform(
        0.1, 0.9, size=(system.n_states, system.n_commands)
    )
    rows /= rows.sum(axis=1, keepdims=True)
    return MarkovPolicy(rows, ("s_on", "s_off"))


class TestCommonRandomNumbers:
    """Exact-distribution check: identical uniforms, identical paths."""

    @pytest.mark.parametrize("seed", [21, 99, 1234])
    def test_single_lane_trajectories_coincide(self, seed):
        system, costs = _crn_system()
        agent = StationaryPolicyAgent(system, _randomized_policy(system))
        kwargs = dict(initial_state=("on", "lo", 0))
        a = simulate(
            system, costs, agent, 4_000, make_rng(seed), backend="loop", **kwargs
        )
        b = simulate(
            system, costs, agent, 4_000, make_rng(seed), backend="vector", **kwargs
        )
        assert a.final_state == b.final_state
        assert (a.arrivals, a.serviced, a.lost, a.loss_event_slices) == (
            b.arrivals,
            b.serviced,
            b.lost,
            b.loss_event_slices,
        )
        assert a.command_counts.tolist() == b.command_counts.tolist()
        assert a.provider_occupancy.tolist() == b.provider_occupancy.tolist()
        for metric in a.averages:
            # Totals accumulate in different float orders (per-slice vs
            # per-chunk); the trajectories themselves are identical.
            assert a.averages[metric] == pytest.approx(
                b.averages[metric], rel=1e-12, abs=1e-12
            )

    def test_deterministic_policy_trajectories_coincide(self):
        # With a fully deterministic policy neither backend consumes a
        # policy uniform, so alignment holds there too.
        system, costs = _crn_system()
        policy = MarkovPolicy.constant(0, system.n_states, 2, ("s_on", "s_off"))
        agent = StationaryPolicyAgent(system, policy)
        a = simulate(
            system, costs, agent, 3_000, make_rng(8), backend="loop",
            initial_state=("on", "lo", 0),
        )
        b = simulate(
            system, costs, agent, 3_000, make_rng(8), backend="vector",
            initial_state=("on", "lo", 0),
        )
        assert a.final_state == b.final_state
        assert a.command_counts.tolist() == b.command_counts.tolist()
        assert (a.arrivals, a.serviced, a.lost) == (
            b.arrivals,
            b.serviced,
            b.lost,
        )


class TestStatisticalEquivalence:
    """Batched vector runs agree with the closed-form evaluation."""

    def test_vector_matches_analytic_disk(self):
        bundle = disk_drive.build()
        policy = eager_markov_policy(bundle.system, "go_active", "go_idle")
        agent = StationaryPolicyAgent(bundle.system, policy)
        results = simulate_replications(
            bundle.system,
            bundle.costs,
            agent,
            40_000,
            16,
            rng=3,
            initial_state=("active", "0", 0),
            backend="vector",
        )
        analytic = evaluate_policy(
            bundle.system,
            bundle.costs,
            policy,
            bundle.gamma,
            bundle.initial_distribution,
        )
        assert len(results) == 16
        mean_power = np.mean([r.averages[POWER] for r in results])
        assert mean_power == pytest.approx(
            analytic.averages[POWER], rel=0.02, abs=0.01
        )

    def test_loop_and_vector_replication_means_agree(self):
        bundle = example_system.build()
        policy = _randomized_policy(bundle.system, seed=5)
        agent = StationaryPolicyAgent(bundle.system, policy)
        common = dict(initial_state=("on", "0", 0))
        loop_runs = simulate_replications(
            bundle.system, bundle.costs, agent, 15_000, 8, rng=1,
            backend="loop", **common,
        )
        vector_runs = simulate_replications(
            bundle.system, bundle.costs, agent, 15_000, 8, rng=2,
            backend="vector", **common,
        )
        for metric in (POWER, PENALTY):
            loop_mean = np.mean([r.averages[metric] for r in loop_runs])
            vec_mean = np.mean([r.averages[metric] for r in vector_runs])
            assert loop_mean == pytest.approx(vec_mean, rel=0.08, abs=0.05)

    def test_vector_loss_occupancy_consistency(self):
        # Physical counters stay internally consistent lane by lane.
        bundle = example_system.build()
        policy = MarkovPolicy.constant(1, 8, 2, ("s_on", "s_off"))
        results = simulate_replications(
            bundle.system, bundle.costs, policy, 10_000, 12, rng=7,
            initial_state=("on", "0", 0), backend="vector",
        )
        capacity = bundle.system.queue.capacity
        for r in results:
            assert r.command_counts.sum() == r.n_slices
            assert r.provider_occupancy.sum() == r.n_slices
            assert r.serviced + r.lost <= r.arrivals
            assert r.arrivals - r.serviced - r.lost <= capacity
            assert r.averages["loss"] == pytest.approx(
                r.loss_event_slices / r.n_slices, abs=1e-9
            )

    def test_vector_sessions_estimate_discounted_totals(self):
        bundle = example_system.build()
        gamma = 0.99
        policy = MarkovPolicy.constant(0, 8, 2, ("s_on", "s_off"))
        analytic = evaluate_policy(
            bundle.system,
            bundle.costs,
            policy,
            gamma,
            bundle.initial_distribution,
        )
        agent = StationaryPolicyAgent(bundle.system, policy)
        stats = simulate_sessions(
            bundle.system,
            bundle.costs,
            agent,
            gamma,
            600,
            make_rng(11),
            initial_state=("on", "0", 0),
            backend="vector",
        )
        assert stats[POWER].count == 600
        assert stats[POWER].agrees_with(analytic.totals[POWER], confidence=0.999)


class TestDispatch:
    def test_auto_single_run_is_loop(self):
        system, _ = _crn_system()
        agent = StationaryPolicyAgent(system, _randomized_policy(system))
        assert resolve_backend("auto", agent, batch_size=1).name == "loop"

    def test_auto_batched_stationary_is_batch_tier(self):
        # "auto" resolves batched stationary runs to the preferred batch
        # tier: jit when numba imports, vector otherwise.
        from repro.sim import jit_available

        expected = "jit" if jit_available() else "vector"
        system, _ = _crn_system()
        agent = StationaryPolicyAgent(system, _randomized_policy(system))
        assert resolve_backend("auto", agent, batch_size=32).name == expected
        assert resolve_backend("auto", ConstantAgent(0), batch_size=8).name == (
            expected
        )

    def test_auto_batched_heuristic_is_loop(self):
        agent = TimeoutAgent(5, 0, 1)
        assert resolve_backend("auto", agent, batch_size=32).name == "loop"
        assert not isinstance(agent, StationaryAgent)

    def test_vector_rejects_heuristic(self):
        bundle = example_system.build()
        with pytest.raises(ValidationError, match="vector"):
            simulate(
                bundle.system,
                bundle.costs,
                TimeoutAgent(5, 0, 1),
                100,
                make_rng(0),
                backend="vector",
            )

    def test_unknown_backend_rejected(self):
        bundle = example_system.build()
        with pytest.raises(ValidationError, match="unknown simulation backend"):
            simulate(
                bundle.system,
                bundle.costs,
                ConstantAgent(0),
                100,
                make_rng(0),
                backend="warp",
            )

    def test_registry(self):
        assert isinstance(get_backend("loop"), LoopBackend)
        assert isinstance(get_backend("vector"), VectorBackend)

    def test_vector_backend_requires_matching_policy_shape(self):
        bundle = example_system.build()
        other = disk_drive.build()
        agent = StationaryPolicyAgent(
            other.system,
            MarkovPolicy.constant(
                0, other.system.n_states, other.system.n_commands
            ),
        )
        with pytest.raises(ValidationError, match="does not match system"):
            simulate(
                bundle.system,
                bundle.costs,
                agent,
                100,
                make_rng(0),
                backend="vector",
            )


class TestSimulateMany:
    def test_shapes_and_order(self):
        bundle = example_system.build()
        policies = [
            MarkovPolicy.constant(0, 8, 2, ("s_on", "s_off")),
            MarkovPolicy.constant(1, 8, 2, ("s_on", "s_off")),
        ]
        results = simulate_many(
            bundle.system,
            bundle.costs,
            policies,
            2_000,
            0,
            n_replications=3,
            initial_state=("on", "0", 0),
        )
        assert len(results) == 2
        assert all(len(reps) == 3 for reps in results)
        # Policy order is preserved: constant-on burns 3 W every slice.
        assert results[0][0].averages[POWER] == pytest.approx(3.0)
        assert results[1][0].averages[POWER] < 3.0

    def test_mixed_agents_grouped_by_backend(self):
        bundle = example_system.build()
        agents = [
            TimeoutAgent(3, 0, 1),
            ConstantAgent(0),
            MarkovPolicy.constant(1, 8, 2, ("s_on", "s_off")),
        ]
        results = simulate_many(
            bundle.system, bundle.costs, agents, 1_500, 4,
            initial_state=("on", "0", 0),
        )
        assert len(results) == 3
        for reps in results:
            assert len(reps) == 1
            assert reps[0].n_slices == 1_500

    def test_reproducible_from_seed(self):
        bundle = example_system.build()
        agents = [TimeoutAgent(3, 0, 1), ConstantAgent(0)]

        def run():
            return simulate_many(
                bundle.system, bundle.costs, agents, 1_000, 42,
                n_replications=2, initial_state=("on", "0", 0),
            )

        a, b = run(), run()
        for reps_a, reps_b in zip(a, b):
            for ra, rb in zip(reps_a, reps_b):
                assert ra.averages == rb.averages
                assert ra.final_state == rb.final_state

    def test_empty_agent_list(self):
        bundle = example_system.build()
        assert simulate_many(bundle.system, bundle.costs, [], 100, 0) == []

    def test_auto_single_lane_uses_loop(self):
        # One stationary agent x one replication is not a batch: auto
        # must fall back to the loop, consistent with simulate().
        bundle = example_system.build()
        policy = MarkovPolicy.constant(0, 8, 2, ("s_on", "s_off"))
        auto = simulate_many(
            bundle.system, bundle.costs, [policy], 2_000, 42,
            initial_state=("on", "0", 0),
        )
        loop = simulate_many(
            bundle.system, bundle.costs, [policy], 2_000, 42,
            initial_state=("on", "0", 0), backend="loop",
        )
        assert auto[0][0].averages == loop[0][0].averages
        assert auto[0][0].final_state == loop[0][0].final_state

    def test_rejects_bad_replications(self):
        bundle = example_system.build()
        with pytest.raises(ValidationError, match="n_replications"):
            simulate_many(
                bundle.system, bundle.costs, [ConstantAgent(0)], 100, 0,
                n_replications=0,
            )

    def test_rejects_non_agent(self):
        bundle = example_system.build()
        with pytest.raises(ValidationError, match="PolicyAgent or MarkovPolicy"):
            simulate_many(bundle.system, bundle.costs, ["nope"], 100, 0)


class TestSimulateCurve:
    def test_alignment_and_agreement(self, example_optimizer, example_bundle):
        curve = trade_off_curve(
            example_optimizer, [0.05, 0.3, 0.8], objective=POWER,
            constraint=PENALTY,
        )
        sims = simulate_curve(
            curve,
            example_bundle.system,
            example_bundle.costs,
            60_000,
            0,
            initial_state=("on", "0", 0),
        )
        assert len(sims) == len(curve.points)
        for point, reps in zip(curve.points, sims):
            if not point.feasible:
                assert reps is None
                continue
            assert len(reps) == 1
            assert reps[0].averages[POWER] == pytest.approx(
                point.objective, rel=0.08, abs=0.04
            )


class TestSessionDispatch:
    def test_session_length_cap_vector(self, example_bundle):
        stats = simulate_sessions(
            example_bundle.system,
            example_bundle.costs,
            ConstantAgent(0),
            0.999,
            20,
            make_rng(3),
            max_session_slices=50,
        )
        # Power per slice is at most 4 W; capped sessions bound totals.
        assert stats[POWER].mean <= 4.0 * 50

    def test_loop_and_vector_sessions_agree_statistically(self, example_bundle):
        gamma = 0.97
        agent = ConstantAgent(0)
        kwargs = dict(initial_state=("on", "0", 0))
        loop_stats = simulate_sessions(
            example_bundle.system, example_bundle.costs, agent, gamma, 400,
            make_rng(1), backend="loop", **kwargs,
        )
        vec_stats = simulate_sessions(
            example_bundle.system, example_bundle.costs, agent, gamma, 400,
            make_rng(2), backend="vector", **kwargs,
        )
        assert loop_stats[POWER].mean == pytest.approx(
            vec_stats[POWER].mean, rel=0.15
        )
