"""Tests for RNG management and the shared categorical sampler."""

import numpy as np
import pytest

from repro.sim.rng import (
    categorical_cumsum,
    child_rngs,
    make_rng,
    sample_categorical,
    sample_categorical_batch,
)


class TestCategoricalCumsum:
    def test_rows_end_exactly_at_one(self):
        p = np.array([[0.1, 0.2, 0.7], [0.25, 0.25, 0.5]])
        cum = categorical_cumsum(p, axis=1)
        assert np.all(cum[:, -1] == 1.0)
        assert np.all(np.diff(cum, axis=1) >= 0)

    def test_normalizes_float_dust(self):
        # A row summing to 1 - 1e-16 still compiles to a final entry of
        # exactly 1.0, keeping the last category reachable.
        p = np.array([0.1, 0.9 - 1e-16])
        cum = categorical_cumsum(p)
        assert cum[-1] == 1.0

    def test_tensor_axis(self):
        p = np.full((2, 3, 4), 0.25)
        cum = categorical_cumsum(p, axis=2)
        assert cum.shape == (2, 3, 4)
        assert np.all(cum[..., -1] == 1.0)

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError, match="positive total mass"):
            categorical_cumsum(np.zeros(3))


class TestScalarSampler:
    def test_matches_generator_choice_stream(self):
        """One draw consumes one uniform with ``choice``'s semantics, so
        the sequences coincide for the same seed."""
        p = np.array([0.2, 0.5, 0.3])
        cum = categorical_cumsum(p)
        rng_a, rng_b = make_rng(7), make_rng(7)
        ours = [sample_categorical(cum, rng_a) for _ in range(200)]
        theirs = [int(rng_b.choice(3, p=p)) for _ in range(200)]
        assert ours == theirs

    def test_zero_probability_leading_category_unreachable(self):
        # side="right": even u == 0.0 cannot select a zero-mass leading
        # category.
        cum = categorical_cumsum(np.array([0.0, 1.0]))

        class ZeroRng:
            @staticmethod
            def random():
                return 0.0

        assert sample_categorical(cum, ZeroRng()) == 1

    def test_distribution(self):
        p = np.array([0.6, 0.1, 0.3])
        cum = categorical_cumsum(p)
        rng = make_rng(3)
        draws = np.array([sample_categorical(cum, rng) for _ in range(20_000)])
        freq = np.bincount(draws, minlength=3) / draws.size
        assert np.allclose(freq, p, atol=0.02)


class TestBatchSampler:
    def test_matches_scalar_sampler(self):
        rng = make_rng(11)
        rows_p = rng.dirichlet(np.ones(5), size=64)
        cum = categorical_cumsum(rows_p, axis=1)
        u = rng.random(64)
        batch = sample_categorical_batch(cum, u)
        scalar = np.array(
            [
                int(np.searchsorted(cum[i], u[i], side="right"))
                for i in range(64)
            ]
        )
        assert np.array_equal(batch, scalar)

    def test_boundary_uniform_clipped(self):
        cum = np.array([[0.5, 1.0]])
        assert sample_categorical_batch(cum, np.array([0.999999]))[0] == 1
        # A degenerate u >= 1 (never produced by Generator.random) is
        # clipped to the last category instead of overflowing.
        assert sample_categorical_batch(cum, np.array([1.0]))[0] == 1

    def test_deterministic_rows(self):
        cum = categorical_cumsum(np.array([[1.0, 0.0], [0.0, 1.0]]))
        u = np.array([0.4, 0.4])
        assert sample_categorical_batch(cum, u).tolist() == [0, 1]


class TestChildRngs:
    def test_from_seed_reproducible(self):
        a = child_rngs(5, 3)
        b = child_rngs(5, 3)
        for x, y in zip(a, b):
            assert x.random() == y.random()

    def test_from_generator_reproducible(self):
        a = child_rngs(make_rng(9), 4)
        b = child_rngs(make_rng(9), 4)
        for x, y in zip(a, b):
            assert x.random() == y.random()

    def test_children_independent(self):
        a, b = child_rngs(0, 2)
        assert a.random() != b.random()

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            child_rngs(0, -1)
