"""Property-based integration tests over randomly generated systems.

Hypothesis builds small random power-managed systems end to end and
checks the paper's structural guarantees hold for *every* one of them,
not just the case studies:

* the composed chain is a valid controlled Markov chain;
* the constrained LP, when feasible, returns a valid policy whose
  closed-form evaluation reproduces the LP objective (Eq. 16 is exact);
* the unconstrained optimum is deterministic (Theorem A.1) and matches
  value iteration;
* the optimal policy weakly dominates arbitrary random policies at
  matched constraints;
* the average-cost LP returns a stationary distribution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.average_cost import AverageCostOptimizer
from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import PENALTY, POWER, CostModel
from repro.core.dynamic_programming import value_iteration
from repro.core.optimizer import PolicyOptimizer
from repro.core.policy import MarkovPolicy, evaluate_policy
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from tests.conftest import assert_stochastic


def random_system(seed: int, n_sp: int, n_sr: int, capacity: int, n_cmd: int):
    """Build a random but valid power-managed system."""
    rng = np.random.default_rng(seed)

    def stochastic(n):
        raw = rng.random((n, n)) + 1e-2
        return raw / raw.sum(axis=1, keepdims=True)

    provider = ServiceProvider.from_tables(
        states=[f"s{i}" for i in range(n_sp)],
        commands=[f"a{c}" for c in range(n_cmd)],
        transitions={f"a{c}": stochastic(n_sp) for c in range(n_cmd)},
        service_rates=rng.random((n_sp, n_cmd)),
        power=rng.random((n_sp, n_cmd)) * 4.0,
    )
    requester = ServiceRequester(
        MarkovChain(stochastic(n_sr)), rng.integers(0, 2, size=n_sr)
    )
    system = PowerManagedSystem(provider, requester, ServiceQueue(capacity))
    costs = CostModel.standard(system)
    return system, costs, rng


system_params = {
    "seed": st.integers(min_value=0, max_value=100_000),
    "n_sp": st.integers(min_value=1, max_value=3),
    "n_sr": st.integers(min_value=1, max_value=3),
    "capacity": st.integers(min_value=0, max_value=2),
    "n_cmd": st.integers(min_value=1, max_value=3),
}


@settings(max_examples=25, deadline=None)
@given(**system_params)
def test_lp_objective_equals_policy_evaluation(seed, n_sp, n_sr, capacity, n_cmd):
    system, costs, _ = random_system(seed, n_sp, n_sr, capacity, n_cmd)
    optimizer = PolicyOptimizer(system, costs, gamma=0.95)
    result = optimizer.minimize_unconstrained(POWER)
    assert result.feasible  # unconstrained problems are always feasible
    assert_stochastic(result.policy.matrix)
    evaluation = evaluate_policy(
        system, costs, result.policy, 0.95, system.uniform_distribution()
    )
    assert evaluation.totals[POWER] == pytest.approx(
        result.lp_result.objective, rel=1e-6, abs=1e-8
    )


@settings(max_examples=25, deadline=None)
@given(**system_params)
def test_unconstrained_matches_value_iteration(seed, n_sp, n_sr, capacity, n_cmd):
    system, costs, _ = random_system(seed, n_sp, n_sr, capacity, n_cmd)
    optimizer = PolicyOptimizer(system, costs, gamma=0.9)
    result = optimizer.minimize_unconstrained(POWER)
    dp = value_iteration(system, costs.metric(POWER), 0.9, tol=1e-11)
    assert dp.converged
    expected = float(system.uniform_distribution() @ dp.values)
    assert result.evaluation.totals[POWER] == pytest.approx(
        expected, rel=1e-6, abs=1e-7
    )
    assert result.policy.is_deterministic


@settings(max_examples=20, deadline=None)
@given(**system_params)
def test_optimal_dominates_random_policy(seed, n_sp, n_sr, capacity, n_cmd):
    system, costs, rng = random_system(seed, n_sp, n_sr, capacity, n_cmd)
    optimizer = PolicyOptimizer(system, costs, gamma=0.95)
    raw = rng.random((system.n_states, system.n_commands)) + 1e-6
    policy = MarkovPolicy(raw / raw.sum(axis=1, keepdims=True))
    evaluation = evaluate_policy(
        system, costs, policy, 0.95, system.uniform_distribution()
    )
    result = optimizer.minimize_power(
        penalty_bound=evaluation.averages[PENALTY] + 1e-9
    )
    assert result.feasible
    assert result.average(POWER) <= evaluation.averages[POWER] + 1e-6


@settings(max_examples=20, deadline=None)
@given(**system_params)
def test_average_cost_distribution_is_stationary(seed, n_sp, n_sr, capacity, n_cmd):
    system, costs, _ = random_system(seed, n_sp, n_sr, capacity, n_cmd)
    optimizer = AverageCostOptimizer(system, costs)
    result = optimizer.minimize_unconstrained(POWER)
    assert result.feasible
    assert result.frequencies.sum() == pytest.approx(1.0, abs=1e-7)
    occupancy = result.frequencies.sum(axis=1)
    P_pi = system.chain.policy_matrix(result.policy.matrix)
    assert np.allclose(occupancy @ P_pi, occupancy, atol=1e-6)


@settings(max_examples=15, deadline=None)
@given(**system_params, gamma=st.floats(min_value=0.5, max_value=0.99))
def test_tighter_constraints_cost_more(seed, n_sp, n_sr, capacity, n_cmd, gamma):
    system, costs, _ = random_system(seed, n_sp, n_sr, capacity, n_cmd)
    optimizer = PolicyOptimizer(system, costs, gamma=gamma)
    loose = optimizer.minimize_power(penalty_bound=float(capacity) + 1.0)
    assert loose.feasible
    mid_bound = max(loose.average(PENALTY) * 0.5, 1e-6)
    tight = optimizer.minimize_power(penalty_bound=mid_bound)
    if tight.feasible:
        assert tight.average(POWER) >= loose.average(POWER) - 1e-7


@settings(max_examples=15, deadline=None)
@given(**system_params)
def test_simulation_counters_consistent(seed, n_sp, n_sr, capacity, n_cmd):
    """Short engine runs on arbitrary systems keep request accounting."""
    from repro.policies import ConstantAgent
    from repro.sim import make_rng, simulate

    system, costs, _ = random_system(seed, n_sp, n_sr, capacity, n_cmd)
    result = simulate(
        system, costs, ConstantAgent(0), 500, make_rng(seed)
    )
    assert result.n_slices == 500
    assert result.serviced + result.lost <= result.arrivals
    final_queue = result.arrivals - result.serviced - result.lost
    assert 0 <= final_queue <= capacity
    assert result.command_counts.sum() == 500
