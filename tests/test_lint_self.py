"""Tier-1 self-lint: the repo's own sources must satisfy every
``repro.lint`` contract.

This is the analyzer's reason to exist — the rules only defend the
byte-parity and checkpoint contracts if the shipped code passes them.
The acceptance check at the bottom proves the gate has teeth: planting
a canonical violation in a copy of a real module makes the lint fail
with the right rule id.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, lint_source, registered_rules

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def test_src_lints_clean():
    report = lint_paths([SRC])
    assert report.files_checked > 50
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert report.findings == []


def test_tests_and_benchmarks_parse():
    # no contract enforcement outside src/, but the analyzer must at
    # least digest the rest of the repo without crashing
    report = lint_paths([REPO_ROOT / "tests", REPO_ROOT / "benchmarks"])
    assert report.files_checked > 20
    assert not any(f.rule_id == "LNT000" for f in report.findings)


def test_registry_is_populated_and_consistent():
    rules = registered_rules()
    assert len(rules) >= 8
    ids = list(rules)
    assert ids == sorted(ids)
    for rule_id, rule in rules.items():
        assert rule.rule_id == rule_id
        assert rule.description
        assert rule.contract
        assert rule.severity in ("error", "warning")


def test_planted_legacy_seed_is_caught():
    source = (SRC / "repro" / "sim" / "rng.py").read_text()
    planted = source + "\n\nimport numpy as np\nnp.random.seed(1234)\n"
    line = planted.count("\n")  # the seed call is the final line
    findings = lint_source("rng.py", planted)
    assert [(f.rule_id, f.line) for f in findings] == [("RNG001", line)]


def test_planted_in_kernel_generator_is_caught():
    source = (SRC / "repro" / "sim" / "backends" / "jit.py").read_text()
    planted = source + (
        "\n\n@_numba_njit(cache=True, nogil=True)\n"
        "def _planted_kernel(out):\n"
        "    rng = np.random.default_rng(0)\n"
        "    out[0] = rng.random()\n"
    )
    findings = lint_source("jit.py", planted)
    krn = [f for f in findings if f.rule_id == "KRN001"]
    assert len(krn) == 2  # construction + draw
    assert krn[0].line == planted.count("\n") - 1
