"""Tests for the benchmark baseline-compare regression gate."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_baselines",
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "compare_baselines.py",
)
compare_baselines = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_baselines)


DOCUMENT = {
    "benchmarks": [
        {"name": "a", "slices_per_sec": 1000, "seconds": 1.0},
        {"name": "b", "fit_slices_per_sec": 500, "n_slices": 10},
    ],
    "speedup_vector_vs_loop": 10.0,
    "speedup_target": 5.0,
    "checkpoint_resume_exact": True,
}


class TestCollectMetrics:
    def test_picks_throughput_and_speedups(self):
        metrics = compare_baselines.collect_metrics(DOCUMENT)
        assert metrics == {
            "benchmarks[a].slices_per_sec": 1000.0,
            "benchmarks[b].fit_slices_per_sec": 500.0,
            "speedup_vector_vs_loop": 10.0,
        }

    def test_targets_and_booleans_ignored(self):
        metrics = compare_baselines.collect_metrics(DOCUMENT)
        assert "speedup_target" not in metrics
        assert "checkpoint_resume_exact" not in metrics

    def test_array_entries_matched_by_name(self):
        reordered = dict(DOCUMENT)
        reordered["benchmarks"] = list(reversed(DOCUMENT["benchmarks"]))
        assert compare_baselines.collect_metrics(
            reordered
        ) == compare_baselines.collect_metrics(DOCUMENT)


class TestCompareDocuments:
    def fresh(self, factor: float) -> dict:
        return {
            "benchmarks": [
                {"name": "a", "slices_per_sec": 1000 * factor},
                {"name": "b", "fit_slices_per_sec": 500 * factor},
            ],
            "speedup_vector_vs_loop": 10.0 * factor,
        }

    def test_within_tolerance_passes(self):
        regressions, notes = compare_baselines.compare_documents(
            DOCUMENT, self.fresh(0.75), tolerance=0.30
        )
        assert regressions == []
        assert len(notes) == 3

    def test_regression_flagged(self):
        regressions, _ = compare_baselines.compare_documents(
            DOCUMENT, self.fresh(0.5), tolerance=0.30
        )
        assert len(regressions) == 3
        assert any("slices_per_sec" in line for line in regressions)

    def test_improvement_passes(self):
        regressions, _ = compare_baselines.compare_documents(
            DOCUMENT, self.fresh(2.0), tolerance=0.30
        )
        assert regressions == []

    def test_missing_and_new_metrics_are_notes_not_failures(self):
        fresh = {
            "benchmarks": [{"name": "a", "slices_per_sec": 990}],
            "brand_new_per_sec": 7.0,
        }
        regressions, notes = compare_baselines.compare_documents(
            DOCUMENT, fresh, tolerance=0.30
        )
        assert regressions == []
        assert any("missing from fresh run" in note for note in notes)
        assert any("no baseline yet" in note for note in notes)


class TestMain:
    @pytest.fixture()
    def layout(self, tmp_path):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        (baseline_dir / "bench_x.json").write_text(json.dumps(DOCUMENT))
        fresh = tmp_path / "bench_x.json"
        return baseline_dir, fresh

    def test_green_run(self, layout, capsys):
        baseline_dir, fresh = layout
        fresh.write_text(json.dumps(DOCUMENT))
        code = compare_baselines.main([str(baseline_dir), str(fresh)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_fails(self, layout, capsys):
        baseline_dir, fresh = layout
        bad = json.loads(json.dumps(DOCUMENT))
        bad["benchmarks"][0]["slices_per_sec"] = 100
        fresh.write_text(json.dumps(bad))
        code = compare_baselines.main([str(baseline_dir), str(fresh)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_skips(self, tmp_path, capsys):
        baseline_dir = tmp_path / "empty"
        baseline_dir.mkdir()
        fresh = tmp_path / "bench_y.json"
        fresh.write_text(json.dumps(DOCUMENT))
        code = compare_baselines.main([str(baseline_dir), str(fresh)])
        assert code == 0
        assert "SKIP" in capsys.readouterr().out

    def test_update_writes_baseline(self, tmp_path):
        baseline_dir = tmp_path / "baselines"
        fresh = tmp_path / "bench_z.json"
        fresh.write_text(json.dumps(DOCUMENT))
        code = compare_baselines.main(
            [str(baseline_dir), str(fresh), "--update"]
        )
        assert code == 0
        stored = json.loads((baseline_dir / "bench_z.json").read_text())
        assert stored == DOCUMENT

    def test_custom_tolerance(self, layout):
        baseline_dir, fresh = layout
        softer = json.loads(json.dumps(DOCUMENT))
        softer["benchmarks"][0]["slices_per_sec"] = 650  # -35%
        fresh.write_text(json.dumps(softer))
        assert (
            compare_baselines.main(
                [str(baseline_dir), str(fresh), "--tolerance", "0.5"]
            )
            == 0
        )
        assert (
            compare_baselines.main([str(baseline_dir), str(fresh)]) == 1
        )
