"""Tests for the prebuilt case-study systems (paper Section VI, App. B)."""

import numpy as np
import pytest

from repro.core.costs import POWER
from repro.core.optimizer import PolicyOptimizer
from repro.markov.analysis import hitting_time
from repro.sim import make_rng
from repro.systems import baseline, cpu, disk_drive, example_system, web_server
from repro.systems.baseline import SleepSpec
from repro.traces import mmpp2_trace
from repro.util.validation import ValidationError
from tests.conftest import assert_stochastic


class TestExampleSystem:
    def test_paper_example_a2_band(self, example_optimizer):
        result = example_optimizer.minimize_power(
            penalty_bound=example_system.PAPER_PENALTY_BOUND_A2,
            loss_bound=example_system.PAPER_LOSS_BOUND_A2,
        ).require_feasible()
        # Paper reports 1.798 W; our reconstruction of the OCR-garbled
        # power table gives the same band and structure.
        assert 1.55 <= result.average(POWER) <= 1.95
        assert result.average(POWER) < 0.65 * 3.0  # "almost a factor of two"
        assert not result.policy.is_deterministic  # Theorem A.2

    def test_gamma_default(self, example_bundle):
        assert example_bundle.gamma == pytest.approx(0.99999)

    def test_initial_state_is_on_idle_empty(self, example_bundle):
        p0 = example_bundle.initial_distribution
        idx = example_bundle.system.state_index("on", "0", 0)
        assert p0[idx] == 1.0

    def test_queue_capacity_parameter(self):
        bundle = example_system.build(queue_capacity=3)
        assert bundle.system.n_states == 2 * 2 * 4


class TestDiskDrive:
    def test_state_census(self, disk_bundle):
        provider = disk_bundle.system.provider
        assert provider.n_states == 11
        inactive = [s for s in provider.state_names if s in disk_drive.INACTIVE_ORDER]
        transients = [
            s for s in provider.state_names if s.endswith(("_down", "_wake"))
        ]
        assert len(inactive) == 4
        assert len(transients) == 6
        assert disk_bundle.system.n_states == 66  # 11 x 2 x 3 (paper)

    def test_five_commands(self, disk_bundle):
        assert disk_bundle.system.n_commands == 5

    def test_table_one_powers(self, disk_bundle):
        provider = disk_bundle.system.provider
        for state, power in disk_drive.STATE_POWER.items():
            command = "go_active" if state == "active" else f"go_{state}"
            assert provider.power(state, command) == power

    def test_table_one_wake_times(self, disk_bundle):
        chain = disk_bundle.system.provider.chain
        h = hitting_time(chain.matrix("go_active"), [chain.state_index("active")])
        for state, slices in disk_drive.WAKE_SLICES.items():
            assert h[chain.state_index(state)] == pytest.approx(float(slices))

    def test_transients_command_insensitive(self, disk_bundle):
        chain = disk_bundle.system.provider.chain
        tensor = chain.tensor
        for name in chain.state_names:
            if not name.endswith(("_down", "_wake")):
                continue
            idx = chain.state_index(name)
            rows = tensor[:, idx, :]
            assert np.allclose(rows, rows[0])

    def test_transients_draw_active_power(self, disk_bundle):
        provider = disk_bundle.system.provider
        for name in provider.state_names:
            if name.endswith(("_down", "_wake")):
                for command in provider.command_names:
                    assert provider.power(name, command) == 2.5

    def test_shallower_command_starts_wake(self, disk_bundle):
        chain = disk_bundle.system.provider.chain
        # From sleep, asking for idle must begin the wake transition.
        sleep = chain.state_index("sleep")
        wake = chain.state_index("sleep_wake")
        assert chain.tensor[chain.command_index("go_idle"), sleep, wake] == 1.0

    def test_service_only_when_active_and_commanded(self, disk_bundle):
        rates = disk_bundle.system.provider.service_rate_matrix
        assert rates.sum() == pytest.approx(disk_drive.ACTIVE_SERVICE_RATE)

    def test_build_from_trace_pipeline(self):
        trace = mmpp2_trace(0.99, 0.8, 20_000, 1e-3, make_rng(0))
        bundle = disk_drive.build_from_trace(trace, memory=2)
        assert bundle.system.requester.n_states == 4
        assert "sr_model" in bundle.metadata
        for command in bundle.system.command_names:
            assert_stochastic(bundle.system.chain.matrix(command), atol=1e-8)


class TestWebServer:
    def test_structure(self, web_bundle):
        assert web_bundle.system.provider.n_states == 4
        assert web_bundle.system.n_commands == 4
        assert web_bundle.system.n_states == 8  # no queue

    def test_paper_powers(self, web_bundle):
        provider = web_bundle.system.provider
        assert provider.power("both", "to_both") == 3.0
        assert provider.power("p1", "to_p1") == 1.0
        assert provider.power("p2", "to_p2") == 2.0
        assert provider.power("none", "to_none") == 0.0

    def test_transition_power_adjustments(self, web_bundle):
        provider = web_bundle.system.provider
        # Turning P2 on from 'p1': P1 runs (1) + P2 turn-on (2 + 0.5).
        assert provider.power("p1", "to_both") == pytest.approx(3.5)
        # Shutting P2 down from 'both': P1 runs (1) + P2 shutdown (1.5).
        assert provider.power("both", "to_p1") == pytest.approx(2.5)

    def test_turn_on_time_two_slices(self, web_bundle):
        chain = web_bundle.system.provider.chain
        # none -> p1 under to_p1: geometric with p = 0.5.
        assert chain.transition_probability("none", "p1", "to_p1") == 0.5

    def test_shutdown_immediate(self, web_bundle):
        chain = web_bundle.system.provider.chain
        assert chain.transition_probability("both", "p1", "to_p1") == 1.0

    def test_throughput_metric_registered(self, web_bundle):
        assert web_bundle.costs.has_metric("throughput")

    def test_processors_move_independently(self, web_bundle):
        chain = web_bundle.system.provider.chain
        # From none to both: both processors turn on, 0.5 * 0.5.
        assert chain.transition_probability("none", "both", "to_both") == 0.25

    def test_build_from_trace_pipeline(self):
        trace = mmpp2_trace(0.95, 0.9, 20_000, web_server.TIME_RESOLUTION, make_rng(2))
        bundle = web_server.build_from_trace(trace, memory=1)
        assert bundle.costs.has_metric("throughput")
        assert "sr_model" in bundle.metadata
        for command in bundle.system.command_names:
            assert_stochastic(bundle.system.chain.matrix(command), atol=1e-8)


class TestCPU:
    def test_structure(self, cpu_bundle):
        assert cpu_bundle.system.provider.n_states == 2
        assert cpu_bundle.system.n_states == 4
        assert cpu_bundle.action_mask is not None

    def test_mask_forces_reactive_wake(self, cpu_bundle):
        system = cpu_bundle.system
        mask = cpu_bundle.action_mask
        run = system.chain.command_index("run")
        shutdown = system.chain.command_index("shutdown")
        sleep_busy = system.state_index("sleep", "busy", 0)
        sleep_idle = system.state_index("sleep", "idle", 0)
        active_idle = system.state_index("active", "idle", 0)
        active_busy = system.state_index("active", "busy", 0)
        assert mask[sleep_busy].tolist() == [True, False]
        assert mask[sleep_idle].tolist() == [False, True]
        assert mask[active_busy].tolist() == [True, False]
        assert mask[active_idle].tolist() == [True, True]

    def test_transition_powers(self, cpu_bundle):
        provider = cpu_bundle.system.provider
        assert provider.power("sleep", "run") == cpu.WAKE_POWER
        assert provider.power("active", "shutdown") == cpu.SHUTDOWN_POWER
        assert provider.power("sleep", "shutdown") == 0.0

    def test_single_free_decision(self, cpu_bundle):
        opt = PolicyOptimizer(
            cpu_bundle.system,
            cpu_bundle.costs,
            gamma=cpu_bundle.gamma,
            initial_distribution=cpu_bundle.initial_distribution,
            action_mask=cpu_bundle.action_mask,
        )
        result = opt.minimize_power(penalty_bound=0.03).require_feasible()
        matrix = result.policy.matrix
        randomized = np.sum(matrix.max(axis=1) < 1.0 - 1e-9)
        assert randomized <= 1

    def test_build_from_trace(self):
        trace = mmpp2_trace(0.9, 0.7, 10_000, cpu.TIME_RESOLUTION, make_rng(1))
        bundle = cpu.build_from_trace(trace)
        assert bundle.action_mask is not None
        assert bundle.system.n_states == 4


class TestBaseline:
    def test_paper_defaults(self, baseline_bundle):
        provider = baseline_bundle.system.provider
        assert provider.power("active", "go_active") == 3.0
        assert provider.power("sleep1", "go_sleep1") == 2.0
        assert provider.power("active", "go_sleep1") == 4.0
        assert provider.power("sleep1", "go_active") == 4.0

    def test_sleep_menu_values(self):
        assert baseline.SLEEP_MENU["sleep2"].power == 1.0
        assert baseline.SLEEP_MENU["sleep2"].wake_probability == 0.1
        assert baseline.SLEEP_MENU["sleep4"].wake_probability == 0.001

    def test_sr_symmetric_flip(self, baseline_bundle):
        matrix = baseline_bundle.system.requester.chain.matrix
        assert matrix[0, 1] == pytest.approx(0.01)
        assert matrix[1, 0] == pytest.approx(0.01)
        # Stationary load is 0.5 regardless of flip probability.
        assert baseline_bundle.system.requester.mean_arrival_rate() == pytest.approx(0.5)

    def test_multiple_sleep_states(self):
        bundle = baseline.build(sleep_states=["sleep1", "sleep2", "sleep3"])
        assert bundle.system.provider.n_states == 4
        assert bundle.system.n_commands == 4

    def test_custom_sleep_spec(self):
        spec = SleepSpec("custom", 0.7, 0.05, 0.2)
        bundle = baseline.build(sleep_states=[spec])
        chain = bundle.system.provider.chain
        assert chain.transition_probability("custom", "active", "go_active") == 0.05
        assert chain.transition_probability("active", "custom", "go_custom") == 0.2

    def test_deepen_directly_shallow_wakes(self):
        bundle = baseline.build(sleep_states=["sleep1", "sleep4"])
        chain = bundle.system.provider.chain
        # sleep1 -> sleep4 directly (deeper), at sleep4's entry prob.
        assert chain.transition_probability(
            "sleep1", "sleep4", "go_sleep4"
        ) == pytest.approx(0.001)
        # sleep4 -> sleep1 requires waking first.
        assert chain.transition_probability(
            "sleep4", "active", "go_sleep1"
        ) == pytest.approx(0.001)
        assert chain.transition_probability("sleep4", "sleep1", "go_sleep1") == 0.0

    def test_unknown_menu_name_rejected(self):
        with pytest.raises(ValidationError, match="menu"):
            baseline.build(sleep_states=["sleep9"])

    def test_requester_override(self):
        requester = baseline.build_requester(0.3).chain
        from repro.core.components import ServiceRequester

        custom = ServiceRequester(requester, [0, 1])
        bundle = baseline.build(requester=custom)
        assert bundle.system.requester.chain.matrix[0, 1] == pytest.approx(0.3)

    def test_all_variants_compose_validly(self):
        for states in (["sleep1"], ["sleep2"], ["sleep1", "sleep2", "sleep3", "sleep4"]):
            bundle = baseline.build(sleep_states=states)
            for command in bundle.system.command_names:
                assert_stochastic(bundle.system.chain.matrix(command), atol=1e-8)
