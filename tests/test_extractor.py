"""Tests for the SR extractor (paper Section V, Example 5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import make_rng
from repro.traces import KMemoryTracker, SRExtractor, Trace, mmpp2_trace
from repro.util.validation import ValidationError
from tests.conftest import assert_stochastic

EXAMPLE_51_STREAM = [0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1]


class TestExample51:
    def test_paper_transition_probability(self):
        """Example 5.1: 'three 01-sequences, eight occurrences of zero
        ... the conditional probability of the 0->1 transition is 3/8'."""
        model = SRExtractor(memory=1).fit(EXAMPLE_51_STREAM)
        assert model.matrix[0, 1] == pytest.approx(3.0 / 8.0)
        assert model.matrix[0, 0] == pytest.approx(5.0 / 8.0)

    def test_busy_transitions(self):
        model = SRExtractor(memory=1).fit(EXAMPLE_51_STREAM)
        # Four ones start transitions (the final 1 ends the stream):
        # 1->0 twice (positions 2, 7), 1->1 twice (5->6, 6->7).
        assert model.matrix[1, 0] == pytest.approx(2.0 / 4.0)
        assert model.matrix[1, 1] == pytest.approx(2.0 / 4.0)

    def test_from_trace_object(self):
        trace = Trace([2, 5, 6, 7, 12], duration=13)
        model = SRExtractor(memory=1).fit_trace(trace, 1.0)
        assert model.matrix[0, 1] == pytest.approx(3.0 / 8.0)


class TestModelStructure:
    def test_memory_two_states(self):
        model = SRExtractor(memory=2).fit(EXAMPLE_51_STREAM)
        assert model.n_states == 4
        assert model.states == ((0, 0), (0, 1), (1, 0), (1, 1))
        assert_stochastic(model.matrix)

    def test_transitions_respect_shift_structure(self):
        """From state (a, b) only states (b, *) are reachable."""
        model = SRExtractor(memory=2).fit(EXAMPLE_51_STREAM)
        for u, state_u in enumerate(model.states):
            for v, state_v in enumerate(model.states):
                if model.matrix[u, v] > 0:
                    assert state_v[:-1] == state_u[1:]

    def test_arrivals_are_newest_level(self):
        model = SRExtractor(memory=2).fit(EXAMPLE_51_STREAM)
        for index, state in enumerate(model.states):
            assert model.arrivals_of_state(index) == state[-1]

    def test_state_index_roundtrip(self):
        model = SRExtractor(memory=3).fit([0, 1] * 20)
        for index, state in enumerate(model.states):
            assert model.state_index(state) == index

    def test_unseen_states_get_uniform_rows(self):
        # An all-zeros stream never visits any state containing a 1.
        model = SRExtractor(memory=1).fit([0] * 50)
        assert model.matrix[1].tolist() == [0.5, 0.5]
        assert_stochastic(model.matrix)

    def test_smoothing(self):
        smoothed = SRExtractor(memory=1, smoothing=1.0).fit([0] * 50)
        # Laplace mass creates a nonzero 0 -> 1 probability.
        assert 0 < smoothed.matrix[0, 1] < 0.1

    def test_multilevel_extraction(self):
        stream = [0, 2, 1, 2, 0, 2, 2, 1, 0, 1, 2, 0]
        model = SRExtractor(memory=1, max_level=2).fit(stream)
        assert model.n_states == 3
        assert_stochastic(model.matrix)
        requester = model.to_requester()
        assert requester.arrival_counts.tolist() == [0, 1, 2]

    def test_counts_clipped_to_max_level(self):
        model = SRExtractor(memory=1, max_level=1).fit([0, 5, 0, 3])
        assert model.n_states == 2  # levels clipped to {0, 1}

    def test_too_short_stream_rejected(self):
        with pytest.raises(ValidationError, match="at least"):
            SRExtractor(memory=3).fit([0, 1, 0])

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            SRExtractor(memory=0)
        with pytest.raises(ValidationError):
            SRExtractor(max_level=0)
        with pytest.raises(ValidationError):
            SRExtractor(smoothing=-1.0)


class TestExtractorEdgeCases:
    """Degenerate inputs the estimation layer must survive."""

    def test_empty_stream_rejected(self):
        with pytest.raises(ValidationError, match="at least"):
            SRExtractor(memory=1).fit([])

    def test_minimum_length_stream(self):
        # Exactly memory + 1 slices: one transition, a valid chain.
        model = SRExtractor(memory=1, smoothing=0.0).fit([0, 1])
        assert model.n_observations == 1
        assert model.matrix[0, 1] == 1.0

    def test_single_state_stream_is_absorbing(self):
        # A trace that never leaves level 0: the observed state is a
        # self-loop and the unseen states get valid uniform rows.
        model = SRExtractor(memory=1, smoothing=0.0).fit([0] * 20)
        assert model.matrix[0, 0] == 1.0
        assert model.state_counts.tolist() == [19, 0]
        assert_stochastic(model.matrix)

    def test_single_state_all_busy_stream(self):
        model = SRExtractor(memory=2, smoothing=0.0).fit([1] * 10)
        busy = model.state_index((1, 1))
        assert model.matrix[busy, busy] == 1.0
        assert model.n_observations == 8

    def test_log_likelihood_of_single_state_stream(self):
        model = SRExtractor(memory=1, smoothing=0.0).fit([0] * 20)
        assert model.log_likelihood([0] * 10) == 0.0
        assert model.log_likelihood([0, 0, 1]) == float("-inf")

    def test_log_likelihood_short_stream_is_zero(self):
        model = SRExtractor(memory=2).fit([0, 1, 0, 1, 0])
        assert model.log_likelihood([0, 1]) == 0.0

    def test_transition_count_off_by_one(self):
        # n slices and memory k give exactly n - k transitions.
        for k in (1, 2, 3):
            model = SRExtractor(memory=k).fit([0, 1] * 8)
            assert model.n_observations == 16 - k

    def test_counting_matches_slow_reference(self):
        """The vectorized bincount equals the per-slice reference loop."""
        rng = make_rng(13)
        levels = rng.integers(0, 3, size=500)
        for memory, max_level in ((1, 1), (2, 2), (3, 1)):
            model = SRExtractor(
                memory=memory, max_level=max_level, smoothing=0.0
            ).fit(levels)
            clipped = np.clip(levels, 0, max_level)
            base = max_level + 1
            n = base**memory
            reference = np.zeros((n, n))
            shift = base ** (memory - 1)

            def index_of(window):
                idx = 0
                for level in window:
                    idx = idx * base + int(level)
                return idx

            src = index_of(clipped[:memory])
            for t in range(memory, clipped.size):
                dst = (src % shift) * base + int(clipped[t])
                reference[src, dst] += 1.0
                src = dst
            totals = reference.sum(axis=1)
            assert np.array_equal(model.state_counts, totals)
            for u in range(n):
                if totals[u] > 0:
                    assert np.allclose(
                        model.matrix[u], reference[u] / totals[u]
                    )


class TestRecovery:
    def test_recovers_mmpp_parameters(self):
        trace = mmpp2_trace(0.97, 0.88, 300_000, 1.0, make_rng(42))
        model = SRExtractor(memory=1).fit(trace.discretize(1.0))
        assert model.matrix[0, 0] == pytest.approx(0.97, abs=0.005)
        assert model.matrix[1, 1] == pytest.approx(0.88, abs=0.01)

    def test_to_requester_composition(self):
        model = SRExtractor(memory=1).fit(EXAMPLE_51_STREAM)
        requester = model.to_requester()
        assert requester.n_states == 2
        assert requester.state_names == ("0", "1")
        assert requester.arrival_counts.tolist() == [0, 1]

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_extraction_always_valid_property(self, memory, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, 2, size=200)
        model = SRExtractor(memory=memory).fit(stream)
        assert_stochastic(model.matrix)
        assert model.n_states == 2**memory


class TestLikelihood:
    def test_perfect_fit_higher_than_mismatch(self):
        periodic = [0, 0, 1] * 100
        model_fit = SRExtractor(memory=2).fit(periodic)
        model_bad = SRExtractor(memory=2).fit([0, 1] * 150)
        assert model_fit.log_likelihood(periodic) > model_bad.log_likelihood(
            periodic
        )

    def test_memory_improves_fit_on_structured_stream(self):
        periodic = [0, 0, 1] * 200
        ll1 = SRExtractor(memory=1).fit(periodic).log_likelihood(periodic)
        ll2 = SRExtractor(memory=2).fit(periodic).log_likelihood(periodic)
        assert ll2 > ll1
        # Memory 2 fully determines the periodic pattern.
        assert ll2 == pytest.approx(0.0, abs=1e-9)

    def test_impossible_stream_is_minus_infinity(self):
        model = SRExtractor(memory=1).fit([0] * 30)  # P(0 -> 1) == 0
        assert model.log_likelihood([0, 0, 1, 0]) == float("-inf")


class TestTracker:
    def test_follows_window(self):
        model = SRExtractor(memory=2).fit(EXAMPLE_51_STREAM)
        tracker = model.tracker()
        state = tracker.reset()
        assert model.states[state] == (0, 0)
        state = tracker.update(1)
        assert model.states[state] == (0, 1)
        state = tracker.update(1)
        assert model.states[state] == (1, 1)
        state = tracker.update(0)
        assert model.states[state] == (1, 0)

    def test_clips_levels(self):
        model = SRExtractor(memory=1).fit(EXAMPLE_51_STREAM)
        tracker = model.tracker()
        tracker.reset()
        assert model.states[tracker.update(9)] == (1,)

    def test_is_arrival_tracker(self):
        from repro.sim.trace_sim import ArrivalTracker

        model = SRExtractor(memory=1).fit(EXAMPLE_51_STREAM)
        assert isinstance(model.tracker(), ArrivalTracker)
        assert isinstance(model.tracker(), KMemoryTracker)
