"""Arrival streams: cursors, persistence semantics, spec construction."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.runtime.streams import (
    CallableStream,
    MMPP2Stream,
    PeriodicBurstStream,
    PoissonStream,
    TraceStream,
    stream_from_spec,
)
from repro.sim.rng import make_rng
from repro.traces.synthetic import mmpp2_trace
from repro.traces.trace import Trace
from repro.util.validation import ValidationError


class TestTraceStream:
    def test_cycles_through_counts(self):
        stream = TraceStream([0, 1, 0, 2], cycle=True)
        assert stream.next_counts(6).tolist() == [0, 1, 0, 2, 0, 1]
        assert stream.next_counts(3).tolist() == [0, 2, 0]
        assert stream.position == 9

    def test_zero_pads_when_not_cycling(self):
        stream = TraceStream([3, 1], cycle=False)
        assert stream.next_counts(5).tolist() == [3, 1, 0, 0, 0]
        assert stream.next_counts(2).tolist() == [0, 0]

    def test_load_from_trace_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        Trace([2, 5, 6, 7, 12], duration=13).save(path)
        stream = TraceStream.load(path, resolution=1.0)
        expected = Trace([2, 5, 6, 7, 12], duration=13).discretize(1.0)
        assert stream.next_counts(13).tolist() == expected.tolist()

    def test_validation(self):
        with pytest.raises(ValidationError, match="non-empty"):
            TraceStream([])
        with pytest.raises(ValidationError, match="non-negative"):
            TraceStream([1, -1])
        with pytest.raises(ValidationError, match="n_slices"):
            TraceStream([1]).next_counts(0)


class TestSyntheticStreams:
    def test_mmpp2_chunk_invariant(self):
        """Output is independent of call chunking (hidden state + RNG
        consumption persist per slice) — what tick-size neutrality and
        checkpoint/resume rely on."""
        a = MMPP2Stream(0.95, 0.85, make_rng(7))
        b = MMPP2Stream(0.95, 0.85, make_rng(7))
        one_shot = a.next_counts(400)
        chunked = np.concatenate(
            [b.next_counts(37), b.next_counts(163), b.next_counts(200)]
        )
        assert one_shot.tolist() == chunked.tolist()

    def test_mmpp2_matches_modulating_chain_statistics(self):
        """Same process family as traces.synthetic.mmpp2_trace: the
        busy fraction approaches the modulating chain's stationary
        probability (0.05 / (0.05 + 0.15) = 0.25 here)."""
        stream = MMPP2Stream(0.95, 0.85, make_rng(7))
        counts = stream.next_counts(40_000)
        assert counts.max() <= 1
        assert 0.21 < counts.mean() < 0.29
        trace = mmpp2_trace(0.95, 0.85, 40_000, 1.0, make_rng(8))
        assert abs(counts.mean() - trace.discretize(1.0).mean()) < 0.04

    def test_poisson_counts(self):
        stream = PoissonStream(0.5, make_rng(0))
        counts = stream.next_counts(1000)
        assert counts.min() >= 0
        assert 0.3 < counts.mean() < 0.7

    def test_periodic_pattern_and_cursor(self):
        stream = PeriodicBurstStream(2, 3)
        assert stream.next_counts(7).tolist() == [1, 1, 0, 0, 0, 1, 1]
        assert stream.next_counts(3).tolist() == [0, 0, 0]

    def test_streams_pickle_with_cursor(self):
        stream = MMPP2Stream(0.9, 0.8, make_rng(11))
        stream.next_counts(50)
        clone = pickle.loads(pickle.dumps(stream))
        assert stream.next_counts(100).tolist() == (
            clone.next_counts(100).tolist()
        )


class TestCallableStream:
    def test_wraps_callable(self):
        stream = CallableStream(lambda start, n: np.full(n, start % 3))
        assert stream.next_counts(2).tolist() == [0, 0]
        assert stream.next_counts(2).tolist() == [2, 2]
        assert not stream.checkpointable

    def test_validates_output(self):
        bad_size = CallableStream(lambda start, n: np.zeros(n + 1, dtype=int))
        with pytest.raises(ValidationError, match="counts"):
            bad_size.next_counts(3)
        negative = CallableStream(lambda start, n: np.full(n, -1))
        with pytest.raises(ValidationError, match="non-negative"):
            negative.next_counts(3)
        with pytest.raises(ValidationError, match="callable"):
            CallableStream("not-a-function")


class TestStreamFromSpec:
    def test_builds_every_kind(self, tmp_path):
        rng = make_rng(0)
        path = tmp_path / "trace.txt"
        Trace([1.0, 2.0], duration=3).save(path)
        assert isinstance(
            stream_from_spec(
                {"type": "trace", "path": str(path), "resolution": 1.0}, rng
            ),
            TraceStream,
        )
        assert isinstance(
            stream_from_spec({"type": "poisson", "rate_per_slice": 0.2}, rng),
            PoissonStream,
        )
        assert isinstance(
            stream_from_spec({"type": "mmpp2"}, rng), MMPP2Stream
        )
        assert isinstance(
            stream_from_spec({"type": "periodic"}, rng), PeriodicBurstStream
        )

    def test_rejects_unknown_and_malformed(self):
        rng = make_rng(0)
        with pytest.raises(ValidationError, match="unknown workload"):
            stream_from_spec({"type": "tarot"}, rng)
        with pytest.raises(ValidationError, match="type"):
            stream_from_spec({}, rng)
        with pytest.raises(ValidationError, match="path"):
            stream_from_spec({"type": "trace"}, rng)
