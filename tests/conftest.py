"""Shared fixtures for the test suite.

Session-scoped fixtures build each case-study bundle once; tests must
treat them as read-only (CostModel and the bundles are mutable — any
test needing to mutate builds its own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimizer import PolicyOptimizer
from repro.sim.rng import make_rng
from repro.systems import baseline, cpu, disk_drive, example_system, web_server


@pytest.fixture(scope="session")
def example_bundle():
    """The paper's running example (8 joint states)."""
    return example_system.build()


@pytest.fixture(scope="session")
def example_optimizer(example_bundle):
    """Optimizer configured exactly as in Example A.2."""
    return PolicyOptimizer(
        example_bundle.system,
        example_bundle.costs,
        gamma=example_bundle.gamma,
        initial_distribution=example_bundle.initial_distribution,
    )


@pytest.fixture(scope="session")
def disk_bundle():
    """The disk-drive case study (66 joint states)."""
    return disk_drive.build()


@pytest.fixture(scope="session")
def web_bundle():
    """The web-server case study."""
    return web_server.build()


@pytest.fixture(scope="session")
def cpu_bundle():
    """The CPU case study (4 joint states, action mask)."""
    return cpu.build()


@pytest.fixture(scope="session")
def baseline_bundle():
    """The Appendix-B baseline system (sleep1 only)."""
    return baseline.build()


@pytest.fixture()
def rng():
    """A fresh, fixed-seed generator per test."""
    return make_rng(12345)


@pytest.fixture()
def rng_factory():
    """Factory for generators with chosen seeds."""
    return make_rng


def assert_distribution(vector, atol=1e-9):
    """Assert ``vector`` is a probability distribution."""
    arr = np.asarray(vector, dtype=float)
    assert np.all(arr >= -atol), f"negative entries: {arr.min()}"
    assert abs(arr.sum() - 1.0) <= atol * max(arr.size, 10), f"sum {arr.sum()}"


def assert_stochastic(matrix, atol=1e-9):
    """Assert ``matrix`` is row-stochastic."""
    arr = np.asarray(matrix, dtype=float)
    for row in range(arr.shape[0]):
        assert_distribution(arr[row], atol=atol)
