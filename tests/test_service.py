"""The sharded fleet service: byte-identity, restarts, live control.

The contract under test is the one :mod:`repro.service` exists for:
a sharded run's device-level telemetry and checkpoints are
**byte-identical** to the single-process
:class:`~repro.runtime.controller.FleetController` for the same fleet
spec and seed — for any shard count, after re-partitioning on resume,
across mid-run worker kills, and through live membership and policy
changes.  Telemetry comparisons use the canonical JSON serialization
(``sort_keys``); checkpoint comparisons use raw pickle bytes, which is
only meaningful within one interpreter (``PYTHONHASHSEED`` varies
set iteration order across processes — the CI smoke job covers the
cross-process telemetry half).
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import threading
import time

import pytest

from repro.runtime import (
    FleetController,
    MemoryTelemetry,
    build_agent_from_spec,
    build_fleet,
    build_group_devices,
    checkpoint_payload,
    load_checkpoint,
)
from repro.runtime.telemetry import snapshot_from_records
from repro.service import (
    FleetDaemon,
    Partitioner,
    ServiceClient,
    ServiceError,
    ShardSupervisor,
    shard_signature,
)
from repro.util.validation import ValidationError

SEED = 11
SLICES = 50

SPEC = {
    "name": "service-test",
    "groups": [
        {
            "id": "disks",
            "count": 12,
            "system": "disk_drive",
            "agent": {"type": "optimal", "penalty_bound": 0.05},
        },
        {
            "id": "tmo",
            "count": 6,
            "system": "disk_drive",
            "agent": {
                "type": "timeout",
                "active": "go_active",
                "sleep": "go_sleep",
                "timeout": 40,
            },
            "workload": {"type": "mmpp2", "p_stay_idle": 0.95},
        },
    ],
}

EXTRA_GROUP = {
    "id": "extra",
    "count": 4,
    "system": "disk_drive",
    "agent": {
        "type": "timeout",
        "active": "go_active",
        "sleep": "go_sleep",
        "timeout": 25,
    },
    "workload": {"type": "mmpp2", "p_stay_idle": 0.9},
}

NEW_AGENT = {
    "type": "timeout",
    "active": "go_active",
    "sleep": "go_sleep",
    "timeout": 10,
}


def _dump(records):
    return [json.dumps(record, sort_keys=True) for record in records]


def _single_process_records(n_ticks, spec=SPEC):
    fleet, _ = build_fleet(spec, base_seed=SEED)
    sink = MemoryTelemetry()
    controller = FleetController(
        fleet,
        slices_per_tick=SLICES,
        telemetry=sink,
        telemetry_per_device=True,
    )
    controller.run(n_ticks)
    return controller, sink


def _supervisor_records(supervisor, n_ticks):
    """Step and snapshot exactly as the daemon's telemetry path does."""
    out = []
    for _ in range(n_ticks):
        supervisor.step_tick()
        record = snapshot_from_records(
            supervisor.tick, supervisor.collect_records(), per_device=True
        )
        record["backend"] = supervisor.resolved_backend
        record["uniform_source"] = supervisor.uniform_source
        out.append(record)
    return out


def _start_supervisor(n_shards, fleet=None, tick=0, **kwargs):
    supervisor = ShardSupervisor(
        n_shards, slices_per_tick=SLICES, **kwargs
    )
    if fleet is None:
        fleet, _ = build_fleet(SPEC, base_seed=SEED)
    supervisor.start(fleet, tick=tick)
    return supervisor


@pytest.fixture(scope="module")
def reference():
    """Six uninterrupted single-process ticks, per-device telemetry."""
    _, sink = _single_process_records(6)
    return _dump(sink.records)


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def test_partitioner_deals_round_robin_per_signature():
    fleet, _ = build_fleet(SPEC, base_seed=SEED)
    devices = list(fleet)
    partitioner = Partitioner(3)
    assignment = [partitioner.assign(device) for device in devices]
    # equal-signature devices spread evenly, in registration order
    by_signature: dict[str, list[int]] = {}
    for device, shard in zip(devices, assignment):
        by_signature.setdefault(shard_signature(device), []).append(shard)
    assert len(by_signature) == 2  # optimal-group vs timeout-group
    for shards in by_signature.values():
        assert shards == [i % 3 for i in range(len(shards))]
    # a pure function of registration order: replay agrees, and a
    # second batch continues the deal where the first stopped
    replay = Partitioner(3)
    assert [replay.assign(device) for device in devices] == assignment
    split = Partitioner(3)
    first = [split.assign(device) for device in devices[:7]]
    second = [split.assign(device) for device in devices[7:]]
    assert first + second == assignment


def test_partitioner_rejects_bad_shard_count():
    with pytest.raises(ValidationError, match="n_shards"):
        Partitioner(0)


# ----------------------------------------------------------------------
# telemetry and checkpoint byte-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_shards", [1, 3])
def test_sharded_telemetry_matches_single_process(reference, n_shards):
    supervisor = _start_supervisor(n_shards)
    try:
        records = _supervisor_records(supervisor, 6)
    finally:
        supervisor.stop()
    assert _dump(records) == reference


def test_checkpoint_bytes_identical_across_shard_counts(tmp_path):
    controller, _ = _single_process_records(3)
    expected = pickle.dumps(
        checkpoint_payload(
            controller.fleet, 3, SLICES, "auto", 256, 1, True
        ),
        protocol=4,
    )
    for n_shards in (1, 2, 3):
        supervisor = _start_supervisor(n_shards)
        try:
            supervisor.run(3)
            path = tmp_path / f"shards-{n_shards}.ckpt"
            supervisor.save_checkpoint(
                path, telemetry_every=1, telemetry_per_device=True
            )
        finally:
            supervisor.stop()
        assert path.read_bytes() == expected, n_shards


def test_resume_under_repartitioning(reference, tmp_path):
    path = tmp_path / "mid.ckpt"
    supervisor = _start_supervisor(4)
    try:
        prefix = _dump(_supervisor_records(supervisor, 3))
        supervisor.save_checkpoint(path)
    finally:
        supervisor.stop()
    assert prefix == reference[:3]
    for n_shards in (2, 1):
        payload = load_checkpoint(path)
        resumed = ShardSupervisor(
            n_shards,
            slices_per_tick=payload["slices_per_tick"],
            backend=payload["backend"],
            chunk_slices=payload["chunk_slices"],
        )
        resumed.start(payload["fleet"], tick=payload["tick"])
        try:
            suffix = _dump(_supervisor_records(resumed, 3))
        finally:
            resumed.stop()
        assert suffix == reference[3:], n_shards


# ----------------------------------------------------------------------
# worker death
# ----------------------------------------------------------------------
def test_worker_kill_restarts_from_spool(reference):
    supervisor = _start_supervisor(3)
    try:
        records = _supervisor_records(supervisor, 3)
        victim = supervisor.info()["worker_pids"][1]
        os.kill(victim, signal.SIGKILL)
        records += _supervisor_records(supervisor, 3)
        assert supervisor.restarts >= 1
        assert victim not in supervisor.info()["worker_pids"]
    finally:
        supervisor.stop()
    assert _dump(records) == reference


def test_spooling_disabled_makes_worker_death_fatal():
    supervisor = _start_supervisor(2, checkpoint_every=0)
    try:
        supervisor.step_tick()
        os.kill(supervisor.info()["worker_pids"][0], signal.SIGKILL)
        with pytest.raises(ValidationError, match="spool"):
            supervisor.run(3)
    finally:
        supervisor.stop()


# ----------------------------------------------------------------------
# live membership and policy changes
# ----------------------------------------------------------------------
def test_live_ops_match_single_process():
    # single-process reference: 2 ticks, register a group, retire a
    # device, push a policy, 3 more ticks
    fleet, _ = build_fleet(SPEC, base_seed=SEED)
    sink = MemoryTelemetry()
    controller = FleetController(
        fleet,
        slices_per_tick=SLICES,
        telemetry=sink,
        telemetry_per_device=True,
    )
    controller.run(2)
    extra = build_group_devices(EXTRA_GROUP, group_index=2, base_seed=SEED)
    for device in extra:
        fleet.adopt_device(device)
    fleet.remove_device("tmo-0001")
    target = fleet.device("disks-0002")
    fleet.replace_agent(
        "disks-0002",
        build_agent_from_spec(NEW_AGENT, target.system, target.costs),
    )
    controller.run(3)

    supervisor = _start_supervisor(3)
    try:
        records = _supervisor_records(supervisor, 2)
        supervisor.register_devices(
            build_group_devices(EXTRA_GROUP, group_index=2, base_seed=SEED)
        )
        supervisor.remove_device("tmo-0001")
        system, costs = supervisor.canonical_model("disks-0002")
        supervisor.replace_agents(
            [("disks-0002", build_agent_from_spec(NEW_AGENT, system, costs))]
        )
        records += _supervisor_records(supervisor, 3)
    finally:
        supervisor.stop()
    assert _dump(records) == _dump(sink.records)


def test_supervisor_rejects_bad_operations():
    supervisor = _start_supervisor(2)
    try:
        with pytest.raises(ValidationError, match="already running"):
            fleet, _ = build_fleet(SPEC, base_seed=SEED)
            supervisor.start(fleet)
        with pytest.raises(ValidationError, match="duplicate device id"):
            supervisor.register_devices(
                build_group_devices(
                    SPEC["groups"][1], group_index=1, base_seed=SEED
                )
            )
        with pytest.raises(ValidationError, match="unknown device"):
            supervisor.remove_device("ghost-0000")
        with pytest.raises(ValidationError, match="unknown device"):
            supervisor.canonical_model("ghost-0000")
    finally:
        supervisor.stop()
    with pytest.raises(ValidationError, match="not running"):
        supervisor.step_tick()


# ----------------------------------------------------------------------
# the daemon over a real socket
# ----------------------------------------------------------------------
def _socket_path(tmp_path):
    # AF_UNIX paths are capped at ~100 bytes; pytest tmp dirs stay
    # short enough, but keep the leaf minimal anyway
    path = tmp_path / "s"
    assert len(str(path)) < 100
    return str(path)


def _run_daemon(tmp_path, supervisor=None, **kwargs):
    if supervisor is None:
        supervisor = ShardSupervisor(2, slices_per_tick=SLICES)
    socket_path = _socket_path(tmp_path)
    daemon = FleetDaemon(socket_path, supervisor, **kwargs)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30
    while not os.path.exists(socket_path):
        assert time.monotonic() < deadline, "daemon never bound its socket"
        time.sleep(0.01)
    return socket_path, thread


def test_daemon_end_to_end(reference, tmp_path):
    socket_path, thread = _run_daemon(
        tmp_path, telemetry_per_device=True
    )
    streamed: list = []
    checkpoint_path = tmp_path / "live.ckpt"
    with ServiceClient(socket_path, timeout=120) as client:
        assert client.server_hello["server"] == "repro-dpm-fleetd"
        assert client.server_hello["shards"] == 2
        for group in SPEC["groups"]:
            client.register_group(group, base_seed=SEED)
        info = client.info()
        assert info["n_devices"] == 18
        assert sum(info["devices_per_shard"]) == 18
        result = client.step(6, on_telemetry=streamed.append)
        assert result == {"tick": 6, "ticks_run": 6}
        assert client.ping() == {"pong": True, "tick": 6}
        snap = client.snapshot(per_device=True)
        assert snap["tick"] == 6
        assert len(snap["devices"]) == 18
        client.checkpoint(
            checkpoint_path, telemetry_every=1, telemetry_per_device=True
        )
        assert client.remove_device("tmo-0005")["n_devices"] == 17
        updated = client.update_policy("disks-0000", NEW_AGENT)
        assert updated["agent"] == "timeout(10)"
        client.shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert not os.path.exists(socket_path)
    # streamed telemetry is the single-process reference, byte for byte
    assert _dump(streamed) == reference
    payload = load_checkpoint(checkpoint_path)
    assert payload["tick"] == 6
    assert len(payload["fleet"]) == 18


def test_daemon_requires_hello_first(tmp_path):
    import socket as socket_module

    from repro.service.protocol import FrameChannel, make_request

    socket_path, thread = _run_daemon(tmp_path)
    # a raw connection that skips the handshake is refused...
    raw = socket_module.socket(socket_module.AF_UNIX)
    raw.connect(socket_path)
    channel = FrameChannel(raw)
    greeting = channel.receive()
    assert greeting["event"] == "hello"
    channel.send(make_request(0, "ping"))
    reply = channel.receive()
    assert reply["ok"] is False
    assert "hello" in reply["error"]
    channel.close()
    # ...and a version mismatch is refused with a clear error...
    raw = socket_module.socket(socket_module.AF_UNIX)
    raw.connect(socket_path)
    channel = FrameChannel(raw)
    channel.receive()
    channel.send(
        make_request(0, "hello", {"protocol": PROTOCOL_MISMATCH})
    )
    reply = channel.receive()
    assert reply["ok"] is False
    assert "protocol version mismatch" in reply["error"]
    channel.close()
    # ...while the daemon keeps serving the next client
    with ServiceClient(socket_path, timeout=60) as client:
        assert client.ping()["pong"] is True
        client.shutdown()
    thread.join(timeout=30)


PROTOCOL_MISMATCH = 999


def test_client_errors_are_service_errors(tmp_path):
    socket_path, thread = _run_daemon(tmp_path)
    with ServiceClient(socket_path, timeout=60) as client:
        with pytest.raises(ServiceError, match="unknown device"):
            client.remove_device("ghost-0000")
        # the connection survives a refused request
        assert client.ping()["pong"] is True
        client.shutdown()
    thread.join(timeout=30)
    with pytest.raises(ServiceError, match="cannot connect"):
        ServiceClient(socket_path, timeout=5).connect()
