"""Tests of the paper's theoretical results.

* Theorem A.1: the unconstrained optimum is attained by a deterministic
  Markov stationary policy, whose value vector is independent of the
  initial distribution, and LP / value iteration / policy iteration all
  find it.
* Theorem A.2: with an active constraint the optimum is randomized.
* Theorem 4.1: the feasible-allocation set is convex, hence the Pareto
  curve is convex.
* Optimality dominance: no heuristic (history-dependent) policy can
  beat the LP optimum — checked exactly for Markov heuristics.
"""

import numpy as np
import pytest

from repro.core.costs import PENALTY, POWER
from repro.core.dynamic_programming import policy_iteration, value_iteration
from repro.core.optimizer import PolicyOptimizer
from repro.core.policy import evaluate_policy
from repro.policies import constant_markov_policy, eager_markov_policy
from repro.systems import example_system

GAMMA = 0.99  # fast-converging discount for the DP comparisons


@pytest.fixture(scope="module")
def bundle():
    return example_system.build(gamma=GAMMA)


@pytest.fixture(scope="module")
def optimizer(bundle):
    return PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=GAMMA,
        initial_distribution=bundle.initial_distribution,
    )


class TestTheoremA1:
    @pytest.mark.parametrize("metric", [POWER, PENALTY])
    def test_unconstrained_optimum_is_deterministic(self, optimizer, metric):
        result = optimizer.minimize_unconstrained(metric).require_feasible()
        assert result.policy.is_deterministic

    def test_lp_equals_value_iteration(self, bundle, optimizer):
        result = optimizer.minimize_unconstrained(POWER).require_feasible()
        dp = value_iteration(bundle.system, bundle.costs.metric(POWER), GAMMA, tol=1e-12)
        assert dp.converged
        lp_total = result.evaluation.totals[POWER]
        dp_total = float(bundle.initial_distribution @ dp.values)
        assert lp_total == pytest.approx(dp_total, rel=1e-7)

    def test_lp_equals_policy_iteration(self, bundle, optimizer):
        result = optimizer.minimize_unconstrained(POWER).require_feasible()
        dp = policy_iteration(bundle.system, bundle.costs.metric(POWER), GAMMA)
        assert dp.converged
        dp_total = float(bundle.initial_distribution @ dp.values)
        assert result.evaluation.totals[POWER] == pytest.approx(dp_total, rel=1e-9)

    def test_value_iteration_equals_policy_iteration(self, bundle):
        vi = value_iteration(bundle.system, bundle.costs.metric(PENALTY), GAMMA, tol=1e-12)
        pi = policy_iteration(bundle.system, bundle.costs.metric(PENALTY), GAMMA)
        assert np.allclose(vi.values, pi.values, atol=1e-7)

    def test_optimal_value_independent_of_p0(self, bundle):
        """Theorem A.1: v* does not depend on the initial distribution;
        the optimal *policy value from each start* is fixed, so two
        optimizers with different p0 agree state-wise."""
        opt_a = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=GAMMA,
            initial_distribution=bundle.system.point_distribution("on", "0", 0),
        )
        opt_b = PolicyOptimizer(
            bundle.system,
            bundle.costs,
            gamma=GAMMA,
            initial_distribution=bundle.system.uniform_distribution(),
        )
        dp = value_iteration(bundle.system, bundle.costs.metric(POWER), GAMMA, tol=1e-12)
        for opt, p0 in (
            (opt_a, bundle.system.point_distribution("on", "0", 0)),
            (opt_b, bundle.system.uniform_distribution()),
        ):
            result = opt.minimize_unconstrained(POWER).require_feasible()
            assert result.evaluation.totals[POWER] == pytest.approx(
                float(p0 @ dp.values), rel=1e-6
            )

    def test_optimality_equations_hold(self, bundle):
        """v* satisfies v = min_a [c + gamma P^a v] (paper Eq. 12)."""
        from repro.core.dynamic_programming import q_values

        dp = value_iteration(bundle.system, bundle.costs.metric(POWER), GAMMA, tol=1e-12)
        q = q_values(bundle.system, bundle.costs.metric(POWER), GAMMA, dp.values)
        assert np.allclose(q.min(axis=1), dp.values, atol=1e-8)


class TestTheoremA2:
    def test_active_constraints_give_randomized_policy(self, optimizer):
        result = optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        result.require_feasible()
        # Both constraints bind (checked in test_optimizer), so the
        # optimum cannot be deterministic.
        assert not result.policy.is_deterministic

    def test_inactive_constraint_gives_deterministic_policy(self, optimizer):
        # A very loose bound is inactive; Theorem A.2's first clause.
        result = optimizer.minimize_power(penalty_bound=50.0).require_feasible()
        assert result.average(PENALTY) < 50.0 - 1e-6  # inactive indeed
        assert result.policy.is_deterministic

    def test_randomization_is_minimal(self, optimizer):
        """A vertex solution randomizes in at most #active-constraints
        states (basic solutions have <= m nonzeros)."""
        result = optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        matrix = result.policy.matrix
        randomized_states = int(np.sum(matrix.max(axis=1) < 1.0 - 1e-9))
        assert randomized_states <= 2


class TestOptimalityDominance:
    """No Markov heuristic can beat the LP optimum — checked exactly."""

    @pytest.mark.parametrize("loss_bound", [None, 0.25])
    def test_eager_policy_never_beats_lp(self, bundle, optimizer, loss_bound):
        eager = eager_markov_policy(bundle.system, "s_on", "s_off")
        ev = evaluate_policy(
            bundle.system, bundle.costs, eager, GAMMA, bundle.initial_distribution
        )
        kwargs = {"penalty_bound": ev.averages[PENALTY]}
        if loss_bound is not None:
            kwargs["loss_bound"] = max(loss_bound, ev.averages["loss"])
        result = optimizer.minimize_power(**kwargs).require_feasible()
        assert result.average(POWER) <= ev.averages[POWER] + 1e-7

    def test_always_on_never_beats_lp(self, bundle, optimizer):
        always_on = constant_markov_policy(bundle.system, "s_on")
        ev = evaluate_policy(
            bundle.system, bundle.costs, always_on, GAMMA, bundle.initial_distribution
        )
        result = optimizer.minimize_power(
            penalty_bound=ev.averages[PENALTY], loss_bound=ev.averages["loss"]
        ).require_feasible()
        assert result.average(POWER) <= ev.averages[POWER] + 1e-7

    def test_random_policies_never_beat_lp(self, bundle, optimizer):
        rng = np.random.default_rng(202)
        from repro.core.policy import MarkovPolicy

        for _ in range(25):
            raw = rng.random((8, 2)) + 1e-6
            policy = MarkovPolicy(
                raw / raw.sum(axis=1, keepdims=True), ("s_on", "s_off")
            )
            ev = evaluate_policy(
                bundle.system, bundle.costs, policy, GAMMA, bundle.initial_distribution
            )
            result = optimizer.minimize_power(
                penalty_bound=ev.averages[PENALTY],
                loss_bound=ev.averages["loss"],
            ).require_feasible()
            assert result.average(POWER) <= ev.averages[POWER] + 1e-7
