"""Tests for the MMPP(2)/Poisson generator fits (EM round trips)."""

import numpy as np
import pytest

from repro.estimation.mmpp_fit import fit_mmpp2, fit_poisson
from repro.runtime.streams import stream_from_spec
from repro.sim import make_rng
from repro.traces.synthetic import mmpp2_trace, poisson_trace
from repro.util.validation import ValidationError


class TestPoissonFit:
    def test_rate_is_sample_mean(self):
        fit = fit_poisson([0, 1, 2, 1, 0, 2])
        assert fit.rate_per_slice == pytest.approx(1.0)

    def test_recovers_synthetic_rate(self):
        trace = poisson_trace(250.0, 40.0, make_rng(0))
        counts = trace.discretize(0.01)
        fit = fit_poisson(counts)
        assert fit.rate_per_slice == pytest.approx(2.5, rel=0.05)
        assert np.isfinite(fit.log_likelihood)

    def test_all_silent_stream(self):
        fit = fit_poisson([0, 0, 0, 0])
        assert fit.rate_per_slice == 0.0
        assert fit.log_likelihood == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            fit_poisson([])

    def test_stream_spec_round_trip(self):
        fit = fit_poisson([0, 1, 0, 1])
        stream = stream_from_spec(fit.to_stream_spec(), make_rng(0))
        assert stream.describe().startswith("poisson")


class TestMMPP2Fit:
    """Acceptance round trip: EM recovers the generating parameters."""

    def test_recovers_parameters(self):
        p_ii, p_bb, emit = 0.95, 0.85, 0.9
        trace = mmpp2_trace(
            p_ii, p_bb, 20_000, 1.0, make_rng(7),
            busy_arrival_probability=emit,
        )
        fit = fit_mmpp2(trace.discretize(1.0))
        assert fit.converged
        assert fit.p_stay_idle == pytest.approx(p_ii, abs=0.03)
        assert fit.p_stay_busy == pytest.approx(p_bb, abs=0.05)
        assert fit.busy_arrival_probability == pytest.approx(emit, abs=0.05)

    def test_recovers_certain_emission(self):
        trace = mmpp2_trace(0.9, 0.8, 12_000, 1.0, make_rng(3))
        fit = fit_mmpp2(trace.discretize(1.0))
        assert fit.busy_arrival_probability > 0.95
        assert fit.p_stay_idle == pytest.approx(0.9, abs=0.04)
        assert fit.p_stay_busy == pytest.approx(0.8, abs=0.06)

    def test_em_never_decreases_likelihood(self):
        trace = mmpp2_trace(0.95, 0.85, 4000, 1.0, make_rng(5))
        counts = trace.discretize(1.0)
        previous = fit_mmpp2(counts, max_iterations=1)
        for iterations in (2, 4, 8, 16):
            current = fit_mmpp2(counts, max_iterations=iterations)
            assert current.log_likelihood >= previous.log_likelihood - 1e-9
            previous = current

    def test_truncates_to_max_slices(self):
        trace = mmpp2_trace(0.95, 0.85, 5000, 1.0, make_rng(1))
        fit = fit_mmpp2(trace.discretize(1.0), max_slices=1000)
        assert fit.n_observations == 1000

    def test_all_silent_stream_is_degenerate_idle(self):
        fit = fit_mmpp2([0] * 100)
        assert fit.converged
        assert fit.p_stay_idle > 0.999

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            fit_mmpp2([1])

    def test_explicit_init_validated(self):
        with pytest.raises(ValidationError):
            fit_mmpp2([0, 1, 0, 1], init=(1.5, 0.5, 0.5))

    def test_stream_spec_round_trip(self):
        trace = mmpp2_trace(0.95, 0.85, 3000, 1.0, make_rng(2))
        fit = fit_mmpp2(trace.discretize(1.0))
        stream = stream_from_spec(fit.to_stream_spec(), make_rng(0))
        counts = stream.next_counts(2000)
        # The regenerated stream has roughly the fitted arrival rate.
        stationary_busy = (1.0 - fit.p_stay_idle) / (
            (1.0 - fit.p_stay_idle) + (1.0 - fit.p_stay_busy)
        )
        expected = stationary_busy * fit.busy_arrival_probability
        assert counts.mean() == pytest.approx(expected, abs=0.05)

    def test_to_requester(self):
        trace = mmpp2_trace(0.95, 0.85, 3000, 1.0, make_rng(4))
        fit = fit_mmpp2(trace.discretize(1.0))
        requester = fit.to_requester()
        assert requester.n_states == 2
        assert requester.chain.matrix[0, 0] == pytest.approx(fit.p_stay_idle)

    def test_bic_prefers_mmpp_on_bursty_data(self):
        trace = mmpp2_trace(0.97, 0.9, 10_000, 1.0, make_rng(9))
        counts = trace.discretize(1.0)
        assert fit_mmpp2(counts).bic < fit_poisson(counts).bic
