"""Sparse LP core: representation equivalence and the factored path.

The acceptance suite for the sparse revised-simplex tentpole:

* ``LinearProgram`` sparse (CSR) construction and standard-form
  conversion agree exactly with the dense fallback;
* sparse-vs-dense ``LPResult`` equivalence at 1e-8 (objective, policy,
  Pareto curves) across the figure experiments' optimization setups
  (fig6 example sweep, fig8 disk, fig9a web lower-bound sweep, fig9b
  CPU with its action mask);
* degenerate / redundant-row instances and warm-start round trips on
  the factored (LU + eta updates) path;
* solve statistics (``LPResult.stats``) shape and the
  no-per-iteration-refactorization invariant.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.average_cost import AverageCostOptimizer
from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import PolicyOptimizer, balance_matrix
from repro.core.pareto import min_achievable
from repro.core.pareto_sweep import ParetoSweepSolver
from repro.lp import simplex
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.solve import solve_lp
from repro.systems import cpu, disk_drive, example_system, web_server
from repro.util.validation import ValidationError

#: The tentpole's acceptance tolerance for representation agreement.
AGREEMENT_TOL = 1e-8


def _optimizer(bundle, sparse, backend="simplex", **kwargs):
    return PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
        backend=backend,
        sparse=sparse,
        **kwargs,
    )


def small_sparse_lp() -> LinearProgram:
    lp = LinearProgram([1.0, 2.0, 0.0])
    lp.add_equality_block(
        sp.csr_matrix(np.array([[1.0, 1.0, 1.0]])), [1.0]
    )
    lp.add_inequality([1.0, 0.0, 0.0], 0.75)
    return lp


class TestSparseContainer:
    def test_block_construction_counts(self):
        lp = small_sparse_lp()
        assert lp.is_sparse
        assert lp.n_equalities == 1
        assert lp.n_variables == 3

    def test_dense_blocks_keep_problem_dense(self):
        lp = LinearProgram([1.0, 1.0])
        lp.add_equality_block(np.array([[1.0, 1.0]]), [1.0])
        assert not lp.is_sparse

    def test_dense_accessor_matches_sparse(self):
        lp = small_sparse_lp()
        assert np.array_equal(lp.A_eq, lp.A_eq_sparse.toarray())
        assert lp.b_eq.tolist() == [1.0]

    def test_mixed_blocks_stack_in_order(self):
        lp = LinearProgram([1.0, 1.0])
        lp.add_equality([1.0, 0.0], 0.25)
        lp.add_equality_block(sp.eye(2, format="csr"), [0.5, 0.75])
        assert lp.n_equalities == 3
        assert np.array_equal(
            lp.A_eq, [[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]]
        )
        assert lp.b_eq.tolist() == [0.25, 0.5, 0.75]

    def test_block_validation(self):
        lp = LinearProgram([1.0, 1.0])
        with pytest.raises(ValidationError, match="columns"):
            lp.add_equality_block(sp.eye(3, format="csr"), [0.0, 0.0, 0.0])
        with pytest.raises(ValidationError, match="rows"):
            lp.add_equality_block(sp.eye(2, format="csr"), [0.0])
        with pytest.raises(ValidationError, match="non-finite"):
            lp.add_equality_block(
                sp.csr_matrix(np.array([[np.inf, 0.0]])), [0.0]
            )
        with pytest.raises(ValidationError, match="non-finite"):
            lp.add_equality_block(sp.eye(2, format="csr"), [np.nan, 0.0])

    def test_standard_form_sparse_matches_dense(self):
        lp = small_sparse_lp()
        std_sparse = lp.to_standard_form()
        std_dense = lp.to_standard_form(sparse=False)
        assert std_sparse.is_sparse and not std_dense.is_sparse
        assert np.array_equal(std_sparse.A.toarray(), std_dense.A)
        assert np.array_equal(std_sparse.b, std_dense.b)
        assert np.array_equal(std_sparse.c, std_dense.c)

    def test_standard_form_forced_sparse_on_dense_problem(self):
        lp = LinearProgram([1.0, 2.0])
        lp.add_equality([1.0, 1.0], 1.0)
        std = lp.to_standard_form(sparse=True)
        assert std.is_sparse
        result = simplex.solve_standard_form(std)
        assert result.is_optimal
        assert result.objective == pytest.approx(1.0, abs=1e-9)

    def test_residuals_on_sparse_problem(self):
        lp = small_sparse_lp()
        assert lp.is_feasible([0.5, 0.25, 0.25])
        res = lp.residuals([0.0, 0.0, 0.0])
        assert res["equality"] == pytest.approx(1.0)

    def test_copy_shares_blocks(self):
        lp = small_sparse_lp()
        clone = lp.with_upper_bound_row([0.0, 1.0, 0.0], 0.5)
        assert clone.n_inequalities == 2
        assert lp.n_inequalities == 1
        assert clone.is_sparse


class TestBalanceMatrix:
    @pytest.mark.parametrize("gamma", [0.9, 1.0 - 1e-6, 1.0])
    def test_sparse_assembly_bit_identical(self, gamma):
        system = example_system.build().system
        dense = balance_matrix(system, gamma, sparse=False)
        sparse_m = balance_matrix(system, gamma, sparse=True)
        assert sp.issparse(sparse_m)
        assert np.array_equal(dense, sparse_m.toarray())

    def test_disk_sparse_assembly(self):
        system = disk_drive.build().system
        dense = balance_matrix(system, 1.0 - 1e-6, sparse=False)
        sparse_m = balance_matrix(system, 1.0 - 1e-6, sparse=True)
        assert np.array_equal(dense, sparse_m.toarray())
        # The point of the exercise: the balance block really is sparse.
        density = sparse_m.nnz / (sparse_m.shape[0] * sparse_m.shape[1])
        assert density < 0.1


class TestSimplexSparsePath:
    def test_sparse_solve_matches_dense(self):
        lp = small_sparse_lp()
        sparse_result = simplex.solve(lp)
        dense_result = simplex.solve_standard_form(lp.to_standard_form(sparse=False))
        assert sparse_result.is_optimal and dense_result.is_optimal
        assert sparse_result.objective == pytest.approx(
            dense_result.objective, abs=1e-12
        )
        assert np.allclose(sparse_result.x, dense_result.x, atol=1e-10)

    def test_redundant_rows_dropped_on_sparse_path(self):
        lp = LinearProgram([1.0, 1.0, 1.0])
        block = sp.csr_matrix(
            np.array(
                [
                    [1.0, 1.0, 0.0],
                    [2.0, 2.0, 0.0],  # redundant
                    [0.0, 0.0, 1.0],
                ]
            )
        )
        lp.add_equality_block(block, [1.0, 2.0, 0.5])
        result = simplex.solve(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(1.5, abs=1e-9)
        # The kept-row set excludes the dropped redundant row.
        assert len(result.warm_start.rows) == 2

    def test_degenerate_beale_on_sparse_path(self):
        from repro.lp.problem import StandardFormLP

        c = np.array([-0.75, 150.0, -0.02, 6.0, 0.0, 0.0, 0.0])
        A = sp.csr_matrix(
            np.array(
                [
                    [0.25, -60.0, -0.04, 9.0, 1.0, 0.0, 0.0],
                    [0.5, -90.0, -0.02, 3.0, 0.0, 1.0, 0.0],
                    [0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
                ]
            )
        )
        std = StandardFormLP(c=c, A=A, b=np.array([0.0, 0.0, 1.0]), n_original=7)
        result = simplex.solve_standard_form(std)
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == pytest.approx(-0.05, abs=1e-9)

    def test_negative_rhs_flip_on_sparse_path(self):
        lp = LinearProgram([1.0, 2.0])
        lp.add_equality_block(
            sp.csr_matrix(np.array([[-1.0, -1.0]])), [-1.0]
        )
        result = simplex.solve(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(1.0, abs=1e-9)

    def test_infeasible_certificate_on_sparse_path(self):
        lp = LinearProgram([1.0, 1.0])
        lp.add_equality_block(
            sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]])), [1.0, 2.0]
        )
        result = simplex.solve(lp)
        assert result.status is LPStatus.INFEASIBLE


class TestWarmStartFactoredPath:
    def _sparse_lp(self, rhs=0.75):
        lp = LinearProgram([1.0, 2.0, 0.0])
        lp.add_equality_block(
            sp.csr_matrix(np.array([[1.0, 1.0, 1.0]])), [1.0]
        )
        lp.add_inequality([-1.0, 0.0, 0.0], -rhs)  # x0 >= rhs
        return lp

    def test_round_trip_matches_cold(self):
        first = simplex.solve(self._sparse_lp(0.75))
        assert first.is_optimal and first.warm_start is not None
        moved = self._sparse_lp(0.25)
        warm = simplex.solve(moved, warm_start=first.warm_start)
        cold = simplex.solve(moved)
        assert warm.is_optimal and cold.is_optimal
        assert warm.objective == pytest.approx(cold.objective, abs=1e-10)
        assert np.allclose(warm.x, cold.x, atol=1e-9)
        assert warm.stats["warm_start_used"]
        assert not cold.stats["warm_start_used"]

    def test_warm_infeasibility_certificate(self):
        first = simplex.solve(self._sparse_lp(0.75))
        impossible = self._sparse_lp(1.5)  # x0 >= 1.5 but sum = 1
        warm = simplex.solve(impossible, warm_start=first.warm_start)
        assert warm.status is LPStatus.INFEASIBLE

    def test_cross_representation_warm_start(self):
        # A dense solve's basis indexes the same standard form, so it
        # warm-starts the sparse representation (and vice versa).
        dense_lp = LinearProgram([1.0, 2.0, 0.0])
        dense_lp.add_equality([1.0, 1.0, 1.0], 1.0)
        dense_lp.add_inequality([-1.0, 0.0, 0.0], -0.75)
        first = simplex.solve(dense_lp)
        warm = simplex.solve(self._sparse_lp(0.25), warm_start=first.warm_start)
        cold = simplex.solve(self._sparse_lp(0.25))
        assert warm.is_optimal
        assert warm.objective == pytest.approx(cold.objective, abs=1e-10)


class TestSolveStats:
    def test_simplex_stats_shape(self):
        result = simplex.solve(small_sparse_lp())
        stats = result.stats
        assert stats["sparse"] is True
        assert stats["pricing"] == "full"
        assert stats["iterations"] >= 1
        assert stats["refactorizations"] >= 1
        assert stats["fill_ratio"] > 0
        assert {"n_rows", "n_cols", "nnz", "eta_updates", "basis_nnz"} <= set(stats)

    def test_no_per_iteration_refactorization(self):
        # A non-degenerate random sparse LP that the cold two-phase
        # path solves directly with a long pivot run (recovery-free, so
        # the stats reflect the hot path).
        rng = np.random.default_rng(3)
        n, m = 500, 150
        x0 = rng.random(n)
        A = (rng.random((m, n)) < 0.05) * rng.standard_normal((m, n))
        lp = LinearProgram(rng.random(n))
        lp.add_equality_block(sp.csr_matrix(A), A @ x0)
        result = simplex.solve(lp)
        assert result.is_optimal
        stats = result.stats
        assert stats["iterations"] > 2 * simplex.REFRESH
        # The factored hot path refactorizes on the REFRESH cadence
        # (plus phase boundaries), never once per pivot.
        assert stats["refactorizations"] <= stats["iterations"] // 4 + simplex.REFRESH
        assert stats["eta_updates"] > stats["refactorizations"]

    def test_scipy_stats_present(self):
        bundle = example_system.build()
        optimizer = _optimizer(bundle, sparse=True, backend="scipy")
        result = optimizer.minimize_unconstrained(POWER).require_feasible()
        stats = result.lp_result.stats
        assert stats["sparse"] is True
        assert stats["n_cols"] == bundle.system.n_states * bundle.system.n_commands

    def test_sweep_aggregates_lp_stats(self):
        bundle = example_system.build()
        optimizer = _optimizer(bundle, sparse=False)
        solver = ParetoSweepSolver(optimizer)
        floor = min_achievable(optimizer, PENALTY)
        solver.solve([floor * 1.5, floor * 2.0, floor * 3.0])
        assert solver.stats.lp_iterations > 0
        assert solver.stats.lp_refactorizations > 0
        assert "lp_iterations" in solver.stats.as_dict()


def _assert_results_agree(sparse_result, dense_result):
    assert sparse_result.feasible == dense_result.feasible
    if not sparse_result.feasible:
        return
    assert sparse_result.objective_average == pytest.approx(
        dense_result.objective_average, abs=AGREEMENT_TOL
    )
    assert np.allclose(
        sparse_result.policy.matrix,
        dense_result.policy.matrix,
        atol=AGREEMENT_TOL,
    )


class TestFigureEquivalence:
    """Sparse vs dense at 1e-8 on every figure experiment's LP setup."""

    def test_fig6_example_constrained(self):
        bundle = example_system.build()
        for bound in (0.3, 0.5, 0.9):
            _assert_results_agree(
                _optimizer(bundle, sparse=True).minimize_power(
                    penalty_bound=bound
                ),
                _optimizer(bundle, sparse=False).minimize_power(
                    penalty_bound=bound
                ),
            )

    def test_fig6_example_curve(self):
        bundle = example_system.build()
        bounds = [0.3, 0.5, 0.7, 0.9]
        curves = {}
        for sparse in (True, False):
            solver = ParetoSweepSolver(_optimizer(bundle, sparse=sparse))
            curves[sparse] = solver.solve(bounds)
        for ps, pd in zip(curves[True].points, curves[False].points):
            assert ps.feasible == pd.feasible
            if ps.feasible:
                assert ps.objective == pytest.approx(
                    pd.objective, abs=AGREEMENT_TOL
                )

    def test_fig8_disk_constrained(self):
        bundle = disk_drive.build()
        sparse_opt = _optimizer(bundle, sparse=True)
        floor = min_achievable(sparse_opt, PENALTY)
        _assert_results_agree(
            sparse_opt.minimize_power(penalty_bound=floor * 1.5),
            _optimizer(bundle, sparse=False).minimize_power(
                penalty_bound=floor * 1.5
            ),
        )

    def test_fig9a_web_lower_bound_curve(self):
        bundle = web_server.build()
        curves = {}
        for sparse in (True, False):
            optimizer = _optimizer(bundle, sparse=sparse)
            solver = ParetoSweepSolver(
                optimizer,
                objective=POWER,
                constraint="throughput",
                constraint_sense=">=",
            )
            curves[sparse] = solver.solve([0.05, 0.11, 0.17])
        for ps, pd in zip(curves[True].points, curves[False].points):
            assert ps.feasible == pd.feasible
            if ps.feasible:
                assert ps.objective == pytest.approx(
                    pd.objective, abs=AGREEMENT_TOL
                )

    def test_fig9b_cpu_with_action_mask(self):
        bundle = cpu.build()
        for bound in (0.5, 1.0):
            results = {}
            for sparse in (True, False):
                optimizer = PolicyOptimizer(
                    bundle.system,
                    bundle.costs,
                    gamma=bundle.gamma,
                    initial_distribution=bundle.initial_distribution,
                    backend="simplex",
                    action_mask=bundle.action_mask,
                    sparse=sparse,
                )
                results[sparse] = optimizer.minimize_power(penalty_bound=bound)
            _assert_results_agree(results[True], results[False])

    def test_average_cost_sparse_matches_dense(self):
        bundle = example_system.build()
        results = {}
        for sparse in (True, False):
            optimizer = AverageCostOptimizer(
                bundle.system, bundle.costs, backend="simplex", sparse=sparse
            )
            results[sparse] = optimizer.minimize_power(penalty_bound=0.5)
        _assert_results_agree(results[True], results[False])

    def test_scipy_backend_sparse_pass_through(self):
        bundle = disk_drive.build()
        sparse_opt = _optimizer(bundle, sparse=True, backend="scipy")
        dense_opt = _optimizer(bundle, sparse=False, backend="scipy")
        sparse_result = sparse_opt.minimize_power(penalty_bound=0.5)
        dense_result = dense_opt.minimize_power(penalty_bound=0.5)
        _assert_results_agree(sparse_result, dense_result)
        assert sparse_result.lp_result.stats["sparse"] is True


class TestAutoSparseSelection:
    def test_small_system_defaults_dense(self):
        bundle = example_system.build()  # 8 states x 2 commands = 16 vars
        optimizer = _optimizer(bundle, sparse=None)
        assert optimizer.sparse is False

    def test_large_system_defaults_sparse(self):
        bundle = disk_drive.build()  # 66 x 5 = 330 vars
        optimizer = _optimizer(bundle, sparse=None)
        assert optimizer.sparse is True
        lp, _ = optimizer.build_lp(POWER, "min")
        assert lp.is_sparse

    def test_cross_check_spans_representations(self):
        # Cross-checking a sparse simplex solve against scipy exercises
        # both the sparse pass-through and the factored path.
        bundle = disk_drive.build()
        optimizer = _optimizer(bundle, sparse=True, cross_check=True)
        result = optimizer.minimize_unconstrained(POWER)
        assert result.feasible


class TestPolicyCacheSparse:
    def test_sparse_lp_content_hit(self):
        from repro.runtime.policy_cache import PolicyCache

        bundle = disk_drive.build()
        cache = PolicyCache()
        optimizer = _optimizer(bundle, sparse=True, backend="scipy")
        a = cache.optimize(optimizer, POWER, upper_bounds={PENALTY: 0.5})
        b = cache.optimize(optimizer, POWER, upper_bounds={PENALTY: 0.5})
        assert a is b
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_sparse_and_dense_hash_separately(self):
        from repro.runtime.policy_cache import _lp_signature

        bundle = disk_drive.build()
        sparse_lp, _ = _optimizer(bundle, sparse=True).build_lp(POWER, "min")
        dense_lp, _ = _optimizer(bundle, sparse=False).build_lp(POWER, "min")
        assert _lp_signature(sparse_lp, "scipy") != _lp_signature(
            dense_lp, "scipy"
        )
        # Same content hashes identically regardless of object identity.
        again, _ = _optimizer(bundle, sparse=True).build_lp(POWER, "min")
        assert _lp_signature(sparse_lp, "scipy") == _lp_signature(again, "scipy")

    def test_warm_hint_flows_through_sparse_family(self):
        from repro.runtime.policy_cache import PolicyCache

        bundle = disk_drive.build()
        cache = PolicyCache()
        optimizer = _optimizer(bundle, sparse=True)
        floor = min_achievable(optimizer, PENALTY)
        cache.optimize(optimizer, POWER, upper_bounds={PENALTY: floor * 2.0})
        cache.optimize(optimizer, POWER, upper_bounds={PENALTY: floor * 2.5})
        assert cache.stats.warm_hinted == 1


class TestCrossBackendAgreement:
    @pytest.mark.parametrize("backend", ["scipy", "interior-point"])
    def test_sparse_simplex_vs_other_backends(self, backend):
        bundle = disk_drive.build()
        lp, _ = _optimizer(bundle, sparse=True).build_lp(
            POWER, "min", upper_bounds={PENALTY: 0.5}
        )
        ours = solve_lp(lp, backend="simplex")
        reference = solve_lp(lp, backend=backend)
        assert ours.is_optimal and reference.is_optimal
        assert ours.objective == pytest.approx(
            reference.objective, rel=1e-6, abs=1e-6
        )
