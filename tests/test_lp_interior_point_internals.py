"""Unit tests for the interior-point solver's internal machinery.

The Mehrotra implementation is the library's PCx stand-in; its helper
stages (row-rank reduction, equilibration, starting point, step rule)
each carry invariants worth pinning down independently of end-to-end
solves.
"""

import numpy as np
import pytest

from repro.lp.interior_point import (
    _equilibrate,
    _independent_rows,
    _max_step,
    _solve_normal_equations,
    _starting_point,
)


class TestIndependentRows:
    def test_full_rank_passthrough(self):
        A = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([1.0, 2.0])
        A2, b2, consistent = _independent_rows(A, b)
        assert consistent
        assert A2.shape == (2, 2)

    def test_drops_dependent_consistent_row(self):
        A = np.array([[1.0, 1.0], [2.0, 2.0]])
        b = np.array([1.0, 2.0])
        A2, b2, consistent = _independent_rows(A, b)
        assert consistent
        assert A2.shape == (1, 2)

    def test_flags_dependent_inconsistent_row(self):
        A = np.array([[1.0, 1.0], [2.0, 2.0]])
        b = np.array([1.0, 3.0])
        _, _, consistent = _independent_rows(A, b)
        assert not consistent

    def test_zero_rows(self):
        A = np.zeros((2, 3))
        b = np.zeros(2)
        A2, b2, consistent = _independent_rows(A, b)
        assert consistent
        assert A2.shape[0] == 0

    def test_zero_rows_nonzero_rhs_inconsistent(self):
        A = np.zeros((1, 3))
        b = np.array([1.0])
        _, _, consistent = _independent_rows(A, b)
        assert not consistent

    def test_empty(self):
        A = np.zeros((0, 4))
        b = np.zeros(0)
        A2, b2, consistent = _independent_rows(A, b)
        assert consistent
        assert A2.shape == (0, 4)


class TestEquilibrate:
    def test_scaled_entries_bounded_by_one(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((4, 6)) * np.array([1.0, 1e4, 1e-3, 1.0])[:, None]
        b = rng.standard_normal(4)
        c = rng.standard_normal(6)
        A2, b2, c2, row, col = _equilibrate(A, b, c)
        assert np.max(np.abs(A2)) <= 1.0 + 1e-12

    def test_solution_mapping(self):
        """x' = col * x solves the scaled system iff x solves the original."""
        rng = np.random.default_rng(1)
        A = rng.standard_normal((3, 5)) * 100.0
        x = rng.random(5)
        b = A @ x
        c = rng.random(5)
        A2, b2, c2, row, col = _equilibrate(A, b, c)
        x_scaled = col * x
        assert np.allclose(A2 @ x_scaled, b2, atol=1e-12)
        # Objective value is invariant under the mapping.
        assert c2 @ x_scaled == pytest.approx(c @ x)

    def test_zero_rows_and_columns_survive(self):
        A = np.zeros((2, 2))
        A[0, 0] = 5.0
        A2, b2, c2, row, col = _equilibrate(A, np.ones(2), np.ones(2))
        assert np.all(np.isfinite(A2))
        assert np.all(np.isfinite(b2))
        assert np.all(np.isfinite(c2))


class TestStartingPoint:
    def test_strictly_interior(self):
        rng = np.random.default_rng(2)
        A = rng.standard_normal((3, 6))
        b = rng.standard_normal(3)
        c = rng.standard_normal(6)
        x, y, s = _starting_point(A, b, c)
        assert np.all(x > 0)
        assert np.all(s > 0)
        assert y.shape == (3,)

    def test_degenerate_zero_data(self):
        A = np.eye(2)
        x, y, s = _starting_point(A, np.zeros(2), np.zeros(2))
        assert np.all(x > 0)
        assert np.all(s > 0)


class TestMaxStep:
    def test_no_negative_direction_gives_full_step(self):
        assert _max_step(np.array([1.0, 2.0]), np.array([0.5, 0.0])) == 1.0

    def test_blocking_coordinate(self):
        # x = 1 moving at -2: blocks at alpha = 0.5.
        assert _max_step(np.array([1.0]), np.array([-2.0])) == pytest.approx(0.5)

    def test_capped_at_one(self):
        assert _max_step(np.array([10.0]), np.array([-1.0])) == 1.0

    def test_multiple_blockers(self):
        v = np.array([1.0, 4.0])
        dv = np.array([-4.0, -1.0])
        assert _max_step(v, dv) == pytest.approx(0.25)


class TestNormalEquations:
    def test_positive_definite_solve(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((4, 4))
        M = A @ A.T + np.eye(4)
        rhs = rng.standard_normal(4)
        z = _solve_normal_equations(M, rhs)
        assert np.allclose(M @ z, rhs, atol=1e-9)

    def test_singular_matrix_regularized(self):
        M = np.zeros((2, 2))
        M[0, 0] = 1.0  # rank 1
        rhs = np.array([1.0, 0.0])
        z = _solve_normal_equations(M, rhs)
        assert np.all(np.isfinite(z))
        assert z[0] == pytest.approx(1.0, abs=1e-3)
