"""Unit tests for :mod:`repro.util.validation`."""

import numpy as np
import pytest

from repro.util.validation import (
    ValidationError,
    check_distribution,
    check_nonnegative,
    check_probability,
    check_square,
    check_stochastic_matrix,
)


class TestCheckProbability:
    def test_accepts_interior_value(self):
        assert check_probability(0.5) == 0.5

    def test_accepts_boundaries(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_clips_tolerance_dust(self):
        assert check_probability(1.0 + 1e-12) == 1.0
        assert check_probability(-1e-12) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError, match="in \\[0, 1\\]"):
            check_probability(1.1)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability(-0.2)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_probability(float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_probability(float("inf"))

    def test_error_message_names_quantity(self):
        with pytest.raises(ValidationError, match="my_prob"):
            check_probability(2.0, "my_prob")


class TestCheckNonnegative:
    def test_accepts_zero_and_positive(self):
        assert check_nonnegative(0.0) == 0.0
        assert check_nonnegative(3.5) == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_nonnegative(float("nan"))


class TestCheckDistribution:
    def test_accepts_valid(self):
        out = check_distribution([0.25, 0.75])
        assert out.tolist() == [0.25, 0.75]

    def test_accepts_point_mass(self):
        out = check_distribution([0.0, 1.0, 0.0])
        assert out.tolist() == [0.0, 1.0, 0.0]

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_distribution([0.5, 0.6])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError, match="negative"):
            check_distribution([1.2, -0.2])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            check_distribution([])

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            check_distribution([[0.5, 0.5]])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_distribution([0.5, float("nan")])


class TestCheckSquare:
    def test_accepts_square(self):
        out = check_square([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError, match="square"):
            check_square([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])

    def test_rejects_vector(self):
        with pytest.raises(ValidationError):
            check_square([1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_square([[1.0, float("nan")], [0.0, 1.0]])


class TestCheckStochasticMatrix:
    def test_accepts_valid(self):
        matrix = [[0.9, 0.1], [0.4, 0.6]]
        out = check_stochastic_matrix(matrix)
        assert np.allclose(out, matrix)

    def test_accepts_identity(self):
        out = check_stochastic_matrix(np.eye(4))
        assert np.allclose(out, np.eye(4))

    def test_rejects_substochastic_row(self):
        with pytest.raises(ValidationError, match="row 1 sums"):
            check_stochastic_matrix([[1.0, 0.0], [0.3, 0.3]])

    def test_rejects_superstochastic_row(self):
        with pytest.raises(ValidationError, match="sums"):
            check_stochastic_matrix([[0.9, 0.3], [0.5, 0.5]])

    def test_rejects_negative_entry(self):
        with pytest.raises(ValidationError, match="negative"):
            check_stochastic_matrix([[1.2, -0.2], [0.5, 0.5]])

    def test_reports_bad_row_count(self):
        with pytest.raises(ValidationError, match="bad row"):
            check_stochastic_matrix([[0.5, 0.2], [0.1, 0.1]])
