"""The content-addressed policy cache and its adaptive-refit wiring."""

from __future__ import annotations

import pytest

from repro.core.average_cost import AverageCostOptimizer
from repro.policies import AdaptivePolicyAgent
from repro.runtime.policy_cache import (
    PolicyCache,
    costs_signature,
    policy_signature,
    system_signature,
)
from repro.sim.rng import make_rng
from repro.systems import example_system
from repro.util.validation import ValidationError


@pytest.fixture()
def average_optimizer(example_bundle):
    return AverageCostOptimizer(example_bundle.system, example_bundle.costs)


class TestSignatures:
    def test_identically_built_systems_hash_equal(self, example_bundle):
        other = example_system.build()
        assert system_signature(example_bundle.system) == system_signature(
            other.system
        )
        assert costs_signature(example_bundle.costs) == costs_signature(
            other.costs
        )

    def test_different_content_hashes_differ(self, example_bundle, disk_bundle):
        assert system_signature(example_bundle.system) != system_signature(
            disk_bundle.system
        )

    def test_policy_signature_tracks_matrix(self, example_optimizer):
        a = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        b = example_optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
        c = example_optimizer.minimize_power(penalty_bound=0.3, loss_bound=0.2)
        assert policy_signature(a.policy) == policy_signature(b.policy)
        assert policy_signature(a.policy) != policy_signature(c.policy)


class TestPolicyCache:
    def test_identical_solves_hit(self, average_optimizer):
        cache = PolicyCache()
        a = cache.optimize(
            average_optimizer, "power", upper_bounds={"penalty": 0.5}
        )
        b = cache.optimize(
            average_optimizer, "power", upper_bounds={"penalty": 0.5}
        )
        assert a is b
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_different_bounds_miss(self, average_optimizer):
        cache = PolicyCache()
        a = cache.optimize(
            average_optimizer, "power", upper_bounds={"penalty": 0.5}
        )
        b = cache.optimize(
            average_optimizer, "power", upper_bounds={"penalty": 0.3}
        )
        assert a is not b
        assert cache.stats.misses == 2
        assert b.objective_average >= a.objective_average - 1e-9

    def test_matches_uncached_solve(self, average_optimizer):
        cache = PolicyCache()
        cached = cache.optimize(
            average_optimizer, "power", upper_bounds={"penalty": 0.5}
        )
        cold = average_optimizer.optimize(
            "power", "min", upper_bounds={"penalty": 0.5}
        )
        assert cached.feasible and cold.feasible
        assert cached.objective_average == pytest.approx(
            cold.objective_average, abs=1e-9
        )

    def test_warm_start_hints_on_simplex(self, example_bundle):
        optimizer = AverageCostOptimizer(
            example_bundle.system, example_bundle.costs, backend="simplex"
        )
        cache = PolicyCache()
        a = cache.optimize(
            optimizer, "power", upper_bounds={"penalty": 0.5}
        )
        # Same structure, perturbed bound: family hit, warm-started.
        b = cache.optimize(
            optimizer, "power", upper_bounds={"penalty": 0.45}
        )
        assert cache.stats.warm_hinted == 1
        cold = AverageCostOptimizer(
            example_bundle.system, example_bundle.costs, backend="scipy"
        ).optimize("power", "min", upper_bounds={"penalty": 0.45})
        assert b.objective_average == pytest.approx(
            cold.objective_average, abs=1e-7
        )

    def test_lru_eviction(self, average_optimizer):
        cache = PolicyCache(max_entries=2)
        for bound in (0.3, 0.4, 0.5):
            cache.optimize(
                average_optimizer, "power", upper_bounds={"penalty": bound}
            )
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (0.3) was evicted; re-solving it misses.
        cache.optimize(
            average_optimizer, "power", upper_bounds={"penalty": 0.3}
        )
        assert cache.stats.misses == 4

    def test_invalid_max_entries(self):
        with pytest.raises(ValidationError, match="max_entries"):
            PolicyCache(max_entries=0)

    def test_discounted_optimizer_supported(self, example_optimizer):
        cache = PolicyCache()
        a = cache.optimize(
            example_optimizer,
            "power",
            upper_bounds={"penalty": 0.5, "loss": 0.2},
        )
        b = cache.optimize(
            example_optimizer,
            "power",
            upper_bounds={"penalty": 0.5, "loss": 0.2},
        )
        assert a is b
        direct = example_optimizer.minimize_power(
            penalty_bound=0.5, loss_bound=0.2
        )
        assert a.objective_average == pytest.approx(
            direct.objective_average, abs=1e-9
        )

    def test_clear(self, average_optimizer):
        cache = PolicyCache()
        cache.optimize(average_optimizer, "power")
        cache.clear()
        assert len(cache) == 0
        cache.optimize(average_optimizer, "power")
        assert cache.stats.misses == 2


class TestCachedOptimizerProxy:
    def test_minimize_wrappers_route_through_cache(self, average_optimizer):
        cache = PolicyCache()
        proxy = cache.wrap(average_optimizer)
        a = proxy.minimize_power(penalty_bound=0.5)
        b = proxy.minimize_power(penalty_bound=0.5)
        assert a is b
        assert cache.stats.hits == 1
        proxy.minimize_penalty(power_bound=2.5)
        proxy.minimize_unconstrained()
        assert cache.stats.misses == 3

    def test_delegates_everything_else(self, average_optimizer):
        proxy = PolicyCache().wrap(average_optimizer)
        assert proxy.system is average_optimizer.system
        assert proxy.backend == average_optimizer.backend
        assert proxy.cache.stats.misses == 0


class TestAdaptiveAgentCaching:
    def _run_agent(self, example_bundle, cache, n_slices=2400):
        agent = AdaptivePolicyAgent(
            example_bundle.system.provider,
            queue_capacity=1,
            optimize=lambda o: o.minimize_power(penalty_bound=0.6),
            window=400,
            refit_every=400,
            policy_cache=cache,
        )
        from repro.sim import simulate

        simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            n_slices,
            make_rng(0),
        )
        return agent

    def test_refits_route_through_cache(self, example_bundle):
        cache = PolicyCache()
        agent = self._run_agent(example_bundle, cache)
        assert agent.refits > 0
        assert cache.stats.misses + cache.stats.hits >= agent.refits
        assert agent.cache_hits == cache.stats.hits
        assert agent.cache_warm_hints == cache.stats.warm_hinted

    def test_counters_reset(self, example_bundle):
        cache = PolicyCache()
        agent = self._run_agent(example_bundle, cache)
        agent.reset()
        assert agent.cache_hits == 0
        assert agent.cache_warm_hints == 0
        assert agent.refits == 0

    def test_shared_cache_across_agents(self, example_bundle):
        """A second device seeing the same windows reuses the solves."""
        cache = PolicyCache()
        first = self._run_agent(example_bundle, cache)
        solves_after_first = cache.stats.misses
        second = self._run_agent(example_bundle, cache)
        assert second.refits > 0
        # The identical (seeded) workload produces identical refit LPs:
        # the second agent's solves are answered from the cache.
        assert cache.stats.misses == solves_after_first
        assert second.cache_hits == second.refits

    def test_simplex_backend_warm_starts_refits(self, example_bundle):
        cache = PolicyCache()
        agent = AdaptivePolicyAgent(
            example_bundle.system.provider,
            queue_capacity=1,
            optimize=lambda o: o.minimize_power(penalty_bound=0.6),
            window=300,
            refit_every=300,
            backend="simplex",
            policy_cache=cache,
        )
        from repro.sim import simulate

        simulate(
            example_bundle.system,
            example_bundle.costs,
            agent,
            1800,
            make_rng(1),
        )
        assert agent.refits >= 2
        # Later refits carry the previous basis (same LP family).
        assert agent.cache_warm_hints + agent.cache_hits >= 1
