"""Tests for trace-driven simulation (paper Section V, second mode)."""

import numpy as np
import pytest

from repro.core.costs import POWER
from repro.policies import ConstantAgent, EagerAgent, StationaryPolicyAgent
from repro.policies.markov_conversion import eager_markov_policy
from repro.sim import make_rng, simulate, simulate_trace
from repro.sim.trace_sim import NearestArrivalTracker
from repro.traces import mmpp2_trace
from repro.util.validation import ValidationError


class TestBasicReplay:
    def test_arrival_accounting(self, example_bundle, rng):
        counts = np.array([0, 1, 0, 2, 0, 1])
        result = simulate_trace(
            example_bundle.system, ConstantAgent(0), counts, rng
        )
        assert result.n_slices == 6
        assert result.arrivals == 4

    def test_always_on_power(self, example_bundle, rng):
        counts = np.zeros(100, dtype=int)
        result = simulate_trace(
            example_bundle.system,
            ConstantAgent(0),
            counts,
            rng,
            initial_provider_state="on",
        )
        assert result.mean_power == pytest.approx(3.0)

    def test_request_conservation(self, example_bundle, rng):
        counts = (np.arange(2000) % 3 == 0).astype(int)
        result = simulate_trace(
            example_bundle.system, EagerAgent(0, 1), counts, rng
        )
        capacity = example_bundle.system.queue.capacity
        assert result.serviced + result.lost <= result.arrivals
        assert result.arrivals - result.serviced - result.lost <= capacity

    def test_custom_penalty_fn(self, cpu_bundle, rng):
        sleep_index = cpu_bundle.metadata["sleep_state_index"]
        counts = np.ones(50, dtype=int)
        result = simulate_trace(
            cpu_bundle.system,
            ConstantAgent(cpu_bundle.metadata["sleep_command"]),
            counts,
            rng,
            penalty_fn=lambda s, q, z: 1.0 if (s == sleep_index and z > 0) else 0.0,
            initial_provider_state="sleep",
        )
        # Asleep with arrivals every slice: penalty ~ 1 (first slice has
        # no previous arrivals).
        assert result.mean_penalty == pytest.approx(49 / 50)

    def test_rejects_empty_trace(self, example_bundle, rng):
        with pytest.raises(ValidationError):
            simulate_trace(example_bundle.system, ConstantAgent(0), [], rng)

    def test_rejects_negative_counts(self, example_bundle, rng):
        with pytest.raises(ValidationError):
            simulate_trace(example_bundle.system, ConstantAgent(0), [-1], rng)

    def test_rejects_bad_agent_command(self, example_bundle, rng):
        with pytest.raises(ValidationError, match="command"):
            simulate_trace(example_bundle.system, ConstantAgent(9), [0, 1], rng)


class TestTrackers:
    def test_nearest_tracker_binary(self, example_bundle):
        tracker = NearestArrivalTracker(example_bundle.system.requester)
        assert tracker.reset() == 0
        assert tracker.update(1) == 1
        assert tracker.update(0) == 0
        assert tracker.update(5) == 1  # nearest to arrivals=1

    def test_kmemory_tracker_drives_policy(self, rng):
        """Trace-driven simulation with a k-memory tracker exercises the
        extracted model's full state space."""
        from repro.systems import disk_drive

        trace = mmpp2_trace(0.99, 0.8, 30_000, 1e-3, make_rng(1))
        bundle = disk_drive.build_from_trace(trace, memory=2)
        model = bundle.metadata["sr_model"]
        policy = eager_markov_policy(
            bundle.system, "go_active", "go_idle"
        )
        agent = StationaryPolicyAgent(bundle.system, policy)
        result = simulate_trace(
            bundle.system,
            agent,
            trace.discretize(1e-3),
            rng,
            tracker=model.tracker(),
            initial_provider_state="active",
        )
        assert result.n_slices == 30_000
        assert result.arrivals == trace.n_requests


class TestModelFit:
    """The paper's verification idea: when the workload *is* Markovian,
    trace-driven and Markov-driven simulation agree."""

    def test_markovian_workload_agreement(self, rng):
        from repro.systems import example_system

        stay_idle, stay_busy = 0.95, 0.85
        bundle = example_system.build()
        n = 150_000
        trace_counts = mmpp2_trace(
            stay_idle, stay_busy, n, 1.0, make_rng(10)
        ).discretize(1.0)
        if trace_counts.size < n:
            trace_counts = np.pad(trace_counts, (0, n - trace_counts.size))

        agent = EagerAgent(0, 1)
        markov = simulate(
            bundle.system,
            bundle.costs,
            agent,
            n,
            make_rng(11),
            initial_state=("on", "0", 0),
        )
        replay = simulate_trace(
            bundle.system,
            EagerAgent(0, 1),
            trace_counts,
            make_rng(12),
            initial_provider_state="on",
        )
        assert replay.mean_power == pytest.approx(
            markov.averages[POWER], rel=0.05
        )
        assert replay.mean_queue_length == pytest.approx(
            markov.averages["penalty"], rel=0.12, abs=0.02
        )
