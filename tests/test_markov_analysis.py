"""Unit and property tests for :mod:`repro.markov.analysis`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.analysis import (
    discounted_occupancy,
    expected_transition_time,
    geometric_pmf,
    geometric_survival,
    hitting_time,
    probability_from_expected_time,
    stationary_distribution,
    with_trap_state,
)
from repro.util.validation import ValidationError
from tests.conftest import assert_stochastic

BURSTY = np.array([[0.95, 0.05], [0.15, 0.85]])


class TestGeometric:
    def test_pmf_sums_to_one(self):
        p = 0.3
        ts = np.arange(1, 300)
        assert abs(geometric_pmf(p, ts).sum() - 1.0) < 1e-12

    def test_pmf_first_slice(self):
        assert geometric_pmf(0.25, 1) == 0.25

    def test_pmf_rejects_t_zero(self):
        with pytest.raises(ValidationError):
            geometric_pmf(0.5, 0)

    def test_survival_complements_pmf(self):
        p = 0.4
        for t in range(1, 10):
            cumulative = geometric_pmf(p, np.arange(1, t + 1)).sum()
            assert abs(cumulative + geometric_survival(p, t) - 1.0) < 1e-12

    def test_expected_time_paper_example(self):
        # Example 3.1: off -> on at 0.1 per slice averages 10 slices.
        assert expected_transition_time(0.1) == pytest.approx(10.0)

    def test_expected_time_zero_probability(self):
        assert expected_transition_time(0.0) == float("inf")

    def test_probability_from_expected_time_roundtrip(self):
        p = probability_from_expected_time(40e-3, 1e-3)
        assert p == pytest.approx(1.0 / 40.0)
        assert expected_transition_time(p) == pytest.approx(40.0)

    def test_probability_capped_at_one(self):
        assert probability_from_expected_time(0.5e-3, 1e-3) == 1.0

    def test_probability_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            probability_from_expected_time(0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_mean_identity_property(self, p):
        # E[T] computed from the pmf matches 1/p.
        ts = np.arange(1, 4000)
        mean = float((ts * geometric_pmf(p, ts)).sum())
        assert mean == pytest.approx(1.0 / p, rel=1e-3)


class TestStationary:
    def test_bursty(self):
        pi = stationary_distribution(BURSTY)
        assert np.allclose(pi, [0.75, 0.25], atol=1e-10)

    def test_symmetric_flip(self):
        pi = stationary_distribution([[0.99, 0.01], [0.01, 0.99]])
        assert np.allclose(pi, [0.5, 0.5], atol=1e-10)

    def test_absorbing_state(self):
        matrix = [[0.5, 0.5], [0.0, 1.0]]
        pi = stationary_distribution(matrix)
        assert np.allclose(pi, [0.0, 1.0], atol=1e-8)


class TestHittingTime:
    def test_two_state_geometric(self):
        # From state 0, hitting state 1 with exit prob 0.1 takes 10.
        matrix = [[0.9, 0.1], [0.0, 1.0]]
        h = hitting_time(matrix, [1])
        assert h[1] == 0.0
        assert h[0] == pytest.approx(10.0)

    def test_chain_of_states(self):
        # 0 -> 1 -> 2 deterministic: hitting 2 takes 2 from 0.
        matrix = [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 1.0]]
        h = hitting_time(matrix, [2])
        assert h.tolist() == [2.0, 1.0, 0.0]

    def test_unreachable_target_is_infinite(self):
        matrix = [[1.0, 0.0], [0.0, 1.0]]
        h = hitting_time(matrix, [1])
        assert h[0] == float("inf")
        assert h[1] == 0.0

    def test_invalid_target_raises(self):
        with pytest.raises(ValidationError):
            hitting_time(BURSTY, [5])

    def test_disk_wake_times(self, disk_bundle):
        # Table I regeneration: expected wake delays from each inactive
        # state under a held go_active command.
        chain = disk_bundle.system.provider.chain
        h = hitting_time(chain.matrix("go_active"), [chain.state_index("active")])
        assert h[chain.state_index("idle")] == pytest.approx(1.0)
        assert h[chain.state_index("lpidle")] == pytest.approx(40.0)
        assert h[chain.state_index("standby")] == pytest.approx(2200.0)
        assert h[chain.state_index("sleep")] == pytest.approx(6000.0)


class TestTrapState:
    def test_structure(self):
        out = with_trap_state(BURSTY, gamma=0.9)
        assert out.shape == (3, 3)
        assert_stochastic(out)
        assert np.allclose(out[:2, :2], 0.9 * BURSTY)
        assert np.allclose(out[:2, 2], 0.1)
        assert out[2, 2] == 1.0

    def test_expected_stopping_time(self):
        # Hitting the trap state is geometric with mean 1/(1-gamma).
        gamma = 0.98
        out = with_trap_state(BURSTY, gamma)
        h = hitting_time(out, [2])
        assert np.allclose(h[:2], 1.0 / (1.0 - gamma), rtol=1e-9)


class TestDiscountedOccupancy:
    def test_total_mass_is_horizon(self):
        gamma = 0.95
        y = discounted_occupancy(BURSTY, gamma, [1.0, 0.0])
        assert y.sum() == pytest.approx(1.0 / (1.0 - gamma))

    def test_matches_series(self):
        gamma = 0.9
        p0 = np.array([0.5, 0.5])
        series = np.zeros(2)
        p = p0.copy()
        for t in range(2000):
            series += (gamma**t) * p
            p = p @ BURSTY
        y = discounted_occupancy(BURSTY, gamma, p0)
        assert np.allclose(y, series, atol=1e-8)

    def test_gamma_one_rejected(self):
        with pytest.raises(ValidationError):
            discounted_occupancy(BURSTY, 1.0, [1.0, 0.0])

    def test_wrong_p0_size_rejected(self):
        with pytest.raises(ValidationError):
            discounted_occupancy(BURSTY, 0.9, [1.0, 0.0, 0.0])

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.floats(min_value=0.1, max_value=0.99),
        st.integers(min_value=0, max_value=1000),
    )
    def test_occupancy_nonnegative_property(self, n, gamma, seed):
        rng = np.random.default_rng(seed)
        raw = rng.random((n, n)) + 1e-3
        matrix = raw / raw.sum(axis=1, keepdims=True)
        p0 = np.zeros(n)
        p0[0] = 1.0
        y = discounted_occupancy(matrix, gamma, p0)
        assert np.all(y >= -1e-12)
        assert y.sum() == pytest.approx(1.0 / (1.0 - gamma), rel=1e-9)
