"""The fleet daemon's wire protocol: framing, validation, SCH001.

The protocol is a reproducibility surface like telemetry and
checkpoints: equal messages must be equal bytes (the CI smoke test
diffs daemon telemetry files byte for byte), and the field sets are
SCH001-declared so they cannot drift silently.  The planted-violation
test at the bottom proves the lint gate extends to the wire format.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro import faults
from repro.faults import Fault, FaultPlan
from repro.lint import lint_source
from repro.service.protocol import (
    EVENT_FIELDS,
    EVENT_TYPES,
    HELLO_FIELDS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_FIELDS,
    REQUEST_TYPES,
    RESPONSE_FIELDS,
    FrameChannel,
    ProtocolError,
    decode_frame,
    encode_frame,
    hello_data,
    make_error,
    make_event,
    make_request,
    make_response,
    validate_request,
)


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
def test_encode_is_canonical_bytes():
    message = {"b": 1, "a": {"z": None, "y": [1, 2]}}
    data = encode_frame(message)
    assert data == b'{"a":{"y":[1,2],"z":null},"b":1}\n'
    # pure function of content: key order on input is irrelevant
    assert data == encode_frame({"a": {"y": [1, 2], "z": None}, "b": 1})


def test_codec_round_trip():
    for message in (
        make_request(3, "step", {"ticks": 10}),
        make_response(3, {"tick": 10}),
        make_error(4, "boom"),
        make_event("telemetry", {"tick": 1}, request_id=7),
        make_event("hello", hello_data(1, 0, 0, 2)),
    ):
        assert decode_frame(encode_frame(message).rstrip(b"\n")) == message


def test_encode_rejects_unserializable():
    with pytest.raises(ProtocolError, match="JSON-serializable"):
        encode_frame({"x": object()})


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError, match="not valid JSON"):
        decode_frame(b"{nope")
    with pytest.raises(ProtocolError, match="must decode to an object"):
        decode_frame(b"[1,2]")


def test_encode_enforces_frame_cap(monkeypatch):
    import repro.service.protocol as protocol

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
    with pytest.raises(ProtocolError, match="exceeds MAX_FRAME_BYTES"):
        protocol.encode_frame({"k": "x" * 64})


# ----------------------------------------------------------------------
# constructors and field sets
# ----------------------------------------------------------------------
def test_constructors_match_declared_field_sets():
    assert frozenset(make_request(0, "ping")) == REQUEST_FIELDS
    assert frozenset(make_response(0, None)) == RESPONSE_FIELDS
    assert frozenset(make_error(0, "x")) == RESPONSE_FIELDS
    assert frozenset(make_event("log", "x")) == EVENT_FIELDS
    assert frozenset(hello_data(1, 2, 3, 4)) == HELLO_FIELDS


def test_make_request_rejects_unknown_type():
    with pytest.raises(ProtocolError, match="unknown request type"):
        make_request(0, "reboot")


def test_make_event_rejects_unknown_type():
    with pytest.raises(ProtocolError, match="unknown event type"):
        make_event("gossip", {})


def test_hello_event_carries_version_and_identity():
    data = hello_data(42, 7, 100, 4)
    assert data["protocol"] == PROTOCOL_VERSION
    assert data["server"] == "repro-dpm-fleetd"
    assert (data["pid"], data["tick"]) == (42, 7)
    assert (data["n_devices"], data["shards"]) == (100, 4)


def test_validate_request_round_trip():
    frame = make_request(9, "snapshot", {"per_device": True})
    assert validate_request(frame) == (
        "snapshot",
        9,
        {"per_device": True},
    )


@pytest.mark.parametrize(
    "frame, match",
    [
        ([1], "must be an object"),
        ({"type": "ping", "id": 0}, "missing \\['params'\\]"),
        (
            {"type": "ping", "id": 0, "params": {}, "x": 1},
            "extra \\['x'\\]",
        ),
        ({"type": "reboot", "id": 0, "params": {}}, "unknown request type"),
        ({"type": "ping", "id": True, "params": {}}, "must be an integer"),
        ({"type": "ping", "id": "0", "params": {}}, "must be an integer"),
        ({"type": "ping", "id": 0, "params": []}, "must be an object"),
    ],
)
def test_validate_request_rejects_drift(frame, match):
    with pytest.raises(ProtocolError, match=match):
        validate_request(frame)


def test_every_request_type_constructs():
    for i, request_type in enumerate(REQUEST_TYPES):
        validate_request(make_request(i, request_type))
    assert "hello" in EVENT_TYPES and "telemetry" in EVENT_TYPES


# ----------------------------------------------------------------------
# FrameChannel over a real socketpair
# ----------------------------------------------------------------------
def test_frame_channel_round_trip_and_eof():
    left_sock, right_sock = socket.socketpair()
    left, right = FrameChannel(left_sock), FrameChannel(right_sock)
    messages = [make_request(i, "ping") for i in range(3)]
    for message in messages:
        left.send(message)
    assert [right.receive() for _ in range(3)] == messages
    left.close()
    assert right.receive() is None
    right.close()


def test_frame_channel_reassembles_split_frames():
    left_sock, right_sock = socket.socketpair()
    frame = encode_frame(make_request(1, "info"))
    # dribble the frame one byte at a time from a thread
    def _dribble():
        for i in range(len(frame)):
            left_sock.sendall(frame[i : i + 1])
        left_sock.close()

    thread = threading.Thread(target=_dribble)
    thread.start()
    channel = FrameChannel(right_sock)
    assert channel.receive() == make_request(1, "info")
    assert channel.receive() is None
    thread.join()
    channel.close()


def test_frame_channel_rejects_truncation():
    left_sock, right_sock = socket.socketpair()
    left_sock.sendall(b'{"type":"ping"')  # no terminator
    left_sock.close()
    channel = FrameChannel(right_sock)
    with pytest.raises(ProtocolError, match="truncated"):
        channel.receive()
    channel.close()


def test_frame_cap_sanity():
    # large enough for a 100k-device per-device snapshot, small enough
    # to bound a runaway peer
    assert 10**8 < MAX_FRAME_BYTES < 10**9


# ----------------------------------------------------------------------
# injected transport faults (repro.faults channel.send site)
# ----------------------------------------------------------------------
def test_injected_partial_send_reassembles_identically(tmp_path):
    # a scripted "partial" fault dribbles the frame out in 3-byte
    # chunks; terminator-driven framing must parse it identically
    faults.install(
        FaultPlan(
            (
                Fault(
                    site="channel.send",
                    kind="partial",
                    role="client",
                    nbytes=3,
                ),
            )
        ),
        tmp_path / "ledger",
    )
    try:
        left_sock, right_sock = socket.socketpair()
        left = FrameChannel(left_sock, role="client")
        right = FrameChannel(right_sock, role="server")
        message = make_request(1, "snapshot", {"per_device": True})
        left.send(message)  # dribbled (fault fires once)
        left.send(make_request(2, "ping"))  # whole (fault is spent)
        assert right.receive() == message
        assert right.receive() == make_request(2, "ping")
        left.close()
        right.close()
    finally:
        faults.uninstall()


def test_injected_partial_send_interleaves_with_coalescing(tmp_path):
    # several frames sent back to back, the middle one dribbled: the
    # receiver's buffer sees coalesced *and* fragmented boundaries in
    # one stream and must split frames purely on the terminator
    faults.install(
        FaultPlan(
            (
                Fault(
                    site="channel.send",
                    kind="partial",
                    role="client",
                    after=1,
                    nbytes=5,
                ),
            )
        ),
        tmp_path / "ledger",
    )
    try:
        left_sock, right_sock = socket.socketpair()
        left = FrameChannel(left_sock, role="client")
        right = FrameChannel(right_sock, role="server")
        messages = [make_request(i, "info") for i in range(3)]
        for message in messages:
            left.send(message)
        left_sock.close()
        assert [right.receive() for _ in range(3)] == messages
        assert right.receive() is None
        right.close()
    finally:
        faults.uninstall()


def test_injected_drop_resets_the_sender(tmp_path):
    faults.install(
        FaultPlan(
            (Fault(site="channel.send", kind="drop", role="server"),)
        ),
        tmp_path / "ledger",
    )
    try:
        left_sock, right_sock = socket.socketpair()
        server = FrameChannel(left_sock, role="server")
        client = FrameChannel(right_sock, role="client")
        with pytest.raises(ConnectionResetError):
            server.send(make_request(0, "ping"))
        # role selectors keep the fault on the scripted endpoint only;
        # and the drop is one-shot, so the server works afterwards too
        client.send(make_request(1, "ping"))
        assert server.receive() == make_request(1, "ping")
        server.close()
        client.close()
    finally:
        faults.uninstall()


# ----------------------------------------------------------------------
# SCH001 coverage of the wire format
# ----------------------------------------------------------------------
PROTOCOL_SOURCE = __import__("pathlib").Path(
    __file__
).resolve().parent.parent / "src" / "repro" / "service" / "protocol.py"


def test_planted_protocol_field_drift_is_caught():
    source = PROTOCOL_SOURCE.read_text()
    planted = source + (
        "\n\ndef make_bogus(  # repro-lint: schema=RESPONSE_FIELDS\n"
        "    request_id: int,\n"
        ") -> dict:\n"
        '    return {"id": request_id, "ok": True, "result": None,\n'
        '            "error": None, "retries": 0}\n'
    )
    findings = lint_source("protocol.py", planted)
    sch = [f for f in findings if f.rule_id == "SCH001"]
    assert len(sch) == 1
    assert "retries" in sch[0].message


def test_shipped_protocol_module_is_schema_clean():
    findings = lint_source("protocol.py", PROTOCOL_SOURCE.read_text())
    assert findings == []
