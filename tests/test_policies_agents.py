"""Behavioural tests for the heuristic policy agents."""

import numpy as np
import pytest

from repro.policies import (
    ConstantAgent,
    EagerAgent,
    ExponentialAveragePredictiveAgent,
    LastActivityPredictiveAgent,
    RandomizedTimeoutAgent,
    StationaryPolicyAgent,
    TimeoutAgent,
    always_on_agent,
)
from repro.policies.base import Observation
from repro.core.policy import MarkovPolicy
from repro.sim import make_rng
from repro.util.validation import ValidationError

ACTIVE, SLEEP = 0, 1


def obs(queue=0, arrivals=0, provider=0, requester=0, t=0) -> Observation:
    return Observation(
        provider_state=provider,
        requester_state=requester,
        queue_length=queue,
        arrivals=arrivals,
        slice_index=t,
    )


class TestObservation:
    def test_pending_work_flags(self):
        assert not obs().has_pending_work
        assert obs(queue=1).has_pending_work
        assert obs(arrivals=2).has_pending_work


class TestConstantAgent:
    def test_always_same_command(self, rng):
        agent = ConstantAgent(3)
        assert agent.select_command(obs(), rng) == 3
        assert agent.select_command(obs(queue=5, arrivals=1), rng) == 3

    def test_always_on_helper(self, rng):
        agent = always_on_agent(ACTIVE)
        assert agent.select_command(obs(), rng) == ACTIVE
        assert "always-on" in agent.describe()


class TestEagerAgent:
    def test_sleeps_when_idle(self, rng):
        agent = EagerAgent(ACTIVE, SLEEP)
        assert agent.select_command(obs(), rng) == SLEEP

    def test_wakes_on_queue(self, rng):
        agent = EagerAgent(ACTIVE, SLEEP)
        assert agent.select_command(obs(queue=1), rng) == ACTIVE

    def test_wakes_on_arrival(self, rng):
        agent = EagerAgent(ACTIVE, SLEEP)
        assert agent.select_command(obs(arrivals=1), rng) == ACTIVE


class TestTimeoutAgent:
    def test_counts_idle_slices(self, rng):
        agent = TimeoutAgent(2, ACTIVE, SLEEP)
        agent.reset()
        assert agent.select_command(obs(t=0), rng) == ACTIVE  # idle 1
        assert agent.select_command(obs(t=1), rng) == ACTIVE  # idle 2
        assert agent.select_command(obs(t=2), rng) == SLEEP  # idle 3 > 2

    def test_work_resets_counter(self, rng):
        agent = TimeoutAgent(1, ACTIVE, SLEEP)
        agent.reset()
        assert agent.select_command(obs(), rng) == ACTIVE
        assert agent.select_command(obs(arrivals=1), rng) == ACTIVE  # reset
        assert agent.select_command(obs(), rng) == ACTIVE  # idle 1 again
        assert agent.select_command(obs(), rng) == SLEEP

    def test_timeout_zero_is_eager(self, rng):
        timeout0 = TimeoutAgent(0, ACTIVE, SLEEP)
        eager = EagerAgent(ACTIVE, SLEEP)
        timeout0.reset()
        for queue, arrivals in [(0, 0), (1, 0), (0, 1), (0, 0)]:
            assert timeout0.select_command(
                obs(queue=queue, arrivals=arrivals), rng
            ) == eager.select_command(obs(queue=queue, arrivals=arrivals), rng)

    def test_reset_clears_counter(self, rng):
        agent = TimeoutAgent(1, ACTIVE, SLEEP)
        agent.reset()
        agent.select_command(obs(), rng)
        agent.select_command(obs(), rng)
        agent.reset()
        assert agent.select_command(obs(), rng) == ACTIVE

    def test_rejects_negative_timeout(self):
        with pytest.raises(ValidationError):
            TimeoutAgent(-1, ACTIVE, SLEEP)


class TestRandomizedTimeoutAgent:
    def make(self):
        return RandomizedTimeoutAgent(
            timeouts=[0, 100],
            timeout_probabilities=[0.5, 0.5],
            sleep_commands=[1, 2],
            sleep_probabilities=[0.5, 0.5],
            active_command=ACTIVE,
        )

    def test_draws_once_per_idle_period(self):
        agent = self.make()
        rng = make_rng(0)
        agent.reset()
        commands = set()
        # Within a single long idle period the drawn sleep target is fixed.
        first_sleep = None
        for t in range(200):
            command = agent.select_command(obs(t=t), rng)
            if command != ACTIVE:
                commands.add(command)
                if first_sleep is None:
                    first_sleep = command
                assert command == first_sleep
        assert commands  # it eventually slept

    def test_redraws_after_busy_period(self):
        agent = self.make()
        rng = make_rng(1)
        agent.reset()
        sleeps = set()
        for _ in range(40):
            agent.select_command(obs(arrivals=1), rng)  # busy resets
            for t in range(150):
                command = agent.select_command(obs(t=t), rng)
                if command != ACTIVE:
                    sleeps.add(command)
                    break
        # Across many idle periods both targets appear.
        assert sleeps == {1, 2}

    def test_validates_distributions(self):
        with pytest.raises(ValidationError):
            RandomizedTimeoutAgent([1], [0.5], [1], [1.0], ACTIVE)


class TestPredictiveAgents:
    def test_last_activity_short_burst_sleeps(self, rng):
        agent = LastActivityPredictiveAgent(5, ACTIVE, SLEEP)
        agent.reset()
        # Short burst (2 < 5) then idle: predicted-long idle -> sleep now.
        agent.select_command(obs(arrivals=1), rng)
        agent.select_command(obs(arrivals=1), rng)
        assert agent.select_command(obs(), rng) == SLEEP

    def test_last_activity_long_burst_stays(self, rng):
        agent = LastActivityPredictiveAgent(3, ACTIVE, SLEEP)
        agent.reset()
        for _ in range(5):  # long burst
            agent.select_command(obs(arrivals=1), rng)
        assert agent.select_command(obs(), rng) == ACTIVE

    def test_exponential_average_learns_long_idles(self, rng):
        agent = ExponentialAveragePredictiveAgent(
            alpha=1.0, breakeven=10.0, watchdog=1000, active_command=ACTIVE,
            sleep_command=SLEEP,
        )
        agent.reset()
        # First idle period of 30 slices: no prediction yet -> active.
        for _ in range(30):
            assert agent.select_command(obs(), rng) == ACTIVE
        agent.select_command(obs(arrivals=1), rng)  # ends idle, learns 30
        # Next idle: prediction 30 > 10 -> sleeps immediately.
        assert agent.select_command(obs(), rng) == SLEEP

    def test_exponential_average_watchdog(self, rng):
        agent = ExponentialAveragePredictiveAgent(
            alpha=0.5, breakeven=1000.0, watchdog=3, active_command=ACTIVE,
            sleep_command=SLEEP,
        )
        agent.reset()
        for _ in range(3):
            assert agent.select_command(obs(), rng) == ACTIVE
        assert agent.select_command(obs(), rng) == SLEEP

    def test_validation(self):
        with pytest.raises(ValidationError):
            ExponentialAveragePredictiveAgent(0.0, 1.0, 1, ACTIVE, SLEEP)
        with pytest.raises(ValidationError):
            LastActivityPredictiveAgent(-1, ACTIVE, SLEEP)


class TestStationaryPolicyAgent:
    def test_deterministic_lookup(self, example_bundle, rng):
        policy = MarkovPolicy.deterministic(
            [0, 1, 0, 1, 0, 1, 0, 1], 2, ("s_on", "s_off")
        )
        agent = StationaryPolicyAgent(example_bundle.system, policy)
        # Joint index (s * R + r) * Q + q maps to the policy row.
        assert agent.select_command(obs(provider=0, requester=0, queue=0), rng) == 0
        assert agent.select_command(obs(provider=0, requester=0, queue=1), rng) == 1
        assert agent.select_command(obs(provider=1, requester=1, queue=1), rng) == 1

    def test_randomized_sampling_frequencies(self, example_bundle):
        matrix = np.tile([0.3, 0.7], (8, 1))
        policy = MarkovPolicy(matrix, ("s_on", "s_off"))
        agent = StationaryPolicyAgent(example_bundle.system, policy)
        rng = make_rng(5)
        draws = [
            agent.select_command(obs(), rng)
            for _ in range(5000)
        ]
        assert np.mean(draws) == pytest.approx(0.7, abs=0.02)

    def test_shape_mismatch_rejected(self, example_bundle):
        with pytest.raises(ValidationError):
            StationaryPolicyAgent(
                example_bundle.system, MarkovPolicy.constant(0, 4, 2)
            )
