"""Integration tests: every paper table/figure regenerates and its
shape claims hold.

Each experiment driver encodes the paper's qualitative claims as named
checks (see DESIGN.md section 4); this module runs all of them in quick
mode and asserts every check passes.  LP-only experiments are exact;
simulation-backed ones use fixed seeds.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
)

LP_ONLY = [
    "table1",
    "fig6",
    "fig8a",
    "fig12a",
    "fig12b",
    "fig13a",
    "fig14a",
    "fig14b",
    "example_a2",
]
SIMULATION_BACKED = ["fig8", "fig9a", "fig9b", "fig10", "fig13b"]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = set(LP_ONLY) | set(SIMULATION_BACKED)
        assert set(available_experiments()) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_run_experiment_returns_result(self):
        result = run_experiment("table1")
        assert isinstance(result, ExperimentResult)


@pytest.mark.parametrize("experiment_id", LP_ONLY)
def test_lp_experiment_checks_pass(experiment_id):
    result = run_experiment(experiment_id, quick=True, seed=0)
    assert result.all_checks_pass, (
        f"{experiment_id} failed checks: {result.failed_checks}\n"
        f"{result.render()}"
    )
    assert result.tables, "experiment produced no tables"
    assert result.render()


@pytest.mark.parametrize("experiment_id", SIMULATION_BACKED)
def test_simulation_experiment_checks_pass(experiment_id):
    result = run_experiment(experiment_id, quick=True, seed=0)
    assert result.all_checks_pass, (
        f"{experiment_id} failed checks: {result.failed_checks}\n"
        f"{result.render()}"
    )
    assert result.tables


class TestExperimentResult:
    def test_render_contains_checks(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            tables=["table text"],
            checks={"a": True, "b": False},
        )
        text = result.render()
        assert "a=PASS" in text
        assert "b=FAIL" in text
        assert not result.all_checks_pass
        assert result.failed_checks == ["b"]

    def test_empty_checks_pass(self):
        result = ExperimentResult(experiment_id="x", title="t")
        assert result.all_checks_pass
