"""Tests for the library extensions: policy persistence, requester
composition, and the Little's-law waiting-time metric."""

import numpy as np
import pytest

from repro.core.components import ServiceRequester, compose_requesters
from repro.core.costs import waiting_time_penalty
from repro.core.policy import MarkovPolicy
from repro.markov.chain import MarkovChain
from repro.util.validation import ValidationError
from tests.conftest import assert_stochastic


class TestPolicyPersistence:
    def test_roundtrip(self, tmp_path):
        policy = MarkovPolicy(
            [[0.4, 0.6], [1.0, 0.0], [0.25, 0.75]], ["go", "stop"]
        )
        path = tmp_path / "policy.json"
        policy.save(path)
        loaded = MarkovPolicy.load(path)
        assert loaded == policy
        assert loaded.command_names == ("go", "stop")

    def test_to_dict_is_json_serializable(self):
        import json

        policy = MarkovPolicy.deterministic([0, 1], 2, ["a", "b"])
        payload = json.loads(json.dumps(policy.to_dict()))
        rebuilt = MarkovPolicy.from_dict(payload)
        assert rebuilt == policy

    def test_from_dict_validates(self):
        with pytest.raises(ValidationError, match="payload"):
            MarkovPolicy.from_dict({"matrix": [[1.0]]})

    def test_from_dict_rejects_bad_rows(self):
        with pytest.raises(ValidationError):
            MarkovPolicy.from_dict(
                {"matrix": [[0.5, 0.6]], "command_names": ["a", "b"]}
            )

    def test_optimal_policy_roundtrip(self, example_optimizer, tmp_path):
        result = example_optimizer.minimize_power(
            penalty_bound=0.5, loss_bound=0.2
        ).require_feasible()
        path = tmp_path / "optimal.json"
        result.policy.save(path)
        loaded = MarkovPolicy.load(path)
        assert loaded == result.policy


class TestComposeRequesters:
    def make_pair(self):
        a = ServiceRequester(
            MarkovChain([[0.9, 0.1], [0.5, 0.5]], ["qa", "ba"]), [0, 1]
        )
        b = ServiceRequester(
            MarkovChain([[0.8, 0.2], [0.3, 0.7]], ["qb", "bb"]), [0, 2]
        )
        return a, b

    def test_product_structure(self):
        a, b = self.make_pair()
        merged = compose_requesters(a, b)
        assert merged.n_states == 4
        assert merged.state_names == ("qa&qb", "qa&bb", "ba&qb", "ba&bb")
        assert_stochastic(merged.chain.matrix)

    def test_arrivals_sum(self):
        a, b = self.make_pair()
        merged = compose_requesters(a, b)
        assert merged.arrivals("qa&qb") == 0
        assert merged.arrivals("ba&qb") == 1
        assert merged.arrivals("qa&bb") == 2
        assert merged.arrivals("ba&bb") == 3

    def test_kronecker_probabilities(self):
        a, b = self.make_pair()
        merged = compose_requesters(a, b)
        # P[(ba,bb) -> (qa,qb)] = P_a[ba,qa] * P_b[bb,qb] = 0.5 * 0.3.
        assert merged.chain.transition_probability(
            "ba&bb", "qa&qb"
        ) == pytest.approx(0.15)

    def test_mean_rate_adds(self):
        a, b = self.make_pair()
        merged = compose_requesters(a, b)
        assert merged.mean_arrival_rate() == pytest.approx(
            a.mean_arrival_rate() + b.mean_arrival_rate()
        )

    def test_composes_into_system(self):
        from repro.core.components import ServiceQueue
        from repro.core.system import PowerManagedSystem
        from repro.systems import example_system

        a, b = self.make_pair()
        merged = compose_requesters(a, b)
        system = PowerManagedSystem(
            example_system.build_provider(), merged, ServiceQueue(2)
        )
        assert system.n_states == 2 * 4 * 3
        for command in system.command_names:
            assert_stochastic(system.chain.matrix(command), atol=1e-8)

    def test_type_check(self):
        a, _ = self.make_pair()
        with pytest.raises(ValidationError):
            compose_requesters(a, "not a requester")


class TestWaitingTimeMetric:
    def test_scaling(self, example_bundle):
        system = example_bundle.system
        metric = waiting_time_penalty(system)
        rate = system.requester.mean_arrival_rate()
        assert np.allclose(
            metric, system.queue_length_penalty_matrix() / rate
        )

    def test_littles_law_consistency(self, example_bundle):
        """Bounding the waiting-time metric bounds queue/rate: a policy
        meeting W also meets L = W * rate."""
        from repro.core.optimizer import PolicyOptimizer

        system = example_bundle.system
        costs = example_bundle.costs
        costs_local = type(costs).standard(system)
        costs_local.add_metric("waiting", waiting_time_penalty(system))
        optimizer = PolicyOptimizer(
            system,
            costs_local,
            gamma=example_bundle.gamma,
            initial_distribution=example_bundle.initial_distribution,
        )
        max_wait = 2.0  # slices
        result = optimizer.optimize(
            "power", "min", upper_bounds={"waiting": max_wait}
        ).require_feasible()
        rate = system.requester.mean_arrival_rate()
        assert result.average("penalty") <= max_wait * rate + 1e-7

    def test_rejects_zero_rate_workload(self):
        from repro.core.components import ServiceQueue
        from repro.core.system import PowerManagedSystem
        from repro.systems import example_system

        silent = ServiceRequester(MarkovChain(np.eye(2)), [0, 0])
        system = PowerManagedSystem(
            example_system.build_provider(), silent, ServiceQueue(1)
        )
        with pytest.raises(ValidationError, match="positive arrival rate"):
            waiting_time_penalty(system)
