"""CLI and JSON-contract tests for ``repro-dpm lint``.

The JSON shape is consumed by CI (artifact upload) and by
``benchmarks/bench_lint.py``; these tests pin it so a field rename is
an explicit, versioned decision rather than an accident.
"""

from __future__ import annotations

import json

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.driver import JSON_SCHEMA_VERSION
from repro.tool.cli import main as tool_main

CLEAN = "def double(x):\n    return 2 * x\n"
DIRTY = "import numpy as np\n\nnp.random.seed(7)\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "clean.py").write_text(CLEAN)
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "__init__.py").write_text("")
    (sub / "dirty.py").write_text(DIRTY)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert lint_main([str(tmp_path)]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        assert lint_main([str(tree)]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out
        assert "dirty.py:3" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nowhere")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_select_subsets_rules(self, tree):
        # RNG001 excluded -> the only finding disappears
        assert lint_main([str(tree), "--select", "HSH001,HSH002"]) == 0

    def test_unknown_rule_id_exits_two(self, tree, capsys):
        assert lint_main([str(tree), "--select", "BOGUS1"]) == 2
        assert "BOGUS1" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RNG001", "KRN001", "HSH001", "FLT001", "SCH001"):
            assert rule_id in out


class TestJsonOutput:
    def test_report_schema_is_pinned(self, tree, capsys):
        assert lint_main([str(tree), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "version",
            "files_checked",
            "clean",
            "counts",
            "findings",
        }
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 3
        assert payload["clean"] is False
        assert payload["counts"] == {"RNG001": 1}

    def test_finding_schema_is_pinned(self, tree, capsys):
        lint_main([str(tree), "--json"])
        payload = json.loads(capsys.readouterr().out)
        (finding,) = payload["findings"]
        assert set(finding) == {
            "path",
            "line",
            "col",
            "rule",
            "severity",
            "message",
            "fix_hint",
        }
        assert finding["rule"] == "RNG001"
        assert finding["line"] == 3
        assert finding["severity"] == "error"
        assert finding["path"].endswith("dirty.py")

    def test_clean_json_report(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert lint_main([str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["counts"] == {}


class TestToolIntegration:
    def test_repro_dpm_lint_subcommand(self, tree, capsys):
        assert tool_main(["lint", str(tree)]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_repro_dpm_lint_json(self, tree, capsys):
        assert tool_main(["lint", str(tree), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION

    def test_module_entrypoint_importable(self):
        import repro.lint.__main__  # noqa: F401


class TestReportObject:
    def test_stale_suppression_fails_the_gate(self):
        # SUP001 is error severity: a stale directive is a blind spot,
        # so it must flip the report to not-clean on its own
        findings = lint_source(
            "w.py",
            "x = 1  # repro-lint: disable=RNG001\n",
        )
        assert [(f.rule_id, f.severity) for f in findings] == [
            ("SUP001", "error")
        ]

    def test_lint_paths_accepts_single_file(self, tree):
        report = lint_paths([tree / "pkg" / "dirty.py"])
        assert report.files_checked == 1
        assert not report.clean
