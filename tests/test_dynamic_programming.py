"""Tests for value iteration and policy iteration."""

import numpy as np
import pytest

from repro.core.costs import PENALTY, POWER
from repro.core.dynamic_programming import policy_iteration, q_values, value_iteration
from repro.core.policy import evaluate_policy
from repro.systems import example_system
from repro.util.validation import ValidationError

GAMMA = 0.95


@pytest.fixture(scope="module")
def bundle():
    return example_system.build()


class TestValueIteration:
    def test_converges(self, bundle):
        dp = value_iteration(bundle.system, bundle.costs.metric(POWER), GAMMA)
        assert dp.converged
        assert dp.values.shape == (8,)
        assert np.all(dp.values >= 0)

    def test_policy_is_greedy_wrt_values(self, bundle):
        costs = bundle.costs.metric(POWER)
        dp = value_iteration(bundle.system, costs, GAMMA, tol=1e-12)
        q = q_values(bundle.system, costs, GAMMA, dp.values)
        greedy = q.argmin(axis=1)
        # On ties any greedy action is fine; check value-equality instead.
        chosen = dp.policy.as_deterministic()
        assert np.allclose(
            q[np.arange(8), chosen], q[np.arange(8), greedy], atol=1e-8
        )

    def test_value_bounds(self, bundle):
        # 0 <= v* <= max cost / (1 - gamma).
        costs = bundle.costs.metric(POWER)
        dp = value_iteration(bundle.system, costs, GAMMA)
        assert np.all(dp.values <= costs.max() / (1 - GAMMA) + 1e-9)

    def test_iteration_limit_reported(self, bundle):
        dp = value_iteration(
            bundle.system, bundle.costs.metric(POWER), 0.999, max_iterations=3
        )
        assert not dp.converged
        assert dp.iterations == 3

    def test_rejects_bad_gamma(self, bundle):
        with pytest.raises(ValidationError):
            value_iteration(bundle.system, bundle.costs.metric(POWER), 1.0)

    def test_rejects_bad_cost_shape(self, bundle):
        with pytest.raises(ValidationError):
            value_iteration(bundle.system, np.zeros((3, 2)), GAMMA)


class TestPolicyIteration:
    def test_converges(self, bundle):
        dp = policy_iteration(bundle.system, bundle.costs.metric(POWER), GAMMA)
        assert dp.converged
        assert dp.policy.is_deterministic

    def test_matches_value_iteration(self, bundle):
        for metric in (POWER, PENALTY):
            costs = bundle.costs.metric(metric)
            vi = value_iteration(bundle.system, costs, GAMMA, tol=1e-12)
            pi = policy_iteration(bundle.system, costs, GAMMA)
            assert np.allclose(vi.values, pi.values, atol=1e-7)

    def test_policy_evaluation_consistency(self, bundle):
        """The DP policy's closed-form evaluation equals its value vector."""
        costs = bundle.costs.metric(POWER)
        dp = policy_iteration(bundle.system, costs, GAMMA)
        ev = evaluate_policy(
            bundle.system,
            bundle.costs,
            dp.policy,
            GAMMA,
            bundle.system.point_distribution("on", "0", 0),
        )
        start = bundle.system.state_index("on", "0", 0)
        assert ev.totals[POWER] == pytest.approx(dp.values[start], rel=1e-9)

    def test_on_larger_system(self, disk_bundle):
        costs = disk_bundle.costs.metric(POWER)
        vi = value_iteration(disk_bundle.system, costs, 0.99, tol=1e-10)
        pi = policy_iteration(disk_bundle.system, costs, 0.99)
        assert vi.converged and pi.converged
        assert np.allclose(vi.values, pi.values, atol=1e-5)


class TestQValues:
    def test_shape(self, bundle):
        q = q_values(bundle.system, bundle.costs.metric(POWER), GAMMA, np.zeros(8))
        assert q.shape == (8, 2)

    def test_zero_values_give_immediate_cost(self, bundle):
        costs = bundle.costs.metric(POWER)
        q = q_values(bundle.system, costs, GAMMA, np.zeros(8))
        assert np.allclose(q, costs)

    def test_rejects_bad_value_shape(self, bundle):
        with pytest.raises(ValidationError):
            q_values(bundle.system, bundle.costs.metric(POWER), GAMMA, np.zeros(3))
