"""Tests for model validation: chi-square, stationarity, CIs, reports."""

import json

import numpy as np
import pytest

from repro.estimation.report import (
    chi_square_transitions,
    split_half_stationarity,
    transition_confidence_intervals,
)
from repro.estimation.workload import fit_workload
from repro.sim import make_rng
from repro.traces.extractor import SRExtractor
from repro.traces.synthetic import merge_traces, mmpp2_trace
from repro.traces.trace import Trace
from repro.util.validation import ValidationError


def _mmpp_counts(seed: int, n: int = 8000, p_ii=0.95, p_bb=0.85):
    trace = mmpp2_trace(p_ii, p_bb, n, 1.0, make_rng(seed))
    return trace.discretize(1.0)


class TestChiSquare:
    def test_held_out_consistency_passes(self):
        counts = _mmpp_counts(0)
        model = SRExtractor(memory=1).fit(counts[:4000])
        result = chi_square_transitions(model, counts[4000:])
        assert result.passed
        assert result.dof >= 1
        assert "consistent" in result.describe()

    def test_wrong_model_rejected(self):
        counts = _mmpp_counts(1)
        # A deliberately wrong chain: near-independent arrivals.
        wrong = SRExtractor(memory=1).fit(
            (make_rng(2).random(8000) < 0.25).astype(int)
        )
        result = chi_square_transitions(wrong, counts)
        assert not result.passed
        assert "REJECTED" in result.describe()

    def test_tiny_sample_degenerates_to_pass(self):
        model = SRExtractor(memory=1).fit([0, 1, 0, 1, 0])
        result = chi_square_transitions(model, [0, 1, 0])
        assert result.dof == 0 and result.passed

    def test_invalid_alpha_rejected(self):
        model = SRExtractor(memory=1).fit([0, 1] * 10)
        with pytest.raises(ValidationError):
            chi_square_transitions(model, [0, 1] * 10, alpha=2.0)


class TestStationarity:
    def test_stationary_stream_passes(self):
        result = split_half_stationarity(_mmpp_counts(3, n=10_000))
        assert result.stationary
        assert result.n_compared > 0

    def test_regime_switch_detected(self):
        # The paper's Example 7.1 construction: two merged traces with
        # completely different statistics.
        calm = mmpp2_trace(0.995, 0.4, 6000, 1.0, make_rng(4))
        storm = mmpp2_trace(0.5, 0.97, 6000, 1.0, make_rng(5))
        counts = merge_traces([calm, storm]).discretize(1.0)
        result = split_half_stationarity(counts)
        assert not result.stationary
        assert "NONSTATIONARY" in result.describe()

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            split_half_stationarity([0, 1, 0])


class TestConfidenceIntervals:
    def test_half_widths_shrink_with_data(self):
        small = SRExtractor(memory=1).fit(_mmpp_counts(6, n=500))
        large = SRExtractor(memory=1).fit(_mmpp_counts(6, n=20_000))
        small_w = transition_confidence_intervals(small)
        large_w = transition_confidence_intervals(large)
        assert large_w.max() < small_w.max()

    def test_unobserved_rows_have_unit_width(self):
        model = SRExtractor(memory=2).fit([0] * 30)
        widths = transition_confidence_intervals(model)
        unobserved = model.state_counts == 0
        assert np.all(widths[unobserved] == 1.0)

    def test_invalid_confidence_rejected(self):
        model = SRExtractor(memory=1).fit([0, 1] * 10)
        with pytest.raises(ValidationError):
            transition_confidence_intervals(model, confidence=1.5)


class TestFitWorkload:
    def test_full_report_on_clean_stream(self):
        fit = fit_workload(_mmpp_counts(7, n=9000), memories=(1, 2))
        report = fit.report
        assert report.valid
        assert report.model.memory == 1
        assert report.mmpp2 is not None and report.poisson is not None
        assert 0 < report.max_ci_half_width < 0.2
        assert "arrival-chain selection" in fit.summary()

    def test_report_round_trips_through_json(self):
        fit = fit_workload(_mmpp_counts(8, n=4000))
        document = json.loads(json.dumps(fit.report.to_dict()))
        assert document["valid"] is True
        assert document["mmpp2"]["type"] == "mmpp2"
        assert document["selection"]["selected"]["memory"] == fit.model.memory

    def test_accepts_trace_with_resolution(self):
        trace = mmpp2_trace(0.9, 0.8, 2000, 0.5, make_rng(9))
        fit = fit_workload(trace, resolution=0.5)
        assert fit.resolution == 0.5
        assert fit.counts.size == 2000

    def test_trace_without_resolution_rejected(self):
        with pytest.raises(ValidationError):
            fit_workload(Trace([1.0, 2.0]))

    def test_nonstationary_stream_flagged(self):
        calm = mmpp2_trace(0.995, 0.4, 6000, 1.0, make_rng(10))
        storm = mmpp2_trace(0.5, 0.97, 6000, 1.0, make_rng(11))
        fit = fit_workload(merge_traces([calm, storm]).discretize(1.0))
        assert not fit.report.stationarity.stationary
        assert not fit.report.valid

    def test_silent_stream_skips_mmpp(self):
        fit = fit_workload([0] * 200)
        assert fit.report.mmpp2 is None
        assert fit.report.poisson.rate_per_slice == 0.0
        assert any("silent" in w for w in fit.report.warnings)

    def test_generator_selection(self):
        fit = fit_workload(_mmpp_counts(12, n=6000))
        assert fit.stream_spec("mmpp2")["type"] == "mmpp2"
        assert fit.stream_spec("poisson")["type"] == "poisson"
        assert fit.stream_spec("auto")["type"] == "mmpp2"  # lower BIC
        with pytest.raises(ValidationError):
            fit.stream_spec("fourier")

    def test_too_short_stream_rejected(self):
        with pytest.raises(ValidationError):
            fit_workload([0, 1, 0])

    def test_minimum_length_stream_with_high_selected_memory(self):
        # 8 slices passes the front-door guard even when BIC picks a
        # memory whose split-half check needs more data; the check
        # falls back to memory 1 instead of crashing.
        fit = fit_workload([0, 1, 1, 0, 0, 1, 1, 0])
        assert fit.report.stationarity is not None
        assert any("split-half" in w for w in fit.report.warnings)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValidationError):
            fit_workload([0, -1] * 10)
