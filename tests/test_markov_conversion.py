"""Tests for exact Markov forms of memoryless heuristics."""

import numpy as np
import pytest

from repro.core.costs import PENALTY, POWER
from repro.core.policy import evaluate_policy
from repro.policies import (
    EagerAgent,
    StationaryPolicyAgent,
    constant_markov_policy,
    eager_markov_policy,
)
from repro.sim import make_rng, simulate


class TestConstantMarkovPolicy:
    def test_matches_constant_agent(self, example_bundle):
        policy = constant_markov_policy(example_bundle.system, "s_off")
        assert policy.is_deterministic
        assert np.all(policy.as_deterministic() == 1)


class TestEagerMarkovPolicy:
    def test_structure(self, example_bundle):
        system = example_bundle.system
        policy = eager_markov_policy(system, "s_on", "s_off")
        on = system.chain.command_index("s_on")
        off = system.chain.command_index("s_off")
        # Pending work (queue > 0 or SR issuing) -> active command.
        assert policy.as_deterministic()[system.state_index("on", "1", 0)] == on
        assert policy.as_deterministic()[system.state_index("on", "0", 1)] == on
        assert policy.as_deterministic()[system.state_index("off", "1", 1)] == on
        # Fully idle -> sleep command.
        assert policy.as_deterministic()[system.state_index("on", "0", 0)] == off
        assert policy.as_deterministic()[system.state_index("off", "0", 0)] == off

    def test_exact_equals_simulated_eager(self, example_bundle):
        """The Markov form and the stateful agent are the same policy.

        The agent observes ``arrivals`` = z of the current SR state (the
        engine's bookkeeping makes these coincide), so simulating the
        eager agent and the Markov-policy agent with the same seed gives
        identical trajectories.
        """
        system, costs = example_bundle.system, example_bundle.costs
        markov = eager_markov_policy(system, "s_on", "s_off")
        sim_agent = simulate(
            system,
            costs,
            EagerAgent(0, 1),
            20_000,
            make_rng(77),
            initial_state=("on", "0", 0),
        )
        sim_markov = simulate(
            system,
            costs,
            StationaryPolicyAgent(system, markov),
            20_000,
            make_rng(77),
            initial_state=("on", "0", 0),
        )
        assert sim_agent.averages == sim_markov.averages
        assert sim_agent.final_state == sim_markov.final_state

    def test_exact_evaluation_close_to_simulation(self, example_bundle):
        system, costs = example_bundle.system, example_bundle.costs
        markov = eager_markov_policy(system, "s_on", "s_off")
        analytic = evaluate_policy(
            system, costs, markov, example_bundle.gamma,
            example_bundle.initial_distribution,
        )
        sim = simulate(
            system,
            costs,
            EagerAgent(0, 1),
            150_000,
            make_rng(3),
            initial_state=("on", "0", 0),
        )
        assert sim.averages[POWER] == pytest.approx(
            analytic.averages[POWER], rel=0.05, abs=0.02
        )
        assert sim.averages[PENALTY] == pytest.approx(
            analytic.averages[PENALTY], rel=0.08, abs=0.03
        )

    def test_disk_eager_policies(self, disk_bundle):
        """Eager variants exist for every disk sleep state and differ."""
        system = disk_bundle.system
        active = disk_bundle.metadata["active_command"]
        evaluations = {}
        for state, command in disk_bundle.metadata["sleep_commands"].items():
            policy = eager_markov_policy(system, active, command)
            ev = evaluate_policy(
                system,
                disk_bundle.costs,
                policy,
                disk_bundle.gamma,
                disk_bundle.initial_distribution,
            )
            evaluations[state] = ev.averages[POWER]
        # Deeper eager targets risk longer wakes; all four are distinct.
        assert len(set(round(v, 6) for v in evaluations.values())) == 4
