"""Unit tests for :class:`repro.markov.controlled.ControlledMarkovChain`."""

import numpy as np
import pytest

from repro.markov.controlled import ControlledMarkovChain
from repro.util.validation import ValidationError
from tests.conftest import assert_stochastic

# Paper Example 3.1 service provider.
SP_MATRICES = {
    "s_on": [[1.0, 0.0], [0.1, 0.9]],
    "s_off": [[0.2, 0.8], [0.0, 1.0]],
}


def example_chain() -> ControlledMarkovChain:
    return ControlledMarkovChain(SP_MATRICES, state_names=["on", "off"])


class TestConstruction:
    def test_from_mapping(self):
        chain = example_chain()
        assert chain.n_states == 2
        assert chain.n_commands == 2
        assert chain.command_names == ("s_on", "s_off")

    def test_from_sequence(self):
        chain = ControlledMarkovChain([np.eye(2), np.ones((2, 2)) / 2])
        assert chain.command_names == ("0", "1")

    def test_explicit_command_order(self):
        chain = ControlledMarkovChain(
            SP_MATRICES, state_names=["on", "off"], command_names=["s_off", "s_on"]
        )
        assert chain.command_names == ("s_off", "s_on")
        assert chain.matrix("s_off")[0, 1] == 0.8

    def test_rejects_mismatched_command_names(self):
        with pytest.raises(ValidationError, match="command_names"):
            ControlledMarkovChain(SP_MATRICES, command_names=["a", "b"])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="at least one"):
            ControlledMarkovChain({})

    def test_rejects_inconsistent_dimensions(self):
        with pytest.raises(ValidationError, match="states"):
            ControlledMarkovChain({"a": np.eye(2), "b": np.eye(3)})

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValidationError):
            ControlledMarkovChain({"a": [[0.5, 0.4], [0.0, 1.0]]})

    def test_rejects_duplicate_commands(self):
        with pytest.raises(ValidationError, match="unique"):
            ControlledMarkovChain([np.eye(2), np.eye(2)], command_names=["x", "x"])


class TestAccessors:
    def test_matrix_lookup(self):
        chain = example_chain()
        assert chain.matrix("s_on")[1, 0] == 0.1

    def test_matrix_by_index(self):
        chain = example_chain()
        assert np.allclose(chain.matrix(1), SP_MATRICES["s_off"])

    def test_transition_probability(self):
        chain = example_chain()
        assert chain.transition_probability("off", "on", "s_on") == 0.1
        assert chain.transition_probability("on", "off", "s_off") == 0.8

    def test_unknown_command_raises(self):
        with pytest.raises(KeyError, match="unknown command"):
            example_chain().matrix("nope")

    def test_out_of_range_index_raises(self):
        with pytest.raises(KeyError):
            example_chain().command_index(5)

    def test_tensor_shape_and_isolation(self):
        chain = example_chain()
        tensor = chain.tensor
        assert tensor.shape == (2, 2, 2)
        tensor[0, 0, 0] = 0.0
        assert chain.matrix("s_on")[0, 0] == 1.0


class TestDecisions:
    def test_decision_matrix_is_convex_combination(self):
        chain = example_chain()
        mixed = chain.decision_matrix([0.8, 0.2])
        expected = 0.8 * np.array(SP_MATRICES["s_on"]) + 0.2 * np.array(
            SP_MATRICES["s_off"]
        )
        assert np.allclose(mixed, expected)
        assert_stochastic(mixed)

    def test_decision_rejects_bad_distribution(self):
        with pytest.raises(ValidationError):
            example_chain().decision_matrix([0.5, 0.6])

    def test_policy_matrix_per_state_mixing(self):
        chain = example_chain()
        policy = np.array([[1.0, 0.0], [0.0, 1.0]])  # on->s_on, off->s_off
        induced = chain.policy_matrix(policy)
        assert np.allclose(induced[0], SP_MATRICES["s_on"][0])
        assert np.allclose(induced[1], SP_MATRICES["s_off"][1])
        assert_stochastic(induced)

    def test_policy_matrix_randomized(self):
        chain = example_chain()
        policy = np.array([[0.5, 0.5], [0.5, 0.5]])
        induced = chain.policy_matrix(policy)
        expected = 0.5 * chain.matrix("s_on") + 0.5 * chain.matrix("s_off")
        assert np.allclose(induced, expected)

    def test_policy_matrix_shape_check(self):
        with pytest.raises(ValidationError, match="shape"):
            example_chain().policy_matrix(np.ones((3, 2)) / 2)

    def test_induced_chain_roundtrip(self):
        chain = example_chain()
        induced = chain.induced_chain(np.array([[1.0, 0.0], [1.0, 0.0]]))
        assert induced.state_names == ("on", "off")
        assert np.allclose(induced.matrix, SP_MATRICES["s_on"])
