"""Tests for MLE arrival-chain fitting and BIC structure selection."""

import numpy as np
import pytest

from repro.estimation.chain_fit import (
    ArrivalChainEstimator,
    fit_arrival_chain,
    select_arrival_chain,
)
from repro.sim import make_rng
from repro.traces.synthetic import mmpp2_trace, periodic_burst_trace
from repro.util.validation import ValidationError


class TestChainFit:
    def test_matches_extractor_probabilities(self):
        stream = [0, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1]
        fit = fit_arrival_chain(stream, memory=1, smoothing=0.0)
        assert fit.model.matrix[0, 1] == pytest.approx(3.0 / 8.0)
        assert fit.n_observations == len(stream) - 1

    def test_parameter_count_charges_observed_sources_only(self):
        # A stream that never leaves level 0 observes one source state.
        fit = fit_arrival_chain([0] * 50, memory=2, smoothing=0.0)
        assert fit.n_parameters == 1

    def test_bic_penalizes_parameters(self):
        rng = make_rng(3)
        stream = (rng.random(2000) < 0.25).astype(int)
        small = fit_arrival_chain(stream, memory=1)
        large = fit_arrival_chain(stream, memory=3)
        # On memoryless data the bigger model cannot buy back its
        # parameter penalty.
        assert small.bic < large.bic

    def test_aic_and_bic_finite(self):
        fit = fit_arrival_chain([0, 1, 0, 1, 1, 0, 0, 1], memory=1)
        assert np.isfinite(fit.bic) and np.isfinite(fit.aic)
        assert fit.describe().startswith("chain(memory=1")


class TestSelection:
    def test_selects_memory_one_for_markov_stream(self):
        trace = mmpp2_trace(0.95, 0.85, 8000, 1.0, make_rng(0))
        selection = select_arrival_chain(
            trace.discretize(1.0), memories=(1, 2, 3)
        )
        assert selection.best.memory == 1

    def test_selects_higher_memory_for_periodic_stream(self):
        # A strict burst-3 / gap-3 pattern is not 1-memory Markov: the
        # successor of "1" depends on how deep into the burst we are.
        trace = periodic_burst_trace(3, 3, 3000, 1.0)
        selection = select_arrival_chain(
            trace.discretize(1.0), memories=(1, 2, 3)
        )
        assert selection.best.memory > 1

    def test_skips_oversized_candidates(self):
        stream = [0, 1] * 50
        selection = select_arrival_chain(
            stream, memories=(1, 6), max_states=16
        )
        assert all(fit.model.n_states <= 16 for fit in selection.candidates)

    def test_skips_too_short_candidates(self):
        selection = select_arrival_chain([0, 1, 0, 1], memories=(1, 40))
        assert {fit.memory for fit in selection.candidates} == {1}

    def test_no_candidates_raises(self):
        with pytest.raises(ValidationError):
            select_arrival_chain([0, 1], memories=(30,))

    def test_invalid_criterion_rejected(self):
        with pytest.raises(ValidationError):
            select_arrival_chain([0, 1] * 20, criterion="hic")

    def test_table_and_dict(self):
        selection = select_arrival_chain([0, 1] * 100, memories=(1, 2))
        assert "arrival-chain selection" in selection.table()
        document = selection.to_dict()
        assert document["selected"]["memory"] == selection.best.memory
        assert len(document["candidates"]) == len(selection.candidates)


class TestRoundTripRecovery:
    """Acceptance: fitting a sampled trace recovers the SR parameters."""

    def test_recovers_sr_chain_parameters(self):
        p_stay_idle, p_stay_busy = 0.95, 0.85
        trace = mmpp2_trace(p_stay_idle, p_stay_busy, 30_000, 1.0, make_rng(7))
        selection = select_arrival_chain(
            trace.discretize(1.0), memories=(1, 2, 3), smoothing=0.0
        )
        assert selection.best.memory == 1
        matrix = selection.best.model.matrix
        assert matrix[0, 0] == pytest.approx(p_stay_idle, abs=0.02)
        assert matrix[1, 1] == pytest.approx(p_stay_busy, abs=0.02)

    def test_requester_round_trip_through_fit(self):
        """Simulating a requester, then fitting, recovers its matrix."""
        rng = make_rng(11)
        true = np.array([[0.9, 0.1], [0.3, 0.7]])
        state = 0
        counts = []
        for _ in range(40_000):
            state = int(rng.choice(2, p=true[state]))
            counts.append(state)
        fitted = fit_arrival_chain(counts, memory=1, smoothing=0.0)
        assert np.abs(fitted.model.matrix - true).max() < 0.02


class TestArrivalChainEstimator:
    def test_fit_returns_best_model(self):
        estimator = ArrivalChainEstimator(memories=(1, 2))
        model = estimator.fit([0, 1] * 200)
        assert estimator.last_selection is not None
        assert estimator.last_selection.best.model is model

    def test_is_picklable(self):
        import pickle

        estimator = ArrivalChainEstimator(memories=(1, 2))
        estimator.fit([0, 1] * 50)
        clone = pickle.loads(pickle.dumps(estimator))
        assert clone.memories == (1, 2)
        assert clone.last_selection.best.memory == (
            estimator.last_selection.best.memory
        )

    def test_invalid_criterion_rejected(self):
        with pytest.raises(ValidationError):
            ArrivalChainEstimator(criterion="nope")

    def test_describe(self):
        assert "chain-estimator" in ArrivalChainEstimator().describe()
