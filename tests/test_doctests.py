"""Run the docstring examples of the public modules as tests.

Every public class carries a worked example (usually one of the paper's
own numeric examples); this module keeps them honest without enabling
``--doctest-modules`` globally.
"""

import doctest

import pytest

import repro.core.average_cost
import repro.core.components
import repro.core.costs
import repro.core.pareto_sweep
import repro.core.policy
import repro.estimation.chain_fit
import repro.estimation.mmpp_fit
import repro.estimation.provider_fit
import repro.estimation.report
import repro.estimation.scenario
import repro.estimation.workload
import repro.lp.problem
import repro.markov.chain
import repro.markov.controlled
import repro.runtime.controller
import repro.runtime.policy_cache
import repro.traces.extractor
import repro.traces.trace

MODULES = [
    repro.markov.chain,
    repro.markov.controlled,
    repro.lp.problem,
    repro.core.components,
    repro.core.costs,
    repro.core.policy,
    repro.core.average_cost,
    repro.core.pareto_sweep,
    repro.traces.trace,
    repro.traces.extractor,
    repro.runtime.policy_cache,
    repro.runtime.controller,
    repro.estimation.chain_fit,
    repro.estimation.mmpp_fit,
    repro.estimation.provider_fit,
    repro.estimation.report,
    repro.estimation.scenario,
    repro.estimation.workload,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
