"""Unit and property tests for :class:`repro.markov.chain.MarkovChain`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.chain import MarkovChain
from repro.util.validation import ValidationError
from tests.conftest import assert_distribution

BURSTY = [[0.95, 0.05], [0.15, 0.85]]  # paper Example 3.2


def random_stochastic(rows: int, rng: np.random.Generator) -> np.ndarray:
    raw = rng.random((rows, rows)) + 1e-3
    return raw / raw.sum(axis=1, keepdims=True)


class TestConstruction:
    def test_basic(self):
        chain = MarkovChain(BURSTY, ["0", "1"])
        assert chain.n_states == 2
        assert chain.state_names == ("0", "1")

    def test_default_names(self):
        chain = MarkovChain(np.eye(3))
        assert chain.state_names == ("0", "1", "2")

    def test_rejects_bad_matrix(self):
        with pytest.raises(ValidationError):
            MarkovChain([[0.5, 0.4], [0.5, 0.5]])

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValidationError, match="state names"):
            MarkovChain(BURSTY, ["a"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValidationError, match="unique"):
            MarkovChain(BURSTY, ["x", "x"])

    def test_matrix_copy_is_isolated(self):
        chain = MarkovChain(BURSTY)
        m = chain.matrix
        m[0, 0] = 0.0
        assert chain.matrix[0, 0] == 0.95

    def test_equality(self):
        assert MarkovChain(BURSTY, ["0", "1"]) == MarkovChain(BURSTY, ["0", "1"])
        assert MarkovChain(BURSTY) != MarkovChain(np.eye(2))


class TestAccessors:
    def test_state_index(self):
        chain = MarkovChain(BURSTY, ["idle", "busy"])
        assert chain.state_index("busy") == 1

    def test_unknown_state_raises(self):
        chain = MarkovChain(BURSTY)
        with pytest.raises(KeyError, match="unknown state"):
            chain.state_index("nope")

    def test_transition_probability_by_name(self):
        chain = MarkovChain(BURSTY, ["idle", "busy"])
        assert chain.transition_probability("idle", "busy") == 0.05

    def test_transition_probability_by_index(self):
        chain = MarkovChain(BURSTY)
        assert chain.transition_probability(1, 1) == 0.85


class TestDistributionEvolution:
    def test_step(self):
        chain = MarkovChain(BURSTY)
        p1 = chain.step_distribution([1.0, 0.0])
        assert np.allclose(p1, [0.95, 0.05])

    def test_step_rejects_wrong_size(self):
        chain = MarkovChain(BURSTY)
        with pytest.raises(ValidationError, match="entries"):
            chain.step_distribution([1.0, 0.0, 0.0])

    def test_distribution_at_zero_is_identity(self):
        chain = MarkovChain(BURSTY)
        assert np.allclose(chain.distribution_at([0.3, 0.7], 0), [0.3, 0.7])

    def test_distribution_at_matches_matrix_power(self):
        chain = MarkovChain(BURSTY)
        p0 = np.array([1.0, 0.0])
        direct = p0 @ np.linalg.matrix_power(np.array(BURSTY), 7)
        assert np.allclose(chain.distribution_at(p0, 7), direct)

    def test_negative_time_raises(self):
        chain = MarkovChain(BURSTY)
        with pytest.raises(ValidationError):
            chain.distribution_at([1.0, 0.0], -1)


class TestStationary:
    def test_bursty_example(self):
        # pi_1 = p01 / (p01 + p10) = 0.05 / 0.20 = 0.25
        chain = MarkovChain(BURSTY)
        pi = chain.stationary_distribution()
        assert np.allclose(pi, [0.75, 0.25], atol=1e-10)

    def test_fixed_point(self):
        rng = np.random.default_rng(5)
        matrix = random_stochastic(5, rng)
        chain = MarkovChain(matrix)
        pi = chain.stationary_distribution()
        assert np.allclose(pi @ matrix, pi, atol=1e-9)
        assert_distribution(pi)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=10_000))
    def test_stationary_is_distribution_property(self, n, seed):
        rng = np.random.default_rng(seed)
        chain = MarkovChain(random_stochastic(n, rng))
        pi = chain.stationary_distribution()
        assert_distribution(pi, atol=1e-8)
        assert np.allclose(pi @ chain.matrix, pi, atol=1e-7)


class TestSampling:
    def test_path_length(self, rng):
        chain = MarkovChain(BURSTY)
        path = chain.sample_path(100, rng, initial_state=0)
        assert path.shape == (101,)
        assert path[0] == 0

    def test_path_respects_support(self, rng):
        # From state 0 of the identity chain you can never leave.
        chain = MarkovChain(np.eye(2))
        path = chain.sample_path(50, rng, initial_state=0)
        assert np.all(path == 0)

    def test_initial_state_by_name(self, rng):
        chain = MarkovChain(BURSTY, ["idle", "busy"])
        path = chain.sample_path(10, rng, initial_state="busy")
        assert path[0] == 1

    def test_empirical_frequencies_converge(self, rng):
        chain = MarkovChain(BURSTY)
        path = chain.sample_path(60_000, rng, initial_state=0)
        busy_fraction = float(np.mean(path == 1))
        assert abs(busy_fraction - 0.25) < 0.02

    def test_out_of_range_initial_raises(self, rng):
        chain = MarkovChain(BURSTY)
        with pytest.raises(ValidationError):
            chain.sample_path(5, rng, initial_state=7)
