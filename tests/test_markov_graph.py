"""Tests for transition-diagram export (paper Figs. 2-4, 8a)."""

import networkx as nx
import pytest

from repro.markov.chain import MarkovChain
from repro.markov.graph import (
    chain_graph,
    controlled_graph,
    edge_table,
    reachable_from,
    to_dot,
)
from repro.systems import example_system
from repro.util.validation import ValidationError


@pytest.fixture(scope="module")
def sp_chain():
    return example_system.build_provider().chain


class TestChainGraph:
    def test_nodes_and_edges(self):
        graph = chain_graph(MarkovChain([[0.95, 0.05], [0.15, 0.85]], ["0", "1"]))
        assert set(graph.nodes) == {"0", "1"}
        assert graph.edges["0", "1"]["probability"] == 0.05
        assert graph.number_of_edges() == 4  # two self-loops included

    def test_zero_edges_absent(self):
        graph = chain_graph(MarkovChain([[1.0, 0.0], [0.0, 1.0]]))
        assert graph.number_of_edges() == 2  # only self-loops


class TestControlledGraph:
    def test_per_command_view(self, sp_chain):
        graph = controlled_graph(sp_chain, "s_on")
        assert graph.edges["off", "on"]["probability"] == pytest.approx(0.1)
        assert ("on", "off") not in graph.edges

    def test_any_command_view_labels(self, sp_chain):
        """Paper Fig. 2's convention: one edge, one label per command."""
        graph = controlled_graph(sp_chain)
        labels = graph.edges["on", "off"]["probabilities"]
        assert labels == {"s_off": pytest.approx(0.8)}
        on_self = graph.edges["on", "on"]["probabilities"]
        assert set(on_self) == {"s_on", "s_off"}

    def test_edge_table_focus(self, sp_chain):
        table = edge_table(sp_chain, states=["on"])
        assert "off" in table
        assert "s_off: 0.8" in table

    def test_edge_table_unknown_state(self, sp_chain):
        with pytest.raises(ValidationError, match="unknown states"):
            edge_table(sp_chain, states=["nope"])

    def test_dot_output_parses_structurally(self, sp_chain):
        dot = to_dot(sp_chain)
        assert dot.startswith("digraph")
        assert '"off" -> "on"' in dot
        # Merged-command view: on/on, on/off, off/on, off/off.
        assert dot.count("->") == 4

    def test_reachability(self, sp_chain):
        assert reachable_from(sp_chain, "off", "s_on") == {"off", "on"}
        # Holding s_off, the SP can never return to on.
        assert reachable_from(sp_chain, "off", "s_off") == {"off"}


class TestDiskGraphInvariants:
    def test_disk_transient_chains(self, disk_bundle):
        chain = disk_bundle.system.provider.chain
        # Under go_active everything reaches active.
        for state in chain.state_names:
            assert "active" in reachable_from(chain, state, "go_active")

    def test_disk_sleep_absorbing_under_own_command(self, disk_bundle):
        chain = disk_bundle.system.provider.chain
        assert reachable_from(chain, "sleep", "go_sleep") == {"sleep"}

    def test_disk_graph_is_weakly_connected(self, disk_bundle):
        graph = controlled_graph(disk_bundle.system.provider.chain)
        assert nx.is_weakly_connected(graph)
