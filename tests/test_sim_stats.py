"""Tests for simulation statistics and RNG management."""

import numpy as np
import pytest

from repro.sim import SampleStats, confidence_interval, make_rng, spawn_rngs


class TestSampleStats:
    def test_basic_moments(self):
        stats = SampleStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert stats.stderr == pytest.approx(stats.std / 2.0)

    def test_single_sample(self):
        stats = SampleStats.from_samples([7.0])
        assert stats.std == 0.0
        assert stats.interval() == (7.0, 7.0)

    def test_interval_contains_mean(self):
        stats = SampleStats.from_samples(np.arange(50, dtype=float))
        low, high = stats.interval(0.95)
        assert low < stats.mean < high

    def test_interval_widens_with_confidence(self):
        stats = SampleStats.from_samples(np.random.default_rng(0).random(30))
        narrow = stats.interval(0.5)
        wide = stats.interval(0.999)
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_agrees_with(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(10.0, 1.0, size=200)
        stats = SampleStats.from_samples(samples)
        assert stats.agrees_with(10.0)
        assert not stats.agrees_with(20.0)

    def test_coverage_calibration(self):
        """~95% of 95% CIs cover the true mean."""
        rng = np.random.default_rng(2)
        covered = 0
        trials = 300
        for _ in range(trials):
            samples = rng.normal(0.0, 1.0, size=25)
            low, high = SampleStats.from_samples(samples).interval(0.95)
            covered += low <= 0.0 <= high
        assert 0.90 <= covered / trials <= 0.99

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SampleStats.from_samples([])

    def test_confidence_interval_helper(self):
        low, high = confidence_interval([1.0, 2.0, 3.0])
        assert low < 2.0 < high


class TestRng:
    def test_make_rng_reproducible(self):
        assert make_rng(3).random() == make_rng(3).random()

    def test_spawn_independence(self):
        streams = spawn_rngs(0, 3)
        values = [rng.random() for rng in streams]
        assert len(set(values)) == 3

    def test_spawn_reproducible(self):
        a = [rng.random() for rng in spawn_rngs(42, 2)]
        b = [rng.random() for rng in spawn_rngs(42, 2)]
        assert a == b

    def test_spawn_count_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
