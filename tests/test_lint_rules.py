"""Golden fixture tests for every ``repro.lint`` rule.

Each rule gets at least one bad snippet proving it fires (with the
expected rule id and line) and one good snippet proving it stays
quiet.  Suppression semantics (inline disable, unused-suppression
audit) are round-tripped at the end.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_source
from repro.lint.driver import PARSE_ERROR_ID
from repro.lint.suppress import UNUSED_SUPPRESSION_ID


def lint(snippet: str, path: str = "fixture.py"):
    return lint_source(path, textwrap.dedent(snippet))


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


def assert_clean(snippet: str) -> None:
    findings = lint(snippet)
    assert findings == [], [f.render() for f in findings]


def assert_fires(snippet: str, rule_id: str, line: int | None = None):
    findings = lint(snippet)
    matching = [f for f in findings if f.rule_id == rule_id]
    assert matching, (
        f"expected {rule_id}, got {[f.render() for f in findings]}"
    )
    if line is not None:
        assert matching[0].line == line, matching[0].render()
    return matching


# ----------------------------------------------------------------------
# RNG001 — numpy legacy global-state API
# ----------------------------------------------------------------------
class TestNumpyLegacyRandom:
    def test_seed_call_fires_with_line(self):
        assert_fires(
            """\
            import numpy as np

            np.random.seed(42)
            """,
            "RNG001",
            line=3,
        )

    def test_rand_under_alias_fires(self):
        assert_fires(
            """\
            import numpy

            def noise(n):
                return numpy.random.rand(n)
            """,
            "RNG001",
            line=4,
        )

    def test_from_import_spelling_fires(self):
        assert_fires(
            """\
            from numpy import random

            def pick(xs):
                return random.choice(xs)
            """,
            "RNG001",
            line=4,
        )

    def test_generator_api_is_clean(self):
        assert_clean(
            """\
            import numpy as np

            def make(seed):
                return np.random.default_rng(np.random.SeedSequence(seed))
            """
        )

    def test_unimported_np_name_is_clean(self):
        # a local object coincidentally named ``np`` must not resolve
        assert_clean(
            """\
            def use(np):
                return np.random.seed
            """
        )


# ----------------------------------------------------------------------
# RNG002 — stdlib random / wall-clock seeding
# ----------------------------------------------------------------------
class TestAmbientEntropy:
    def test_stdlib_random_fires(self):
        assert_fires(
            """\
            import random

            def shuffle(xs):
                random.shuffle(xs)
            """,
            "RNG002",
            line=4,
        )

    def test_time_seeding_fires(self):
        assert_fires(
            """\
            import time
            import numpy as np

            def make():
                return np.random.default_rng(int(time.time()))
            """,
            "RNG002",
            line=5,
        )

    def test_explicit_seed_is_clean(self):
        assert_clean(
            """\
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """
        )

    def test_numpy_random_submodule_not_confused_with_stdlib(self):
        findings = lint(
            """\
            from numpy import random

            def make(seed):
                return random.default_rng(seed)
            """
        )
        assert "RNG002" not in rule_ids(findings)


# ----------------------------------------------------------------------
# RNG003 — entropy-seeded generator construction
# ----------------------------------------------------------------------
class TestEntropySeededGenerator:
    def test_no_arg_default_rng_fires(self):
        assert_fires(
            """\
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
            "RNG003",
            line=4,
        )

    def test_literal_none_fires(self):
        assert_fires(
            """\
            from numpy.random import default_rng

            rng = default_rng(None)
            """,
            "RNG003",
            line=3,
        )

    def test_make_rng_helper_no_arg_fires(self):
        assert_fires(
            """\
            from repro.sim.rng import make_rng

            def build():
                return make_rng()
            """,
            "RNG003",
            line=4,
        )

    def test_forwarded_name_is_clean(self):
        assert_clean(
            """\
            import numpy as np

            def make(seed=None):
                return np.random.default_rng(seed)
            """
        )


# ----------------------------------------------------------------------
# RNG004 — generators must be threaded, not ambient
# ----------------------------------------------------------------------
class TestUnthreadedGenerator:
    def test_module_global_generator_fires(self):
        assert_fires(
            """\
            import numpy as np

            _RNG = np.random.default_rng(0)

            def draw(n):
                return _RNG.random(n)
            """,
            "RNG004",
            line=6,
        )

    def test_parameter_generator_is_clean(self):
        assert_clean(
            """\
            def draw(rng, n):
                return rng.random(n)
            """
        )

    def test_locally_derived_generator_is_clean(self):
        assert_clean(
            """\
            import numpy as np

            def draw(seed, n):
                rng = np.random.default_rng(seed)
                return rng.random(n)
            """
        )

    def test_self_attribute_is_clean(self):
        assert_clean(
            """\
            class Agent:
                def act(self):
                    return self._rng.random()
            """
        )

    def test_closure_over_enclosing_parameter_is_clean(self):
        assert_clean(
            """\
            def outer(rng):
                def inner(n):
                    return rng.random(n)
                return inner
            """
        )

    def test_closure_over_module_global_fires(self):
        assert_fires(
            """\
            import numpy as np

            _RNG = np.random.default_rng(0)

            def outer():
                def inner(n):
                    return _RNG.random(n)
                return inner
            """,
            "RNG004",
            line=7,
        )

    def test_module_global_uniform_source_fires(self):
        # UniformSource objects carry caller-owned generators; drawing
        # blocks from an ambient source leaks stream state exactly like
        # drawing from an ambient generator.
        assert_fires(
            """\
            from repro.sim.rng import FanInSource

            _SOURCE = FanInSource([])

            def draw(shape):
                return _SOURCE.random(shape)
            """,
            "RNG004",
            line=6,
        )

    def test_module_global_random_raw_fires(self):
        assert_fires(
            """\
            import numpy as np

            _BG = np.random.PCG64(0)

            def raw(n):
                return _BG.random_raw(n)
            """,
            "RNG004",
            line=6,
        )

    def test_module_global_uniform_block_fires(self):
        assert_fires(
            """\
            from repro.sim.rng_batched import BatchedDeviceStreams

            _STREAMS = BatchedDeviceStreams.from_generators([])

            def block(chunk, kinds):
                return _STREAMS.uniform_block(chunk, kinds)
            """,
            "RNG004",
            line=6,
        )

    def test_parameter_uniform_source_is_clean(self):
        assert_clean(
            """\
            def step(source, chunk, kinds, lanes):
                return source.random((chunk, kinds, lanes))
            """
        )

    def test_attribute_uniform_block_is_clean(self):
        assert_clean(
            """\
            class Source:
                def random(self, shape):
                    return self._streams.uniform_block(shape[0], shape[1])
            """
        )


# ----------------------------------------------------------------------
# KRN001/KRN002/KRN003 — @njit kernel purity
# ----------------------------------------------------------------------
class TestKernelPurity:
    def test_in_kernel_generator_construction_fires(self):
        matching = assert_fires(
            """\
            import numpy as np
            from numba import njit

            @njit(cache=True)
            def kernel(out):
                rng = np.random.default_rng(0)
                for i in range(out.shape[0]):
                    out[i] = rng.random()
            """,
            "KRN001",
            line=6,
        )
        assert "random state" in matching[0].message

    def test_kernel_draw_method_fires(self):
        assert_fires(
            """\
            from numba import njit

            @njit
            def kernel(rng, out):
                out[0] = rng.random()
            """,
            "KRN001",
            line=5,
        )

    def test_global_declaration_fires(self):
        assert_fires(
            """\
            from numba import njit

            _CALLS = 0

            @njit
            def kernel(x):
                global _CALLS
                _CALLS += 1
                return x + _CALLS
            """,
            "KRN002",
            line=7,
        )

    def test_non_whitelisted_numpy_op_fires(self):
        assert_fires(
            """\
            import numpy as np
            from numba import njit

            @njit
            def kernel(values):
                return np.unique(values)
            """,
            "KRN003",
            line=6,
        )

    def test_object_construct_fires(self):
        assert_fires(
            """\
            from numba import njit

            @njit
            def kernel(x):
                table = {"a": x}
                return table["a"]
            """,
            "KRN003",
            line=5,
        )

    def test_call_graph_reaches_helper(self):
        matching = assert_fires(
            """\
            import numpy as np
            from numba import njit

            def helper(values):
                return np.unique(values)

            @njit
            def kernel(values):
                return helper(values)
            """,
            "KRN003",
            line=5,
        )
        assert "reached from @njit kernel kernel()" in matching[0].message

    def test_fallback_shim_name_detected(self):
        # the jit module's ``_numba_njit`` degradation shim counts
        assert_fires(
            """\
            from numba import njit as _numba_njit

            @_numba_njit(cache=True, nogil=True)
            def kernel(x):
                out = {1, 2}
                return x in out
            """,
            "KRN003",
        )

    def test_clean_scalar_kernel(self):
        assert_clean(
            """\
            import numpy as np
            from numba import njit

            @njit(cache=True, nogil=True)
            def kernel(flat, value):
                lo = 0
                hi = flat.shape[0]
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if flat[mid] <= value:
                        lo = mid + 1
                    else:
                        hi = mid
                buffer = np.zeros(4)
                return lo + buffer.shape[0]
            """
        )

    def test_non_kernel_function_unconstrained(self):
        assert_clean(
            """\
            import numpy as np

            def host(values):
                return np.unique(values)
            """
        )


# ----------------------------------------------------------------------
# HSH001/HSH002 — hash stability
# ----------------------------------------------------------------------
class TestHashStability:
    def test_set_iteration_fires(self):
        assert_fires(
            """\
            import hashlib

            def content_key(items):
                digest = hashlib.sha256()
                for item in set(items):
                    digest.update(item)
                return digest.hexdigest()
            """,
            "HSH001",
            line=5,
        )

    def test_set_assigned_name_fires(self):
        assert_fires(
            """\
            import hashlib

            def content_key(items):
                unique = set(items)
                digest = hashlib.sha256()
                return digest, [digest.update(i) for i in unique]
            """,
            "HSH001",
            line=6,
        )

    def test_filesystem_listing_fires(self):
        assert_fires(
            """\
            import hashlib
            import os

            def tree_key(root):
                digest = hashlib.sha256()
                for name in os.listdir(root):
                    digest.update(name.encode())
                return digest.hexdigest()
            """,
            "HSH001",
            line=6,
        )

    def test_sorted_iteration_is_clean(self):
        assert_clean(
            """\
            import hashlib

            def content_key(items):
                digest = hashlib.sha256()
                for item in sorted(set(items)):
                    digest.update(item)
                return digest.hexdigest()
            """
        )

    def test_sets_outside_hash_context_are_clean(self):
        assert_clean(
            """\
            def union(groups):
                seen = set()
                for group in groups:
                    seen |= group
                return [x for x in seen]
            """
        )

    def test_signature_named_callee_creates_hash_context(self):
        assert_fires(
            """\
            def group_key(devices, system_signature):
                keys = []
                for device in {d for d in devices}:
                    keys.append(system_signature(device))
                return keys
            """,
            "HSH001",
        )

    def test_json_dumps_without_sort_keys_fires(self):
        assert_fires(
            """\
            import hashlib
            import json

            def spec_key(spec):
                blob = json.dumps(spec)
                return hashlib.sha256(blob.encode()).hexdigest()
            """,
            "HSH002",
            line=5,
        )

    def test_json_dumps_with_sort_keys_is_clean(self):
        assert_clean(
            """\
            import hashlib
            import json

            def spec_key(spec):
                blob = json.dumps(spec, sort_keys=True)
                return hashlib.sha256(blob.encode()).hexdigest()
            """
        )


# ----------------------------------------------------------------------
# FLT001 — float determinism under the bitwise contract
# ----------------------------------------------------------------------
class TestFloatDeterminism:
    BAD_BODY = """\
        def total(values):
            return sum({v * 2.0 for v in values})
        """

    def test_fires_in_bitwise_contract_file(self):
        assert_fires(
            '"""This file promises byte-identical results."""\n'
            + textwrap.dedent(self.BAD_BODY),
            "FLT001",
            line=3,
        )

    def test_quiet_without_contract_docstring(self):
        assert_clean(
            '"""Ordinary statistics helpers."""\n'
            + textwrap.dedent(self.BAD_BODY)
        )

    def test_genexp_over_set_fires(self):
        assert_fires(
            """\
            '''Totals here are bitwise-reproducible.'''

            def total(pairs):
                return sum(x + 1.0 for x in set(pairs))
            """,
            "FLT001",
        )

    def test_numpy_sum_over_set_fires(self):
        assert_fires(
            """\
            '''Totals here are bitwise-reproducible.'''
            import numpy as np

            def total(values):
                return np.sum(frozenset(values))
            """,
            "FLT001",
        )

    def test_ordered_reduction_is_clean(self):
        assert_clean(
            """\
            '''Totals here are bitwise-reproducible.'''

            def total(values):
                return sum(sorted(set(values)))
            """
        )


# ----------------------------------------------------------------------
# SCH001 — snapshot schema drift
# ----------------------------------------------------------------------
class TestSchemaDrift:
    def test_undeclared_field_fires(self):
        assert_fires(
            """\
            FIELDS = frozenset({"tick", "metrics"})

            def snapshot(state):  # repro-lint: schema=FIELDS
                return {"tick": state.tick, "hostname": "db01"}
            """,
            "SCH001",
            line=4,
        )

    def test_subscript_write_checked(self):
        assert_fires(
            """\
            FIELDS = frozenset({"tick"})

            def snapshot(state):  # repro-lint: schema=FIELDS
                record = {"tick": state.tick}
                record["surprise"] = 1
                return record
            """,
            "SCH001",
            line=5,
        )

    def test_serialized_not_returned_payload_checked(self):
        assert_fires(
            """\
            import pickle

            FIELDS = frozenset({"version"})

            def save(path, state):  # repro-lint: schema=FIELDS
                payload = {"version": 1, "extra": state}
                path.write_bytes(pickle.dumps(payload))
            """,
            "SCH001",
            line=6,
        )

    def test_declared_fields_are_clean(self):
        assert_clean(
            """\
            FIELDS = frozenset({"tick", "metrics", "devices"})

            def snapshot(state, per_device):  # repro-lint: schema=FIELDS
                record = {"tick": state.tick, "metrics": {}}
                if per_device:
                    record["devices"] = []
                return record
            """
        )

    def test_unresolvable_declaration_fires(self):
        assert_fires(
            """\
            def snapshot(state):  # repro-lint: schema=MISSING_FIELDS
                return {"tick": 1}
            """,
            "SCH001",
            line=1,
        )

    def test_marker_off_def_line_fires(self):
        assert_fires(
            """\
            FIELDS = frozenset({"tick"})

            # repro-lint: schema=FIELDS
            x = 1
            """,
            "SCH001",
            line=3,
        )

    def test_non_static_declaration_fires(self):
        assert_fires(
            """\
            BASE = ("tick",)
            FIELDS = frozenset({"metrics", *BASE})

            def snapshot(state):  # repro-lint: schema=FIELDS
                return {"metrics": {}}
            """,
            "SCH001",
        )


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_disable_silences_finding(self):
        assert_clean(
            """\
            import numpy as np

            np.random.seed(42)  # repro-lint: disable=RNG001
            """
        )

    def test_disable_list_covers_multiple_rules(self):
        assert_clean(
            """\
            import hashlib
            import json

            def spec_key(spec, items):
                blob = json.dumps(spec)  # repro-lint: disable=HSH002
                for i in set(items):  # repro-lint: disable=HSH001
                    blob += i
                return hashlib.sha256(blob.encode()).hexdigest()
            """
        )

    def test_wrong_id_does_not_suppress(self):
        findings = lint(
            """\
            import numpy as np

            np.random.seed(42)  # repro-lint: disable=HSH001
            """
        )
        ids = rule_ids(findings)
        assert "RNG001" in ids
        assert UNUSED_SUPPRESSION_ID in ids

    def test_unused_suppression_fires(self):
        assert_fires(
            """\
            x = 1  # repro-lint: disable=RNG001
            """,
            UNUSED_SUPPRESSION_ID,
            line=1,
        )

    def test_used_and_unused_ids_split(self):
        findings = lint(
            """\
            import numpy as np

            np.random.seed(0)  # repro-lint: disable=RNG001,KRN001
            """
        )
        assert rule_ids(findings) == [UNUSED_SUPPRESSION_ID]
        assert "KRN001" in findings[0].message


# ----------------------------------------------------------------------
# driver edge cases
# ----------------------------------------------------------------------
class TestDriver:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == [PARSE_ERROR_ID]

    def test_findings_sorted_by_location(self):
        findings = lint(
            """\
            import numpy as np

            np.random.seed(1)
            np.random.seed(0)
            """
        )
        assert [f.line for f in findings] == [3, 4]

    def test_unknown_select_raises(self):
        from repro.lint import get_rules

        with pytest.raises(KeyError, match="NOPE999"):
            get_rules(["NOPE999"])
