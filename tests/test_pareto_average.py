"""Pareto exploration also works over the average-cost formulation.

:func:`trade_off_curve` only requires the ``optimize`` method shape, so
the average-cost optimizer sweeps the same way; Theorem 4.1's convexity
argument applies unchanged (the feasible set of stationary state-action
distributions is a polytope).
"""

import pytest

from repro.core.average_cost import AverageCostOptimizer
from repro.core.costs import PENALTY, POWER
from repro.core.pareto import trade_off_curve
from repro.systems import example_system

BOUNDS = (0.2, 0.3, 0.4, 0.5, 0.7, 0.9)


@pytest.fixture(scope="module")
def curve():
    bundle = example_system.build()
    optimizer = AverageCostOptimizer(bundle.system, bundle.costs)
    return trade_off_curve(
        optimizer, BOUNDS, objective=POWER, constraint=PENALTY
    )


def test_average_cost_curve_convex(curve):
    assert curve.is_convex()


def test_average_cost_curve_non_increasing(curve):
    assert curve.is_non_increasing()


def test_average_cost_curve_close_to_discounted(curve):
    """At gamma = 0.99999 (horizon 1e5) the discounted curve should sit
    within a whisker of the average-cost curve."""
    from repro.core.optimizer import PolicyOptimizer

    bundle = example_system.build()
    discounted_optimizer = PolicyOptimizer(
        bundle.system,
        bundle.costs,
        gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
    )
    discounted = trade_off_curve(
        discounted_optimizer, BOUNDS, objective=POWER, constraint=PENALTY
    )
    for avg_point, disc_point in zip(curve.points, discounted.points):
        assert avg_point.feasible == disc_point.feasible
        if avg_point.feasible:
            assert avg_point.objective == pytest.approx(
                disc_point.objective, abs=2e-3
            )


def test_average_cost_infeasible_region(curve):
    bundle = example_system.build()
    optimizer = AverageCostOptimizer(bundle.system, bundle.costs)
    result = optimizer.minimize_power(penalty_bound=0.05)
    assert not result.feasible
