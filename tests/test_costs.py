"""Unit tests for :mod:`repro.core.costs`."""

import numpy as np
import pytest

from repro.core.costs import (
    LOSS,
    OVERFLOW,
    PENALTY,
    POWER,
    CostModel,
    sleep_while_busy_penalty,
    throughput_reward,
)
from repro.util.validation import ValidationError


class TestCostModel:
    def test_standard_metrics(self, example_bundle):
        costs = CostModel.standard(example_bundle.system)
        assert set(costs.metric_names) == {POWER, PENALTY, LOSS, OVERFLOW}

    def test_metric_lookup_copy(self, example_bundle):
        costs = CostModel.standard(example_bundle.system)
        m = costs.metric(POWER)
        m[0, 0] = -1.0
        assert costs.metric(POWER)[0, 0] != -1.0

    def test_unknown_metric_raises(self, example_bundle):
        costs = CostModel.standard(example_bundle.system)
        with pytest.raises(KeyError, match="registered"):
            costs.metric("nope")

    def test_has_metric(self, example_bundle):
        costs = CostModel.standard(example_bundle.system)
        assert costs.has_metric(POWER)
        assert not costs.has_metric("latency")

    def test_add_metric_shape_check(self, example_bundle):
        costs = CostModel(example_bundle.system)
        with pytest.raises(ValidationError, match="shape"):
            costs.add_metric("bad", np.zeros((2, 2)))

    def test_add_metric_nan_check(self, example_bundle):
        system = example_bundle.system
        costs = CostModel(system)
        bad = np.zeros((system.n_states, system.n_commands))
        bad[0, 0] = float("nan")
        with pytest.raises(ValidationError, match="non-finite"):
            costs.add_metric("bad", bad)

    def test_add_state_metric_broadcasts(self, example_bundle):
        system = example_bundle.system
        costs = CostModel(system)
        values = np.arange(system.n_states, dtype=float)
        costs.add_state_metric("per_state", values)
        matrix = costs.metric("per_state")
        assert matrix.shape == (system.n_states, system.n_commands)
        assert np.allclose(matrix[:, 0], values)
        assert np.allclose(matrix[:, 1], values)

    def test_evaluate_inner_product(self, example_bundle):
        system = example_bundle.system
        costs = CostModel.standard(system)
        freq = np.ones((system.n_states, system.n_commands))
        assert costs.evaluate(POWER, freq) == pytest.approx(
            costs.metric(POWER).sum()
        )

    def test_evaluate_shape_check(self, example_bundle):
        costs = CostModel.standard(example_bundle.system)
        with pytest.raises(ValidationError):
            costs.evaluate(POWER, np.ones((2, 2)))

    def test_rejects_foreign_system(self, example_bundle):
        with pytest.raises(ValidationError):
            CostModel("not a system")


class TestSleepWhileBusyPenalty:
    def test_cpu_shape(self, cpu_bundle):
        system = cpu_bundle.system
        matrix = sleep_while_busy_penalty(system, ["sleep"], ["busy"])
        # Penalty only in (sleep, busy) joint states, same for both commands.
        for x in range(system.n_states):
            sp = system.provider_index_of_state[x]
            sr = system.requester_index_of_state[x]
            expected = (
                1.0
                if (
                    system.provider.state_names[sp] == "sleep"
                    and system.requester.state_names[sr] == "busy"
                )
                else 0.0
            )
            assert matrix[x].tolist() == [expected] * system.n_commands


class TestThroughputReward:
    def test_counts_only_under_demand(self, web_bundle):
        system = web_bundle.system
        matrix = throughput_reward(system, {"both": 1.0, "p1": 0.4, "p2": 0.6, "none": 0.0})
        both_busy = system.state_index("both", "1", 0)
        both_idle = system.state_index("both", "0", 0)
        assert matrix[both_busy, 0] == 1.0
        assert matrix[both_idle, 0] == 0.0

    def test_partial_configuration(self, web_bundle):
        system = web_bundle.system
        matrix = throughput_reward(system, {"both": 1.0, "p1": 0.4, "p2": 0.6, "none": 0.0})
        assert matrix[system.state_index("p2", "1", 0), 0] == 0.6
        assert matrix[system.state_index("none", "1", 0), 0] == 0.0
