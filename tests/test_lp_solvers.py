"""Tests for the three LP backends, individually and cross-checked.

The from-scratch simplex and interior-point solvers are the library's
PCx stand-ins; scipy's HiGHS is the reference.  Each backend is tested
on hand-solvable instances, on degenerate/infeasible/unbounded corner
cases, and (property-based) on random feasible LPs where all three must
agree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import interior_point, scipy_backend, simplex
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.solve import CrossCheckError, available_backends, solve_lp

ALL_BACKENDS = ["scipy", "interior-point", "simplex"]


def solve_with(backend: str, lp: LinearProgram):
    return {
        "scipy": scipy_backend.solve,
        "interior-point": interior_point.solve,
        "simplex": simplex.solve,
    }[backend](lp)


def diet_lp() -> LinearProgram:
    """min x + 2y s.t. x + y >= 1  ->  optimum at (1, 0), value 1."""
    lp = LinearProgram([1.0, 2.0])
    lp.add_lower_bound_inequality([1.0, 1.0], 1.0)
    return lp


def equality_lp() -> LinearProgram:
    """min x + 3y + 2z s.t. x+y+z = 2, x <= 0.5 -> (0.5, 0, 1.5), 3.5."""
    lp = LinearProgram([1.0, 3.0, 2.0])
    lp.add_equality([1.0, 1.0, 1.0], 2.0)
    lp.add_inequality([1.0, 0.0, 0.0], 0.5)
    return lp


def infeasible_lp() -> LinearProgram:
    """x >= 0 with x <= -1 is infeasible."""
    lp = LinearProgram([1.0])
    lp.add_inequality([1.0], -1.0)
    return lp


def unbounded_lp() -> LinearProgram:
    """min -x with only x >= 0: unbounded below."""
    lp = LinearProgram([-1.0])
    lp.add_inequality([-1.0], 0.0)  # -x <= 0, vacuous
    return lp


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestBasicInstances:
    def test_diet(self, backend):
        res = solve_with(backend, diet_lp())
        assert res.is_optimal
        assert res.objective == pytest.approx(1.0, abs=1e-7)
        assert np.allclose(res.x, [1.0, 0.0], atol=1e-6)

    def test_equality_mix(self, backend):
        res = solve_with(backend, equality_lp())
        assert res.is_optimal
        assert res.objective == pytest.approx(3.5, abs=1e-6)
        assert np.allclose(res.x, [0.5, 0.0, 1.5], atol=1e-5)

    def test_solution_is_feasible(self, backend):
        lp = equality_lp()
        res = solve_with(backend, lp)
        assert lp.is_feasible(res.x, tol=1e-6)

    def test_infeasible_detected(self, backend):
        res = solve_with(backend, infeasible_lp())
        assert res.status in (LPStatus.INFEASIBLE, LPStatus.NUMERICAL_ERROR)
        assert not res.is_optimal

    def test_no_constraints_zero_optimum(self, backend):
        res = solve_with(backend, LinearProgram([2.0, 3.0]))
        assert res.is_optimal
        assert res.objective == 0.0

    def test_no_constraints_unbounded(self, backend):
        res = solve_with(backend, LinearProgram([-1.0, 1.0]))
        assert res.status is LPStatus.UNBOUNDED

    def test_degenerate_duplicate_rows(self, backend):
        # The same equality twice: redundant but consistent.
        lp = LinearProgram([1.0, 1.0])
        lp.add_equality([1.0, 1.0], 1.0)
        lp.add_equality([1.0, 1.0], 1.0)
        res = solve_with(backend, lp)
        assert res.is_optimal
        assert res.objective == pytest.approx(1.0, abs=1e-7)

    def test_zero_rhs(self, backend):
        lp = LinearProgram([1.0, 1.0])
        lp.add_equality([1.0, -1.0], 0.0)
        res = solve_with(backend, lp)
        assert res.is_optimal
        assert res.objective == pytest.approx(0.0, abs=1e-7)


class TestSimplexSpecifics:
    def test_unbounded_direction(self):
        res = simplex.solve(unbounded_lp())
        assert res.status is LPStatus.UNBOUNDED

    def test_inconsistent_duplicate_rows_infeasible(self):
        lp = LinearProgram([1.0, 1.0])
        lp.add_equality([1.0, 1.0], 1.0)
        lp.add_equality([1.0, 1.0], 2.0)
        res = simplex.solve(lp)
        assert res.status is LPStatus.INFEASIBLE

    def test_iteration_counts_reported(self):
        res = simplex.solve(equality_lp())
        assert res.iterations > 0
        assert res.backend == "simplex"


class TestInteriorPointSpecifics:
    def test_inconsistent_dependent_rows_infeasible(self):
        lp = LinearProgram([1.0, 1.0])
        lp.add_equality([1.0, 1.0], 1.0)
        lp.add_equality([2.0, 2.0], 3.0)  # dependent, inconsistent
        res = interior_point.solve(lp)
        assert res.status is LPStatus.INFEASIBLE

    def test_converges_quickly_on_small_problems(self):
        res = interior_point.solve(equality_lp())
        assert res.is_optimal
        assert res.iterations < 50

    def test_tight_tolerance(self):
        res = interior_point.solve(diet_lp(), tol=1e-11)
        assert res.is_optimal
        assert res.objective == pytest.approx(1.0, abs=1e-8)


class TestDispatch:
    def test_available_backends(self):
        assert set(available_backends()) == set(ALL_BACKENDS)

    def test_unknown_backend_rejected(self):
        from repro.util.validation import ValidationError

        with pytest.raises(ValidationError, match="unknown LP backend"):
            solve_lp(diet_lp(), backend="nope")

    def test_cross_check_agreement(self):
        res = solve_lp(diet_lp(), backend="scipy", cross_check=True)
        assert res.is_optimal

    def test_cross_check_all_pairs(self):
        for primary in ALL_BACKENDS:
            for checker in ALL_BACKENDS:
                if primary == checker:
                    continue
                res = solve_lp(
                    equality_lp(),
                    backend=primary,
                    cross_check=True,
                    cross_check_backend=checker,
                )
                assert res.is_optimal

    def test_cross_check_error_type_exists(self):
        assert issubclass(CrossCheckError, RuntimeError)


def random_feasible_lp(
    rng: np.random.Generator, n: int, m_eq: int, m_ub: int
) -> LinearProgram:
    """A random LP guaranteed feasible by construction.

    A random non-negative point ``x0`` is drawn first; equalities are
    set to ``A x0`` and inequalities to ``A x0 + slack`` so that ``x0``
    is strictly feasible.  Objectives are non-negative, so the LP is
    bounded below.
    """
    lp = LinearProgram(rng.random(n))
    x0 = rng.random(n)
    for _ in range(m_eq):
        row = rng.standard_normal(n)
        lp.add_equality(row, float(row @ x0))
    for _ in range(m_ub):
        row = rng.standard_normal(n)
        lp.add_inequality(row, float(row @ x0) + float(rng.random()) + 0.1)
    return lp


class TestCrossBackendProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_backends_agree_on_random_feasible_lps(self, n, m_eq, m_ub, seed):
        rng = np.random.default_rng(seed)
        lp = random_feasible_lp(rng, n, m_eq, m_ub)
        results = {name: solve_with(name, lp) for name in ALL_BACKENDS}
        reference = results["scipy"]
        assert reference.is_optimal
        for name, res in results.items():
            assert res.is_optimal, f"{name} failed: {res.status}"
            assert res.objective == pytest.approx(
                reference.objective, rel=1e-5, abs=1e-6
            ), name
            assert lp.is_feasible(res.x, tol=1e-5), name


class TestWarmStart:
    """Simplex warm-start hooks (and pass-through on other backends)."""

    @staticmethod
    def _bounded_lp(rhs: float) -> LinearProgram:
        """min -x - y s.t. x + y <= rhs, x <= 1 -> objective -rhs for rhs<=2."""
        lp = LinearProgram([-1.0, -1.0])
        lp.add_equality([1.0, 0.0], 1.0)
        lp.add_inequality([1.0, 1.0], rhs)
        return lp

    def test_optimal_solve_reports_basis(self):
        result = simplex.solve(self._bounded_lp(1.5))
        assert result.is_optimal
        assert result.warm_start is not None
        assert isinstance(result.warm_start, simplex.SimplexBasis)

    def test_warm_resolve_matches_cold_after_rhs_change(self):
        lp = self._bounded_lp(1.5)
        first = simplex.solve(lp)
        lp.set_inequality_rhs(0, 1.8)
        warm = simplex.solve(lp, warm_start=first.warm_start)
        cold = simplex.solve(lp)
        assert warm.is_optimal and cold.is_optimal
        assert warm.objective == pytest.approx(cold.objective, abs=1e-10)
        assert np.allclose(warm.x, cold.x, atol=1e-9)

    def test_warm_start_detects_infeasibility(self):
        lp = self._bounded_lp(1.5)
        first = simplex.solve(lp)
        lp.set_inequality_rhs(0, 0.5)  # x = 1 forces x + y >= 1 > 0.5
        warm = simplex.solve(lp, warm_start=first.warm_start)
        assert warm.status is LPStatus.INFEASIBLE

    def test_invalid_basis_falls_back_to_cold(self):
        lp = self._bounded_lp(1.5)
        bogus = simplex.SimplexBasis(basis=(99, 98), rows=(0, 1))
        result = simplex.solve(lp, warm_start=bogus)
        assert result.is_optimal
        assert result.objective == pytest.approx(-1.5, abs=1e-9)

    def test_solve_lp_passes_warm_start_through(self):
        lp = self._bounded_lp(1.5)
        first = solve_lp(lp, backend="simplex")
        lp.set_inequality_rhs(0, 1.7)
        warm = solve_lp(lp, backend="simplex", warm_start=first.warm_start)
        assert warm.is_optimal
        assert warm.objective == pytest.approx(-1.7, abs=1e-9)

    @pytest.mark.parametrize("backend", ["scipy", "interior-point"])
    def test_other_backends_accept_and_ignore(self, backend):
        lp = self._bounded_lp(1.5)
        first = solve_lp(lp, backend="simplex")
        result = solve_lp(lp, backend=backend, warm_start=first.warm_start)
        assert result.is_optimal
        assert result.objective == pytest.approx(-1.5, abs=1e-6)

    def test_supports_warm_start_capability_map(self):
        from repro.lp.solve import supports_warm_start

        assert supports_warm_start("simplex")
        assert not supports_warm_start("scipy")
        assert not supports_warm_start("interior-point")

    def test_warm_chain_along_a_sweep(self):
        lp = self._bounded_lp(1.2)
        result = simplex.solve(lp)
        for rhs in (1.4, 1.6, 1.8, 2.0):
            lp.set_inequality_rhs(0, rhs)
            result = simplex.solve(lp, warm_start=result.warm_start)
            assert result.is_optimal
            assert result.objective == pytest.approx(-min(rhs, 2.0), abs=1e-9)
            assert result.warm_start is not None
